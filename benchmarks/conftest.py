"""Shared fixtures and helpers for the experiment benchmarks.

Each ``test_eN_*.py`` file regenerates one experiment from DESIGN.md's
index: it reproduces the corresponding paper figure or claim, asserts
the *shape* of the result (who wins, what converts, what diverges), and
times the central operation with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated tables.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer_db import ConversionAnalyzer
from repro.restructure import restructure_database
from repro.workloads import company


@pytest.fixture
def company_schema():
    return company.figure_42_schema()


@pytest.fixture
def interpose_operator():
    return company.figure_44_operator()


@pytest.fixture
def catalog(company_schema, interpose_operator):
    return ConversionAnalyzer().analyze_operator(company_schema,
                                                 interpose_operator)


def make_pair(operator, seed=1979, **kwargs):
    """(source db, target db) for one restructuring."""
    source_db = company.company_db(seed=seed, **kwargs)
    _schema, target_db = restructure_database(source_db, operator)
    return source_db, target_db


def print_table(title: str, rows: list[tuple], headers: tuple) -> None:
    """Print one experiment table (visible with -s)."""
    print(f"\n== {title} ==")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(headers)
    ] if rows else [len(str(h)) for h in headers]
    print("  " + " | ".join(str(h).ljust(w)
                            for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + " | ".join(str(v).ljust(w)
                                for v, w in zip(row, widths)))
