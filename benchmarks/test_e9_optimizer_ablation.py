"""E9 -- Section 5.4: optimizer ablation.

"An optimization needs to be performed on the application program
representation [because] (1) the original source program may not be
efficiently coded or (2) an efficient application program may become
inefficient after both the database and the program have been
converted."

Reproduced: converted programs generated with and without optimizer
passes, executed on the same restructured instance, operation counts
compared.  Expected shape: every pass is behaviour-preserving, and
optimized programs issue at most as many operations -- strictly fewer
where a pass fires (keyed retrieval, duplicate-locate removal).
"""

import pytest

from conftest import make_pair, print_table
from repro.core import ConversionSupervisor
from repro.engine.metrics import MetricsScope
from repro.programs import builder as b
from repro.programs.interpreter import run_program
from repro.workloads import company

ALL_PASSES = ("pushdown", "keyed", "calc-locate", "hoist-locate",
              "dedup-locate", "owner-elim")


def dept_report():
    """Filter on an equality inside a scan: pushdown + keyed target."""
    return b.program("DEPT-REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.eq(b.field("EMP", "DEPT-NAME"), "SALES"), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])


def sloppy_lookup():
    """'The original source program may not be efficiently coded':
    duplicate positioning."""
    return b.program("SLOPPY", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.eq(b.field("EMP", "DEPT-NAME"), "ENG"), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])


PROGRAMS = {"DEPT-REPORT": dept_report, "SLOPPY": sloppy_lookup}


def convert(program, passes):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator,
                                      optimizer_passes=passes)
    report = supervisor.convert_program(program)
    assert report.target_program is not None, report.failure
    return report.target_program


def measure(program):
    operator = company.figure_44_operator()
    _source, target_db = make_pair(operator, employees_per_division=40)
    with MetricsScope(target_db.metrics) as scope:
        trace = run_program(program, target_db, consistent=False)
    cost = (scope.delta.total_accesses() + scope.delta.dml_calls
            + scope.delta.set_traversals)
    return cost, trace


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_optimizer_reduces_operations(name, benchmark):
    source = PROGRAMS[name]()
    unoptimized = convert(source, ())
    optimized = convert(source, ALL_PASSES)

    cost_unopt, trace_unopt = measure(unoptimized)
    cost_opt, trace_opt = benchmark(lambda: measure(optimized))
    print_table(f"E9.1 ablation: {name}", [
        ("unoptimized ops", cost_unopt),
        ("optimized ops", cost_opt),
        ("saved", f"{1 - cost_opt / cost_unopt:.0%}"),
    ], ("variant", "value"))
    assert trace_opt == trace_unopt  # behaviour preserved
    assert cost_opt < cost_unopt


def test_per_pass_contribution(benchmark):
    """Which pass saves what, one pass enabled at a time."""
    source = sloppy_lookup()
    baseline_cost, _ = measure(convert(source, ()))

    def sweep():
        rows = []
        for enabled in ALL_PASSES:
            cost, _trace = measure(convert(source, (enabled,)))
            rows.append((enabled, cost, baseline_cost - cost))
        full_cost, _trace = measure(convert(source, ALL_PASSES))
        rows.append(("ALL", full_cost, baseline_cost - full_cost))
        return rows

    rows = benchmark(sweep)
    print_table("E9.2 per-pass savings (ops)",
                [("(none)", baseline_cost, 0)] + rows,
                ("passes", "ops", "saved"))
    all_cost = rows[-1][1]
    assert all_cost <= min(cost for _n, cost, _s in rows)
    assert any(saved > 0 for _n, _c, saved in rows[:-1])


def test_every_pass_is_behaviour_preserving(benchmark):
    """Ablation safety: each single pass keeps traces identical."""
    def verify():
        for name, factory in PROGRAMS.items():
            source = factory()
            reference = measure(convert(source, ()))[1]
            for enabled in ALL_PASSES:
                trace = measure(convert(source, (enabled,)))[1]
                assert trace == reference, (name, enabled)
        return True

    assert benchmark(verify)
