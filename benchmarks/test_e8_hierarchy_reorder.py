"""E8 -- Section 2.2 (Mehl & Wang): hierarchical order transformation.

"Mehl and Wang presented a method to intercept and interpret DL/I
statements to account for changes in the hierarchical order of an IMS
structure.  Algorithms involving command substitution rules for
certain structural changes were derived to allow for correct execution
of the old application programs."

Reproduced:

* a sibling-order change alters the hierarchical (GN) sequence;
* typed call sequences are unaffected; untyped GNP loops are converted
  by command substitution into typed loops in the original order;
* the converted program's trace is identical to the source trace;
* the substitution's cost (extra calls) is measured -- the
  "consequent drawbacks" of the emulation-like approach, though the
  paper notes "the work did have some optimization strategies".
"""


from conftest import print_table
from repro.core.command_substitution import convert_hierarchical_program
from repro.engine.metrics import MetricsScope
from repro.hierarchical import HierarchicalDatabase
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import run_program
from repro.restructure import SwapSiblingOrder, restructure_database
from repro.schema import Schema
from repro.workloads.datagen import DataGen

HIER_OK = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))


def ims_schema() -> Schema:
    schema = Schema("IMS")
    schema.define_record("COURSE", {"CNO": "X(6)"}, calc_keys=["CNO"])
    schema.define_record("OFFERING", {"S": "X(4)"})
    schema.define_record("TEXTBOOK", {"TITLE": "X(12)"})
    schema.define_set("ALL-COURSE", "SYSTEM", "COURSE", order_keys=["CNO"])
    schema.define_set("C-OFF", "COURSE", "OFFERING", order_keys=["S"])
    schema.define_set("C-TXT", "COURSE", "TEXTBOOK", order_keys=["TITLE"])
    return schema


def populate(courses: int = 8) -> HierarchicalDatabase:
    db = HierarchicalDatabase(ims_schema())
    gen = DataGen(1979)
    for index in range(courses):
        course = db.insert_segment("COURSE", {"CNO": f"C{index:03d}"})
        for term in ("F78", "S79", "F79"):
            db.insert_segment("OFFERING", {"S": term},
                              ("COURSE", course.rid))
        for book in range(gen.int_between(1, 3)):
            db.insert_segment("TEXTBOOK",
                              {"TITLE": f"BOOK-{index}-{book}"},
                              ("COURSE", course.rid))
    return db


def count_program() -> ast.Program:
    """Count and report dependents per course -- untyped GNP loops."""
    statements = [b.assign("TOTAL", 0)]
    for cno in ("C000", "C003", "C005"):
        statements += [
            b.gu(b.ssa("COURSE", "CNO", "=", cno)),
            b.assign("N", 0),
            b.gnp(),
            b.while_(HIER_OK, [
                b.assign("N", b.add(b.v("N"), 1)),
                b.gnp(),
            ]),
            b.display(cno, b.v("N")),
            b.assign("TOTAL", b.add(b.v("TOTAL"), b.v("N"))),
        ]
    statements.append(b.display("TOTAL", b.v("TOTAL")))
    return b.program("COUNT", "hierarchical", "IMS", statements)


SWAP = SwapSiblingOrder("COURSE", ("C-TXT", "C-OFF"))


def test_reorder_changes_gn_sequence(benchmark):
    def build_both():
        source = populate()
        _ts, target = restructure_database(populate(), SWAP,
                                           target_model="hierarchical")
        return source.preorder(), target.preorder()

    source_walk, target_walk = benchmark(build_both)
    source_types = [name for name, _ in source_walk]
    target_types = [name for name, _ in target_walk]
    assert source_types != target_types
    assert sorted(source_types) == sorted(target_types)
    print_table("E8.1 hierarchical sequence heads", [
        ("source", " ".join(source_types[:6])),
        ("target", " ".join(target_types[:6])),
    ], ("database", "first six segments"))


def test_command_substitution_restores_equivalence(benchmark):
    schema = ims_schema()
    change = SWAP.changes(schema)[0]
    source_db = populate()
    source_trace = run_program(count_program(), source_db,
                               consistent=False)
    _ts, target_db = restructure_database(populate(), SWAP,
                                          target_model="hierarchical")
    result = convert_hierarchical_program(count_program(), change,
                                          schema)

    def run_converted():
        _ts2, fresh_target = restructure_database(
            populate(), SWAP, target_model="hierarchical")
        return run_program(result.program, fresh_target,
                           consistent=False)

    converted_trace = benchmark(run_converted)
    assert converted_trace == source_trace
    # ... while the UNCONVERTED program still counts correctly (counting
    # is order-insensitive) but a peek at visit order diverges; show the
    # per-course equality held by conversion:
    print_table("E8.2 converted output", [
        (line,) for line in converted_trace.terminal_lines()
    ], ("line",))
    del target_db


def test_substitution_cost(benchmark):
    """The substituted program issues more DL/I calls (one typed loop
    per child type, plus repositioning) -- measurable overhead."""
    schema = ims_schema()
    change = SWAP.changes(schema)[0]
    result = convert_hierarchical_program(count_program(), change, schema)

    def measure(program, build_target):
        db = build_target()
        with MetricsScope(db.metrics) as scope:
            run_program(program, db, consistent=False)
        return scope.delta.dml_calls

    source_calls = measure(count_program(), populate)

    def converted_calls():
        return measure(
            result.program,
            lambda: restructure_database(populate(), SWAP,
                                         target_model="hierarchical")[1],
        )

    converted = benchmark(converted_calls)
    print_table("E8.3 DL/I calls", [
        ("source program on source DB", source_calls),
        ("substituted program on target DB", converted),
        ("overhead", f"{converted / source_calls:.2f}x"),
    ], ("run", "calls"))
    assert converted > source_calls


def test_typed_programs_survive_unconverted(benchmark):
    """Programs using typed SSAs are order-independent: they run
    unchanged on the reordered database with identical traces."""
    program = b.program("TYPED", "hierarchical", "IMS", [
        b.gu(b.ssa("COURSE", "CNO", "=", "C001")),
        b.gnp(b.ssa("OFFERING")),
        b.while_(HIER_OK, [
            b.display(b.field("OFFERING", "S")),
            b.gnp(b.ssa("OFFERING")),
        ]),
    ])
    source_trace = run_program(program, populate(), consistent=False)

    def run_on_target():
        _ts, target = restructure_database(populate(), SWAP,
                                           target_model="hierarchical")
        return run_program(program, target, consistent=False)

    target_trace = benchmark(run_on_target)
    assert target_trace == source_trace


def test_command_substitution_over_corpus(benchmark):
    """E8.4: batch command substitution over a hierarchical inventory.
    Shape: typed loops untouched, untyped type-agnostic loops
    substituted (and equivalent), type-specific untyped loops refused
    to the analyst, full GN walks flagged."""
    from repro.errors import UnconvertiblePattern
    from repro.workloads.corpus import (
        CorpusSpec,
        generate_hierarchical_corpus,
    )

    schema = ims_schema()
    change = SWAP.changes(schema)[0]
    corpus = generate_hierarchical_corpus(
        CorpusSpec(seed=1979, size=40),
        courses=("C000", "C001", "C002", "C003"))

    def convert_all():
        outcomes = {"untouched": 0, "substituted": 0, "refused": 0,
                    "flagged": 0, "equivalent": 0, "diverged": 0}
        for item in corpus:
            try:
                result = convert_hierarchical_program(item.program,
                                                      change, schema)
            except UnconvertiblePattern:
                outcomes["refused"] += 1
                assert item.kind == "hier-type-specific-untyped"
                continue
            if any("GN walk" in note for note in result.notes):
                outcomes["flagged"] += 1
            elif result.program == item.program:
                outcomes["untouched"] += 1
                assert item.kind == "hier-typed-scan"
            else:
                outcomes["substituted"] += 1
                assert item.kind == "hier-untyped-count"
            # equivalence of whatever ran through
            source_db = populate()
            source_trace = run_program(item.program, source_db,
                                       consistent=False)
            _ts, target_db = restructure_database(
                populate(), SWAP, target_model="hierarchical")
            target_trace = run_program(result.program, target_db,
                                       consistent=False)
            if target_trace == source_trace:
                outcomes["equivalent"] += 1
            else:
                outcomes["diverged"] += 1
        return outcomes

    outcomes = benchmark(convert_all)
    print_table("E8.4 command substitution over a corpus",
                sorted(outcomes.items()), ("outcome", "programs"))
    assert outcomes["refused"] > 0
    assert outcomes["substituted"] > 0
    assert outcomes["untouched"] > 0
    assert outcomes["diverged"] == 0
