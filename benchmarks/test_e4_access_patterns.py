"""E4 -- Section 4.1: Florida access patterns and cross-model
generation.

Reproduced artifacts:

* the "Manager Smith > 10 years" query's access-pattern sequence,
  verbatim as the paper lists it;
* the paper's claim that "since the conversion takes place at a level
  of abstraction that is removed from an actual DBMS language,
  conversion from one DBMS to another ... is possible": the one
  abstract program generates a CODASYL program and a SEQUEL program
  that return the same employees;
* the paper's two language templates for ``ACCESS EMP via EMP-DEPT``:
  template (A) SEQUEL with an IN-subquery, template (B) the keyed
  CODASYL ``FIND NEXT ... USING`` loop.
"""

from conftest import print_table
from repro.core import ProgramGenerator, access_pattern_sequence
from repro.core.access_patterns import render_sequence
from repro.options import ConversionOptions
from repro.programs import ast
from repro.programs.interpreter import run_program
from repro.relational import evaluate, parse_sequel
from repro.restructure import extract_snapshot, load_relational
from repro.workloads import florida

PAPER_SEQUENCE = (
    "ACCESS DEPT via DEPT\n"
    "ACCESS EMP-DEPT via DEPT\n"
    "ACCESS EMP via EMP-DEPT\n"
    "RETRIEVE"
)


def test_access_pattern_sequence_verbatim(benchmark):
    schema = florida.florida_schema()
    abstract = florida.smith_query_abstract()
    sequence = benchmark(access_pattern_sequence, abstract, schema)
    rendered = render_sequence(sequence)
    print_table("E4.1 access pattern sequence", [
        ("paper", PAPER_SEQUENCE.replace("\n", " ; ")),
        ("ours", rendered.replace("\n", " ; ")),
    ], ("source", "sequence"))
    assert rendered == PAPER_SEQUENCE


def test_cross_model_generation_same_answers(benchmark):
    schema = florida.florida_schema()
    abstract = florida.smith_query_abstract()
    generator = ProgramGenerator(schema)

    def generate_and_run():
        network_program = generator.generate(abstract, "network")
        relational_program = generator.generate(abstract, "relational")
        network_db = florida.florida_network_db(seed=1979)
        relational_db = load_relational(
            schema, extract_snapshot(florida.florida_network_db(seed=1979)))
        network_trace = run_program(network_program, network_db,
                                    consistent=False)
        relational_trace = run_program(relational_program, relational_db,
                                       consistent=False)
        return network_trace, relational_trace

    network_trace, relational_trace = benchmark(generate_and_run)
    print_table("E4.2 cross-model answers", [
        ("network", ", ".join(network_trace.terminal_lines())),
        ("relational", ", ".join(relational_trace.terminal_lines())),
    ], ("model", "employees of manager SMITH > 10 years"))
    assert network_trace.terminal_lines()
    assert sorted(network_trace.terminal_lines()) == \
        sorted(relational_trace.terminal_lines())


def test_template_a_sequel(benchmark):
    """The paper's SEQUEL template (A), D2 / 3 years, verbatim text."""
    relational_db = load_relational(
        florida.florida_schema(),
        extract_snapshot(florida.florida_network_db(seed=1979)))
    query = parse_sequel(florida.d2_three_years_sequel())
    result = benchmark(evaluate, query, relational_db)
    names = [row["ENAME"] for row in result.rows()]
    print_table("E4.3 template (A)", [
        ("query", florida.d2_three_years_sequel()),
        ("answers", ", ".join(names)),
    ], ("item", "value"))
    assert names


def test_schema_change_plus_model_change_in_one_conversion(benchmark):
    """The full ambition of the Section 4.1 claim: one pipeline run
    absorbs the Figure 4.4 schema change AND retargets the program from
    CODASYL to the relational model; the output matches the network
    conversion exactly."""
    from repro.core import ConversionSupervisor
    from repro.programs import builder as b
    from repro.programs.interpreter import run_program
    from repro.restructure import restructure_database
    from repro.workloads import company

    program = b.program("REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)

    def convert_and_run():
        network_report = supervisor.convert_program(
            program, options=ConversionOptions(target_model="network"))
        relational_report = supervisor.convert_program(
            program,
            options=ConversionOptions(target_model="relational"))
        target_schema, network_target = restructure_database(
            company.company_db(seed=1979), operator)
        relational_target = load_relational(
            target_schema, extract_snapshot(network_target))
        return (
            run_program(network_report.target_program, network_target,
                        consistent=False),
            run_program(relational_report.target_program,
                        relational_target, consistent=False),
        )

    network_trace, relational_trace = benchmark(convert_and_run)
    print_table("E4.5 schema change + model change", [
        ("network target", len(network_trace.terminal_lines())),
        ("relational target", len(relational_trace.terminal_lines())),
        ("traces identical", network_trace == relational_trace),
    ], ("variant", "value"))
    assert network_trace == relational_trace
    assert network_trace.terminal_lines()


def test_template_b_codasyl_keyed_loop(benchmark):
    """Template (B): the keyed FIND NEXT ... USING loop produced for
    the same access pattern, run against the network form."""
    from repro.core.abstract import ACond, ALocate, AScan, AToOwner, \
        AbstractProgram
    from repro.programs import builder as b

    schema = florida.florida_schema()
    abstract = AbstractProgram("D2-3Y", "network", "FLORIDA", (
        ALocate("DEPT", (ACond("D#", "=", ast.Const("D2")),), bind=False),
        AScan("EMP-DEPT", florida.DEPT_ED,
              (ACond("YEAR-OF-SERVICE", "=", ast.Const(3)),),
              (
                  AToOwner("EMP", florida.EMP_ED, bind=True),
                  b.display(b.field("EMP", "ENAME")),
              ), bind=True, keyed=True),
    ))
    program = ProgramGenerator(schema).generate(abstract, "network")
    text = ast.render_program(program)
    assert "FIND NEXT EMP-DEPT WITHIN D-ED USING YEAR-OF-SERVICE=3" \
        in text

    def run():
        return run_program(program, florida.florida_network_db(seed=1979),
                           consistent=False)

    trace = benchmark(run)
    sequel_db = load_relational(
        schema, extract_snapshot(florida.florida_network_db(seed=1979)))
    sequel_names = [
        row["ENAME"] for row in evaluate(
            parse_sequel(florida.d2_three_years_sequel()), sequel_db
        ).rows()
    ]
    print_table("E4.4 template (B) vs template (A)", [
        ("CODASYL (B)", ", ".join(trace.terminal_lines())),
        ("SEQUEL (A)", ", ".join(sequel_names)),
    ], ("template", "answers"))
    assert sorted(trace.terminal_lines()) == sorted(sequel_names)
