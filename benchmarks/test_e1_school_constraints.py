"""E1 -- Figure 3.1 + Section 3.1: the school database and the
constraint behaviours the paper walks through.

Reproduced claims:

1. AUTOMATIC + MANDATORY membership makes an offering insertion fail
   when its course or semester is missing ("the insertion will fail");
2. the ERASE ... ALL MEMBERS option can delete offerings when an
   instructor is erased, leaving the database inconsistent ("this
   violates the system's integrity constraints") -- caught by our
   declarative constraints at the run-unit boundary;
3. "a course may not be offered more than twice in a school year" is
   undeclarable in 1979 models but enforced here by CardinalityLimit;
4. the same schema and instance exist in relational (Figure 3.1a) and
   CODASYL (Figure 3.1b) form with identical contents.
"""

import pytest

from conftest import print_table
from repro.errors import ExistenceViolation
from repro.network import DMLSession
from repro.workloads import school


@pytest.fixture
def db():
    return school.school_network_db(seed=1979)


def test_offering_insert_fails_without_course(db, benchmark):
    session = DMLSession(db)

    def attempt():
        fresh = school.school_network_db(seed=1979)
        inner = DMLSession(fresh)
        try:
            inner.store("OFFERING", {"SECTION": 1, "ENROLLMENT": 1,
                                     "CNO": "NO-SUCH", "S": "F75"})
            return False
        except ExistenceViolation:
            return True

    assert benchmark(attempt)
    del session


def test_erase_instructor_cascade_violates_integrity(db, benchmark):
    """Section 3.1's DELETE hazard, detected declaratively."""
    session = DMLSession(db)
    # connect one offering to an instructor (MANUAL set)
    instructor = session.find_any("INSTRUCTOR")
    assert instructor is not None
    session.find_any("COURSE", **{"CNO": "C000"})
    session.find_first("OFFERING", school.COURSE_OFF)
    session.find_any("INSTRUCTOR", **{"INAME": instructor["INAME"]})
    session.find_current("OFFERING")
    session.connect(school.INSTRUCTOR_OFF)
    db.verify_consistent()
    before = db.count("OFFERING")
    # now erase the instructor WITH ALL MEMBERS: offerings go with it
    session.find_any("INSTRUCTOR", **{"INAME": instructor["INAME"]})
    session.erase(all_members=True)
    assert db.count("OFFERING") == before - 1
    # nothing raised: the offering is *gone*, so existence constraints
    # hold vacuously -- the silent loss is exactly the Section 3.1
    # hazard ("deletion of course offerings when instructors are
    # deleted").
    benchmark(db.check_constraints)
    print_table("E1.2 ERASE ALL MEMBERS silently removed", [
        ("offerings before", before),
        ("offerings after", db.count("OFFERING")),
    ], ("quantity", "value"))


def test_course_twice_per_year_rule(db, benchmark):
    """The undeclarable-in-1979 rule, enforced here."""
    session = DMLSession(db)
    # find two semesters in the same year
    semesters = db.store("SEMESTER").all_records()
    by_year = {}
    for semester in semesters:
        by_year.setdefault(semester["YEAR"], []).append(semester["S"])
    year, keys = next((y, k) for y, k in by_year.items() if len(k) >= 2)
    # offer course C001 three times in that year
    for index, key in enumerate((keys * 2)[:3]):
        session.find_any("COURSE", **{"CNO": "C001"})
        session.store("OFFERING", {"SECTION": 80 + index,
                                   "ENROLLMENT": 1,
                                   "CNO": "C001", "S": key})
    violations = benchmark(db.check_constraints)
    twice = [v for v in violations
             if v.constraint.name == "TWICE-PER-YEAR"]
    assert twice, "third same-year offering must violate the limit"
    print_table("E1.3 twice-per-year violations", [
        (v.constraint.name, v.message) for v in twice
    ], ("constraint", "violation"))
    del year


def test_relational_and_network_forms_agree(benchmark):
    network = school.school_network_db(seed=1979)
    relational = benchmark(school.school_relational_db, seed=1979)
    rows = []
    for record_name in network.schema.records:
        net_count = network.count(record_name)
        rel_count = relational.count(record_name)
        rows.append((record_name, net_count, rel_count))
        assert net_count == rel_count
    # FK columns carry the same information the sets carried
    offering = relational.relation("OFFERING").rows()[0]
    assert offering["CNO"] and offering["S"]
    print_table("E1.4 Figure 3.1a vs 3.1b contents",
                rows, ("record type", "CODASYL", "relational"))
