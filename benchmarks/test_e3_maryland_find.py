"""E3 -- Figures 4.2-4.4 + Section 4.2: the Maryland FIND conversion.

Reproduced artifacts, asserted verbatim against the paper's text:

* Figure 4.3 parses and the schema matches Figure 4.2;
* the Figure 4.2 -> 4.4 transformation produces the Figure 4.4 set
  structure;
* the paper's two FIND statements convert into exactly the two
  converted statements the paper prints (one SORT-wrapped, one not);
* the converted statements "run equivalently": query 2 strictly; query
  1 strictly under strict mode -- and only group-order-preserving under
  the paper's own SORT keys, a divergence the paper does not remark on
  (recorded in EXPERIMENTS.md).
"""

import pytest

from conftest import make_pair, print_table
from repro.cdml import CdmlEngine, convert_statement, parse_cdml
from repro.workloads.company import (
    CONVERTED_MACHINERY_SALES,
    CONVERTED_OVER_30,
    FIGURE_4_3_DDL,
    FIND_MACHINERY_SALES,
    FIND_OVER_30,
    figure_42_schema,
    figure_44_operator,
)


@pytest.fixture(scope="module")
def conversion():
    schema = figure_42_schema()
    operator = figure_44_operator()
    return schema, operator, operator.changes(schema), \
        operator.apply_schema(schema)


def test_figure_43_parses_and_figure_44_derives(benchmark):
    from repro.schema.ddl import parse_ddl

    def build():
        schema = parse_ddl(FIGURE_4_3_DDL)
        return figure_44_operator().apply_schema(schema)

    target = benchmark(build)
    assert list(target.sets) == ["ALL-DIV", "DIV-DEPT", "DEPT-EMP"]
    assert target.record("EMP").field("DEPT-NAME").is_virtual


def test_paper_statement_conversion_verbatim(conversion, benchmark):
    schema, _operator, changes, target_schema = conversion

    def convert_both():
        one = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                schema, target_schema)
        two = convert_statement(parse_cdml(FIND_MACHINERY_SALES),
                                changes, schema, target_schema)
        return one, two

    one, two = benchmark(convert_both)
    rows = [
        ("source 1", FIND_OVER_30),
        ("paper   ", CONVERTED_OVER_30),
        ("ours    ", one.statement.render()),
        ("source 2", FIND_MACHINERY_SALES),
        ("paper   ", CONVERTED_MACHINERY_SALES),
        ("ours    ", two.statement.render()),
    ]
    print_table("E3.1 statement conversion (verbatim check)", rows,
                ("role", "statement"))
    assert one.statement.render() == CONVERTED_OVER_30
    assert two.statement.render() == CONVERTED_MACHINERY_SALES


def test_converted_statements_run_equivalently(conversion, benchmark):
    schema, operator, changes, target_schema = conversion
    source_db, target_db = make_pair(operator, seed=1979, divisions=3,
                                     employees_per_division=15)

    query_1 = parse_cdml(FIND_OVER_30)
    query_2 = parse_cdml(FIND_MACHINERY_SALES)
    paper_1 = convert_statement(query_1, changes, schema,
                                target_schema).statement
    strict_1 = convert_statement(query_1, changes, schema, target_schema,
                                 strict=True).statement
    converted_2 = convert_statement(query_2, changes, schema,
                                    target_schema).statement

    def run_all():
        source = CdmlEngine(source_db)
        target = CdmlEngine(target_db)
        return (
            [r["EMP-NAME"] for r in source.find(query_1)],
            [r["EMP-NAME"] for r in target.execute(paper_1)],
            [r["EMP-NAME"] for r in target.execute(strict_1)],
            [r["EMP-NAME"] for r in source.find(query_2)],
            [r["EMP-NAME"] for r in target.execute(converted_2)],
        )

    s1, p1, x1, s2, c2 = benchmark(run_all)
    print_table("E3.2 equivalence levels", [
        ("query 2, paper form", "strict", s2 == c2),
        ("query 1, strict mode", "strict", s1 == x1),
        ("query 1, paper form", "multiset only",
         sorted(s1) == sorted(p1) and s1 != p1),
    ], ("converted statement", "expected level", "holds"))
    assert s2 == c2
    assert s1 == x1
    assert sorted(s1) == sorted(p1)
    # The reproduction finding: the paper's own SORT ON (EMP-NAME) does
    # NOT reproduce the grouped source order on a multi-division DB.
    assert s1 != p1


def test_conversion_notes_explain_the_sort(conversion, benchmark):
    schema, _operator, changes, target_schema = conversion
    result = benchmark(convert_statement, parse_cdml(FIND_OVER_30),
                       changes, schema, target_schema)
    assert any("SORT ON (EMP-NAME)" in note for note in result.notes)
    assert any("strict" in note.lower() for note in result.notes)
