"""E7 -- Section 2.2 (Housel): inverse-operator conversion.

Housel's approach converts programs "by substituting the inverse
operators ... for each reference to the source database", then
simplifying; "the assumption of the existence of inverse operators
restricts the scope of the conversion problem".

Reproduced:

* the operator catalog's invertibility table (which restructurings
  have inverses, which are refused);
* data round-trips: operator then inverse returns the identical
  instance;
* program round-trips: a program converted for a change and then
  converted again for the inverse change behaves identically to the
  original -- after the optimizer's simplification procedure removes
  the residue (Housel's "simplification procedure");
* the non-invertible case (information loss) is refused up front.
"""

import pytest

from conftest import print_table
from repro.core import ConversionSupervisor
from repro.core.equivalence import check_equivalence
from repro.errors import NotInvertible
from repro.programs import builder as b
from repro.restructure import (
    AddField,
    ChangeMembership,
    ChangeSetOrder,
    DropField,
    RenameField,
    RenameRecord,
    RenameSet,
    restructure_database,
)
from repro.schema.model import Insertion, Retention
from repro.workloads import company


def catalog_operators(schema):
    return [
        ("RenameRecord", RenameRecord("EMP", "WORKER"), True),
        ("RenameField", RenameField("EMP", "AGE", "YEARS"), True),
        ("RenameSet", RenameSet("DIV-EMP", "STAFF"), True),
        ("AddField", AddField("EMP", "GRADE", "9(1)", 0), True),
        ("DropField", DropField("EMP", "AGE", force=True), False),
        ("ChangeSetOrder",
         ChangeSetOrder("DIV-EMP", ("AGE",), allow_duplicates=True),
         True),
        ("ChangeMembership",
         ChangeMembership("DIV-EMP", Insertion.MANUAL,
                          Retention.OPTIONAL), True),
        ("InterposeRecord", company.figure_44_operator(), True),
        ("VirtualizeField(redundant)", None, True),  # shown separately
    ]


def test_invertibility_table(benchmark):
    schema = company.figure_42_schema()

    def build_table():
        rows = []
        for name, operator, expected in catalog_operators(schema):
            if operator is None:
                rows.append((name, "yes (MaterializeField)"))
                continue
            try:
                inverse = operator.inverse(schema)
                rows.append((name, f"yes ({type(inverse).__name__})"))
                assert expected
            except NotInvertible:
                rows.append((name, "NO (information loss)"))
                assert not expected
        return rows

    rows = benchmark(build_table)
    print_table("E7.1 operator invertibility (Housel's restriction)",
                rows, ("operator", "inverse exists"))
    assert any("NO" in status for _n, status in rows)


def test_data_round_trip_identity(benchmark):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()

    def round_trip():
        db = company.company_db(seed=1979, employees_per_division=20)
        _ts, target_db = restructure_database(db, operator)
        back = operator.inverse(schema)
        _bs, back_db = restructure_database(target_db, back)
        return db, back_db

    db, back_db = benchmark(round_trip)
    original = sorted(tuple(sorted(r.values.items()))
                      for r in db.store("EMP").all_records())
    returned = sorted(tuple(sorted(r.values.items()))
                      for r in back_db.store("EMP").all_records())
    assert original == returned
    print_table("E7.2 data round trip", [
        ("EMP rows (source)", len(original)),
        ("EMP rows (after op + inverse)", len(returned)),
        ("identical", original == returned),
    ], ("quantity", "value"))


def list_program():
    return b.program("LIST", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 30), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])


def test_program_round_trip_behaviour(benchmark):
    """convert(convert(P, op), inverse(op)) behaves like P."""
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    target_schema = operator.apply_schema(schema)
    inverse = operator.inverse(schema)

    forward = ConversionSupervisor(schema, operator)
    backward = ConversionSupervisor(target_schema, inverse)

    def round_trip_convert():
        report_forward = forward.convert_program(list_program())
        assert report_forward.target_program is not None
        report_back = backward.convert_program(
            report_forward.target_program)
        assert report_back.target_program is not None, \
            report_back.failure
        return report_back.target_program

    round_tripped = benchmark(round_trip_convert)
    source_db = company.company_db(seed=1979)
    result = check_equivalence(list_program(), source_db, round_tripped,
                               company.company_db(seed=1979))
    print_table("E7.3 program round trip", [
        ("statements (original)", len(list_program().statements)),
        ("statements (round-tripped)", len(round_tripped.statements)),
        ("behaviour", result.render()),
    ], ("quantity", "value"))
    assert result.equivalent


def test_simplification_removes_round_trip_residue(benchmark):
    """Housel's 'simplification procedure': the optimizer removes
    duplicate positioning that rule substitution leaves behind."""
    from repro.core import Optimizer, ProgramAnalyzer
    from repro.core.abstract import walk

    schema = company.figure_42_schema()
    redundant = b.program("RED", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.eq(b.field("EMP", "DEPT-NAME"), "SALES"), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])
    abstract = ProgramAnalyzer(schema).analyze(redundant)

    def optimize():
        return Optimizer(schema).optimize(abstract)

    optimized = benchmark(optimize)
    before = sum(1 for _ in walk(abstract.statements))
    after = sum(1 for _ in walk(optimized.statements))
    print_table("E7.4 simplification", [
        ("abstract statements before", before),
        ("abstract statements after", after),
    ], ("quantity", "value"))
    assert after < before


def test_non_invertible_restructuring_refused(benchmark):
    schema = company.figure_42_schema()

    def refuse():
        with pytest.raises(NotInvertible):
            DropField("EMP", "AGE", force=True).inverse(schema)
        return True

    assert benchmark(refuse)
