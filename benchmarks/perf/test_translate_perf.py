"""Perf harness entry points (see src/repro/perf/harness.py).

The smoke test runs a tiny size and checks the report's shape.  The
full run -- marked ``perf`` and excluded from tier-1 -- measures 1k and
10k rows, asserts the indexed hierarchical load beats the seed's
linear-scan path by >= 10x at 10k, and (re)writes the repo baseline
``BENCH_translate.json``::

    pytest benchmarks/perf -m perf -s
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.harness import run_benchmark, summarize, write_report

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_translate.json"


def _check_report_shape(report: dict) -> None:
    for entry in report["sizes"]:
        assert entry["extract_seconds"] >= 0
        assert entry["translate_seconds"] >= 0
        assert set(entry["targets"]) == {
            "network", "relational", "hierarchical",
        }
        for target in entry["targets"].values():
            assert target["load_seconds"] >= 0
            assert target["metrics"]["records_written"] > 0
        # The indexed fast path never falls back to a linear scan.
        assert entry["snapshot_stats"]["link_scans"] == 0


def test_bench_smoke(tmp_path):
    report = run_benchmark([200], compare_linear=False)
    _check_report_shape(report)
    out = write_report(report, tmp_path / "BENCH_translate.json")
    assert out.exists()


@pytest.mark.perf
def test_bench_full_writes_baseline():
    report = run_benchmark([1000, 10000])
    _check_report_shape(report)
    at_10k = report["sizes"][1]
    comparison = at_10k["hierarchical_scan_comparison"]
    assert comparison["linear_stats"]["link_scans"] > 0
    assert comparison["indexed_stats"]["link_scans"] == 0
    assert comparison["speedup"] >= 10, (
        f"indexed hierarchical load only {comparison['speedup']:.1f}x "
        "faster than the seed linear-scan path"
    )
    write_report(report, BASELINE)
    print()
    print(summarize(report))
