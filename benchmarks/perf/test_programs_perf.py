"""Programs perf suite entry points (see src/repro/perf/programs.py).

The smoke test runs one small scale and checks the report's shape and
invariants.  The full run -- marked ``perf`` and excluded from tier-1
-- sweeps three database scales plus the 10k-row relational corpus,
asserts the paper's qualitative overhead ordering (emulation and
bridge cost more than native, rewrite stays within a constant factor)
and a >= 5x indexed-over-linear execution speedup, and (re)writes the
repo baseline ``BENCH_programs.json``::

    pytest benchmarks/perf -m perf -s

The parallel scaling gates run on the inventory tiers (E17): the mid
tier (>= 1k programs) must reach 2x at 4 workers, the 10k tier must
reach 2x at 4 and 3x at 8.  Both are CPU-gated -- wall-clock speedup
on a 1-CPU container proves nothing, so they self-skip there while the
byte-identity assertions run everywhere.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.perf.programs import (
    SMOKE_INVENTORY_TIERS,
    SMOKE_JOBS_CURVE,
    SMOKE_PROGRAMS,
    SMOKE_RELATIONAL_ROWS,
    SMOKE_RELATIONAL_STATEMENTS,
    SMOKE_SCALES,
    measure_parallel_scaling,
    run_programs_benchmark,
    summarize_programs,
    write_programs_report,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_programs.json"

# Rewrite executes the converted program natively on the target; its
# access-path length stays within a small constant factor of the
# source program's while emulation pays mapping overhead on every call
# and bridge pays reconstruction.  4x leaves headroom over the ~1.8x
# observed without tracking it exactly.
REWRITE_FACTOR = 4.0


def _check_report_shape(report: dict) -> None:
    assert report["suite"] == "programs"
    assert report["bench_format"] == 3
    for entry in report["scales"]:
        native_cost = entry["native"]["cost"]
        assert native_cost > 0
        strategies = entry["strategies"]
        assert set(strategies) == {"rewrite", "emulation", "bridge"}
        # The paper's qualitative claim: converted execution is never
        # free -- emulation and bridge pay an overhead ratio above 1 --
        # while rewrite stays within a constant factor of native.
        assert strategies["emulation"]["cost"] > native_cost
        assert strategies["bridge"]["cost"] > native_cost
        assert strategies["rewrite"]["cost"] <= REWRITE_FACTOR * native_cost
        # Behaviour preservation across the conversion.
        assert entry["traces_match"] == {
            "rewrite": True, "emulation": True, "bridge": True,
        }
    comparison = report["relational_index_comparison"]
    assert comparison["traces_identical"], (
        "indexed and linear execution produced different IO traces"
    )
    assert comparison["indexed_stats"]["index_hits"] > 0
    assert comparison["linear_stats"]["index_hits"] == 0
    scaling = report["parallel_scaling"]
    assert scaling["tiers"], "scaling sweep must cover at least one tier"
    for tier in scaling["tiers"]:
        assert tier["programs"] > 0
        assert [row["jobs"] for row in tier["jobs"]]
        for row in tier["jobs"]:
            assert row["seconds"] > 0
            assert "chunk_size" in row
            # Determinism is non-negotiable at every worker count; the
            # *speedup* is asserted only in the perf-marked, CPU-gated
            # scaling tests (wall-clock on shared/1-CPU runners proves
            # nothing).
            assert row["reports_identical"], (
                f"tier {tier['programs']}: jobs={row['jobs']} reports "
                "diverged from the 1-worker run"
            )
        # Cost-model columns (bench_format 3).  The *speedup* over the
        # fixed order is asserted only in the perf-marked gate below;
        # byte-identity between the orders is non-negotiable.
        order = tier["strategy_order"]
        assert order["fixed_seconds"] > 0
        assert order["cost_seconds"] > 0
        assert order["reports_identical"], (
            f"tier {tier['programs']}: cost-ordered reports diverged "
            "from the fixed-order run"
        )
        model = tier["cost_model"]
        assert model["counters"]["predictions"] == tier["programs"]
        assert model["reports_with_cost"] == tier["programs"], (
            "every cascade report must carry a predicted cost"
        )
        for channel in model["accuracy"].values():
            assert channel["samples"] > 0
            assert channel["factor"] > 0


def test_programs_smoke(tmp_path):
    report = run_programs_benchmark(
        scales=SMOKE_SCALES,
        corpus_size=SMOKE_PROGRAMS,
        relational_rows=SMOKE_RELATIONAL_ROWS,
        relational_statements=SMOKE_RELATIONAL_STATEMENTS,
        jobs_curve=SMOKE_JOBS_CURVE,
        parallel_tiers=SMOKE_INVENTORY_TIERS,
    )
    _check_report_shape(report)
    out = write_programs_report(report, tmp_path / "BENCH_programs.json")
    assert out.exists()


@pytest.mark.perf
def test_programs_full_writes_baseline():
    report = run_programs_benchmark()
    _check_report_shape(report)
    comparison = report["relational_index_comparison"]
    assert comparison["rows"] == 10_000
    assert comparison["speedup"] >= 5, (
        f"indexed execution only {comparison['speedup']:.1f}x faster "
        "than use_indexes=False on the 10k-row corpus"
    )
    write_programs_report(report, BASELINE)
    print()
    print(summarize_programs(report))


def _scaling_rows(tiers: tuple[int, ...],
                  jobs_curve: tuple[int, ...]) -> dict[int, dict]:
    scaling = measure_parallel_scaling(jobs_curve=jobs_curve, tiers=tiers)
    (tier,) = scaling["tiers"]
    return {row["jobs"]: row for row in tier["jobs"]}


@pytest.mark.perf
def test_cost_order_beats_fixed_order_on_pathological_tier():
    """The COBRA acceptance gate: on a 1k-program inventory tier at
    pathology_rate=0.75, the cost-ordered cascade must run >= 1.3x
    faster end-to-end than the fixed rewrite-first order while
    producing byte-identical reports.  CPU-gated: wall-clock on a
    shared 1-CPU runner proves nothing."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 CPUs for a meaningful wall-clock gate")
    scaling = measure_parallel_scaling(jobs_curve=(1,), tiers=(1_000,),
                                       pathology_rate=0.75)
    (tier,) = scaling["tiers"]
    order = tier["strategy_order"]
    assert order["reports_identical"], (
        "cost-ordered reports diverged from the fixed-order run"
    )
    assert order["speedup"] >= 1.3, (
        f"cost order only {order['speedup']:.2f}x faster than fixed "
        "order on the pathological 1k tier"
    )
    model = tier["cost_model"]
    assert model["counters"]["rewrite_skips"] > 0, (
        "the pathological tier must exercise the rewrite-skip path"
    )


@pytest.mark.perf
def test_parallel_scaling_mid_tier_reaches_2x_at_4_workers():
    """The CI scaling gate: >= 1k programs (real work, not spawn
    overhead), >= 2x at 4 workers.  CPU-gated: meaningless below 4
    cores, where the pool just timeslices one CPU."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 CPUs for a meaningful scaling curve")
    by_jobs = _scaling_rows(tiers=(1_000,), jobs_curve=(1, 4))
    assert by_jobs[4]["reports_identical"]
    assert by_jobs[4]["speedup_vs_serial"] >= 2.0, (
        f"4 workers only {by_jobs[4]['speedup_vs_serial']:.2f}x faster "
        "on the 1k-program tier"
    )


@pytest.mark.perf
def test_parallel_scaling_10k_tier_reaches_acceptance_targets():
    """The acceptance gate: on the 10k-program tier, 4 workers >= 2x
    and 8 workers >= 3x over serial."""
    if (os.cpu_count() or 1) < 8:
        pytest.skip("needs >= 8 CPUs for the 8-worker acceptance gate")
    by_jobs = _scaling_rows(tiers=(10_000,), jobs_curve=(1, 4, 8))
    for jobs, floor in ((4, 2.0), (8, 3.0)):
        assert by_jobs[jobs]["reports_identical"]
        assert by_jobs[jobs]["speedup_vs_serial"] >= floor, (
            f"{jobs} workers only "
            f"{by_jobs[jobs]['speedup_vs_serial']:.2f}x faster on the "
            "10k-program tier"
        )
