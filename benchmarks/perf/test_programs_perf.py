"""Programs perf suite entry points (see src/repro/perf/programs.py).

The smoke test runs one small scale and checks the report's shape and
invariants.  The full run -- marked ``perf`` and excluded from tier-1
-- sweeps three database scales plus the 10k-row relational corpus,
asserts the paper's qualitative overhead ordering (emulation and
bridge cost more than native, rewrite stays within a constant factor)
and a >= 5x indexed-over-linear execution speedup, and (re)writes the
repo baseline ``BENCH_programs.json``::

    pytest benchmarks/perf -m perf -s
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.programs import (
    SMOKE_JOBS_CURVE,
    SMOKE_PARALLEL_PROGRAMS,
    SMOKE_PROGRAMS,
    SMOKE_RELATIONAL_ROWS,
    SMOKE_RELATIONAL_STATEMENTS,
    SMOKE_SCALES,
    run_programs_benchmark,
    summarize_programs,
    write_programs_report,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_programs.json"

# Rewrite executes the converted program natively on the target; its
# access-path length stays within a small constant factor of the
# source program's while emulation pays mapping overhead on every call
# and bridge pays reconstruction.  4x leaves headroom over the ~1.8x
# observed without tracking it exactly.
REWRITE_FACTOR = 4.0


def _check_report_shape(report: dict) -> None:
    assert report["suite"] == "programs"
    for entry in report["scales"]:
        native_cost = entry["native"]["cost"]
        assert native_cost > 0
        strategies = entry["strategies"]
        assert set(strategies) == {"rewrite", "emulation", "bridge"}
        # The paper's qualitative claim: converted execution is never
        # free -- emulation and bridge pay an overhead ratio above 1 --
        # while rewrite stays within a constant factor of native.
        assert strategies["emulation"]["cost"] > native_cost
        assert strategies["bridge"]["cost"] > native_cost
        assert strategies["rewrite"]["cost"] <= REWRITE_FACTOR * native_cost
        # Behaviour preservation across the conversion.
        assert entry["traces_match"] == {
            "rewrite": True, "emulation": True, "bridge": True,
        }
    comparison = report["relational_index_comparison"]
    assert comparison["traces_identical"], (
        "indexed and linear execution produced different IO traces"
    )
    assert comparison["indexed_stats"]["index_hits"] > 0
    assert comparison["linear_stats"]["index_hits"] == 0
    scaling = report["parallel_scaling"]
    assert scaling["programs"] > 0
    assert [row["jobs"] for row in scaling["jobs"]]
    for row in scaling["jobs"]:
        assert row["seconds"] > 0
        # Determinism is non-negotiable at every worker count; the
        # *speedup* is asserted only in the perf-marked full run
        # (wall-clock on shared/1-CPU runners proves nothing).
        assert row["reports_identical"], (
            f"jobs={row['jobs']} reports diverged from the 1-worker run"
        )


def test_programs_smoke(tmp_path):
    report = run_programs_benchmark(
        scales=SMOKE_SCALES,
        corpus_size=SMOKE_PROGRAMS,
        relational_rows=SMOKE_RELATIONAL_ROWS,
        relational_statements=SMOKE_RELATIONAL_STATEMENTS,
        jobs_curve=SMOKE_JOBS_CURVE,
        parallel_programs=SMOKE_PARALLEL_PROGRAMS,
    )
    _check_report_shape(report)
    out = write_programs_report(report, tmp_path / "BENCH_programs.json")
    assert out.exists()


@pytest.mark.perf
def test_programs_full_writes_baseline():
    report = run_programs_benchmark()
    _check_report_shape(report)
    comparison = report["relational_index_comparison"]
    assert comparison["rows"] == 10_000
    assert comparison["speedup"] >= 5, (
        f"indexed execution only {comparison['speedup']:.1f}x faster "
        "than use_indexes=False on the 10k-row corpus"
    )
    write_programs_report(report, BASELINE)
    print()
    print(summarize_programs(report))


@pytest.mark.perf
def test_parallel_scaling_reaches_2x_at_4_workers():
    """Only meaningful on a multi-core runner (the tier-1 container has
    a single CPU, where the spawn overhead *costs* time); hence
    perf-marked and excluded from CI smoke."""
    import os

    if (os.cpu_count() or 1) < 4:
        pytest.skip("needs >= 4 CPUs for a meaningful scaling curve")
    from repro.perf.programs import measure_parallel_scaling

    scaling = measure_parallel_scaling(jobs_curve=(1, 4))
    by_jobs = {row["jobs"]: row for row in scaling["jobs"]}
    assert by_jobs[4]["reports_identical"]
    assert by_jobs[4]["speedup_vs_serial"] >= 2.0, (
        f"4 workers only {by_jobs[4]['speedup_vs_serial']:.2f}x faster"
    )
