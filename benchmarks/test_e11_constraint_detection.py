"""E11 -- Section 5.3: detecting procedurally-enforced constraints.

"Another open problem is to determine whether the program analyzer can
detect database integrity constraints that are enforced procedurally
in the program (or when they are not but should be)."

Reproduced:

* existence checks (FIND owner guarding a STORE) are detected over a
  corpus and proposed as declarative ExistenceConstraints;
* the cardinality counter idiom (the twice-per-year rule) is detected
  and the proposed CardinalityLimit matches the rule the program
  enforces;
* proposed constraints actually hold on the live database (the
  centralization the paper recommends is sound);
* programs that *should* check but don't are distinguishable (the
  "when they are not but should be" half).
"""


from conftest import print_table
from repro.analysis import detect_procedural_constraints
from repro.programs import ast
from repro.programs import builder as b
from repro.restructure import AddConstraint
from repro.schema import CardinalityLimit, ExistenceConstraint
from repro.workloads import company, school
from repro.workloads.corpus import CorpusSpec, generate_corpus


def test_detection_over_corpus(benchmark):
    corpus = generate_corpus(CorpusSpec(seed=1979, size=100,
                                        pathology_rate=0.0))
    schema = company.figure_42_schema()

    def detect_all():
        found = {}
        for item in corpus:
            detections = detect_procedural_constraints(item.program,
                                                       schema)
            if detections:
                found[item.program.name] = detections
        return found

    found = benchmark(detect_all)
    guarded = [item for item in corpus if item.kind == "guarded-store"]
    detected_names = set(found)
    rows = [
        ("guarded-store programs", len(guarded)),
        ("programs with detections", len(detected_names)),
        ("guarded-store detected",
         sum(1 for item in guarded
             if item.program.name in detected_names)),
    ]
    print_table("E11.1 existence-check detection over corpus", rows,
                ("quantity", "value"))
    # every guarded store detected; nothing else flagged
    for item in guarded:
        assert item.program.name in detected_names
    for name in detected_names:
        assert name.startswith("GUARDED-STORE")


def test_cardinality_rule_detected_and_matches_schema(benchmark,
                                                      school_db=None):
    db = school.school_network_db(seed=1979)
    schema = db.schema
    program = b.program("ENFORCER", "network", "SCHOOL", [
        b.find_any("COURSE", **{"CNO": "C000"}),
        b.assign("COUNT", 0),
        *b.scan_set("OFFERING", school.COURSE_OFF, [
            b.assign("COUNT", b.add(b.v("COUNT"), 1)),
        ]),
        b.if_(b.lt(b.v("COUNT"), 2), [
            b.store("OFFERING", **{"SECTION": 9, "ENROLLMENT": 0,
                                   "CNO": "C000", "S": "F75"}),
        ]),
    ])

    detections = benchmark(detect_procedural_constraints, program, schema)
    limits = [d for d in detections
              if isinstance(d.constraint, CardinalityLimit)]
    assert limits
    proposed = limits[0].constraint
    declared = next(c for c in schema.constraints
                    if c.name == "TWICE-PER-YEAR")
    print_table("E11.2 cardinality detection", [
        ("program enforces", proposed.describe()),
        ("schema declares", declared.describe()),
    ], ("source", "rule"))
    assert proposed.set_name == declared.set_name
    assert proposed.limit == declared.limit


def test_proposed_constraints_hold_on_live_database(benchmark):
    """Centralizing the detected constraint (AddConstraint) succeeds:
    the instance satisfies it."""
    schema = company.figure_42_schema()
    program = b.program("GUARD", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.if_(ast.status_ok(), [
            b.store("EMP", **{"EMP-NAME": "G", "AGE": 1,
                              "DEPT-NAME": "SALES",
                              "DIV-NAME": "MACHINERY"}),
        ]),
    ])
    detections = detect_procedural_constraints(program, schema)
    assert detections
    proposed = detections[0].constraint
    assert isinstance(proposed, ExistenceConstraint)

    def centralize_and_check():
        operator = AddConstraint(proposed)
        target_schema = operator.apply_schema(schema)
        from repro.restructure import restructure_database

        db = company.company_db(seed=1979)
        _ts, target_db = restructure_database(db, operator)
        target_db.verify_consistent()
        del target_schema
        return True

    assert benchmark(centralize_and_check)


def test_missing_check_is_distinguishable(benchmark):
    """'or when they are not but should be': the unguarded variant of
    the same store produces no detection, so the analyst can diff the
    two reports."""
    schema = company.figure_42_schema()
    unguarded = b.program("NOGUARD", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "G", "AGE": 1,
                          "DEPT-NAME": "SALES"}),
    ])
    detections = benchmark(detect_procedural_constraints, unguarded,
                           schema)
    print_table("E11.3 unguarded store", [
        ("detections", len(detections)),
        ("analyst hint", "store of EMP lacks the existence check its "
                         "siblings perform"),
    ], ("quantity", "value"))
    assert detections == []
