"""E5 -- Section 2.1.2: emulation vs bridge vs rewrite efficiency.

The paper's claims, measured:

* "Efficiency is degraded in the emulation strategy because each
  source DML statement must be mapped into a target emulation
  program" -- emulation pays per-call mapping work and occurrence
  materialization;
* "In the bridge program strategy, a subset of the target database
  must be dynamically restructured.  The increased overhead in program
  size and/or access path length can result in a significant increase
  in processing requirements" -- bridge pays reconstruction
  proportional to database size;
* rewriting "avoids the drawbacks": converted programs run with native
  access-path length.

Expected shape: cost(rewrite) < cost(emulation) < cost(bridge) at
every database size, with the bridge gap growing with size.
"""

import pytest

from conftest import make_pair, print_table
from repro.core.analyzer_db import ConversionAnalyzer
from repro.programs import builder as b
from repro.strategies import (
    BridgeStrategy,
    EmulationStrategy,
    RewriteStrategy,
)
from repro.workloads import company

SIZES = (10, 40, 160)


def report_program():
    return b.program("REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])


def make_strategies(size):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)

    def emulation():
        _s, target = make_pair(operator, employees_per_division=size)
        return EmulationStrategy(target, catalog)

    def bridge():
        _s, target = make_pair(operator, employees_per_division=size)
        return BridgeStrategy(target, operator, catalog)

    def rewrite():
        _s, target = make_pair(operator, employees_per_division=size)
        return RewriteStrategy(target, schema, operator)

    return {"emulation": emulation, "bridge": bridge,
            "rewrite": rewrite}


@pytest.fixture(scope="module")
def sweep():
    """costs[size][strategy] over the size sweep."""
    program = report_program()
    costs: dict[int, dict[str, int]] = {}
    for size in SIZES:
        costs[size] = {}
        for name, factory in make_strategies(size).items():
            strategy = factory()
            run = strategy.run(program)
            costs[size][name] = run.cost()
    return costs


def test_cost_ordering_at_every_size(sweep, benchmark):
    benchmark(lambda: {s: dict(v) for s, v in sweep.items()})
    rows = []
    for size in SIZES:
        by_strategy = sweep[size]
        rows.append((size, by_strategy["rewrite"],
                     by_strategy["emulation"], by_strategy["bridge"]))
        assert by_strategy["rewrite"] < by_strategy["emulation"] \
            < by_strategy["bridge"], (size, by_strategy)
    print_table("E5.1 operation-count cost by database size", rows,
                ("employees/div", "rewrite", "emulation", "bridge"))


def lookup_program():
    """A selective query: one CALC lookup, independent of DB size."""
    import repro.programs.ast as ast_mod

    return b.program("LOOKUP", "network", "COMPANY-NAME", [
        b.find_any("EMP", **{"EMP-NAME": "CLARK-0000"}),
        b.if_(ast_mod.status_ok(), [
            b.get("EMP"),
            b.display(b.field("EMP", "EMP-NAME"), b.field("EMP", "AGE")),
        ], [b.display("NOT FOUND")]),
    ])


def test_bridge_overhead_grows_with_size_on_selective_query(benchmark):
    """The paper's sharpest case: a one-record lookup costs O(1) under
    rewrite but the bridge still reconstructs the whole database."""
    program = lookup_program()
    benchmark(lambda: make_strategies(SIZES[0])["bridge"]().run(program).cost())
    rows = []
    ratios = []
    for size in SIZES:
        strategies = make_strategies(size)
        costs = {
            name: factory().run(program).cost()
            for name, factory in strategies.items()
        }
        ratio = costs["bridge"] / max(costs["rewrite"], 1)
        ratios.append(ratio)
        rows.append((size, costs["rewrite"], costs["emulation"],
                     costs["bridge"], f"{ratio:.0f}x"))
        assert costs["rewrite"] <= costs["emulation"] < costs["bridge"]
    print_table("E5.2 selective lookup: bridge pays whole-DB "
                "reconstruction", rows,
                ("employees/div", "rewrite", "emulation", "bridge",
                 "bridge/rewrite"))
    # bridge/rewrite ratio grows ~linearly with database size
    assert ratios[-1] > 4 * ratios[0] / 2
    assert ratios[-1] > ratios[1] > ratios[0]


def test_emulation_overhead_is_per_call(sweep, benchmark):
    benchmark(lambda: sweep[SIZES[0]]["emulation"])
    """Emulation overhead stays a roughly constant multiple (per-call
    mapping), unlike bridge's whole-database term."""
    emulation_ratio = [
        sweep[size]["emulation"] / sweep[size]["rewrite"]
        for size in SIZES
    ]
    bridge_ratio = [
        sweep[size]["bridge"] / sweep[size]["rewrite"] for size in SIZES
    ]
    assert emulation_ratio[-1] < bridge_ratio[-1]
    assert max(emulation_ratio) < 4.0  # bounded multiple


def test_program_size_growth(benchmark):
    """Section 2.1.2's other overhead axis: "increased overhead in
    program size".  Rewriting grows the *program* (nested loops,
    ensure-guards) while emulation/bridge keep the source program and
    pay at run time instead."""
    from repro.core import ConversionSupervisor
    from repro.programs import ast as ast_mod
    from repro.workloads import company as company_mod

    schema = company_mod.figure_42_schema()
    operator = company_mod.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)

    def count(program):
        return sum(1 for _ in ast_mod.walk_program(program))

    def measure():
        rows = []
        for factory in (report_program, lookup_program):
            source = factory()
            report = supervisor.convert_program(source)
            rows.append((source.name, count(source),
                         count(report.target_program)))
        return rows

    rows = benchmark(measure)
    print_table("E5.4 program size (statements)", [
        (name, before, after, f"{after / before:.2f}x")
        for name, before, after in rows
    ], ("program", "source", "rewritten", "growth"))
    report_row = rows[0]
    assert report_row[2] > report_row[1]  # scans nest: program grows
    lookup_row = rows[1]
    assert lookup_row[2] <= lookup_row[1] + 1  # untouched access: ~same


@pytest.mark.parametrize("name", ["emulation", "bridge", "rewrite"])
def test_strategy_wall_time(name, benchmark):
    """Wall-clock timing of one run per strategy at the middle size."""
    strategy = make_strategies(40)[name]()
    program = report_program()
    benchmark(strategy.run, program)


def test_all_strategies_preserve_observable_behaviour(benchmark):
    from repro.programs.interpreter import run_program

    program = report_program()
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    source_trace = run_program(
        program, company.company_db(seed=1979,
                                    employees_per_division=40),
        consistent=False)

    def run_all():
        _s, t1 = make_pair(operator, employees_per_division=40)
        _s, t2 = make_pair(operator, employees_per_division=40)
        _s, t3 = make_pair(operator, employees_per_division=40)
        return (
            EmulationStrategy(t1, catalog).run(program).trace,
            BridgeStrategy(t2, operator, catalog).run(program).trace,
            RewriteStrategy(t3, schema, operator).run(program).trace,
        )

    emulation_trace, bridge_trace, rewrite_trace = benchmark(run_all)
    rows = [
        ("emulation", "strict", emulation_trace == source_trace),
        ("bridge", "strict", bridge_trace == source_trace),
        ("rewrite", "multiset (order-warned)",
         sorted(rewrite_trace.terminal_lines())
         == sorted(source_trace.terminal_lines())),
    ]
    print_table("E5.3 behaviour preservation by strategy", rows,
                ("strategy", "level", "holds"))
    assert emulation_trace == source_trace
    assert bridge_trace == source_trace
    assert sorted(rewrite_trace.terminal_lines()) == \
        sorted(source_trace.terminal_lines())


def test_emulation_cache_ablation(benchmark):
    """Design-choice ablation: the emulator's occurrence cache (the
    paper's "maintenance of run time descriptions and tables").
    Without it every FIND NEXT re-materializes and re-sorts the
    occurrence, and emulation turns quadratic in occurrence size."""
    from repro.core.analyzer_db import ConversionAnalyzer
    from repro.workloads import company as company_mod

    schema = company_mod.figure_42_schema()
    operator = company_mod.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    program = report_program()

    def run_pair(size):
        _s, target_cached = make_pair(operator,
                                      employees_per_division=size)
        cached = EmulationStrategy(target_cached, catalog,
                                   cache_occurrences=True).run(program)
        _s, target_uncached = make_pair(operator,
                                        employees_per_division=size)
        uncached = EmulationStrategy(target_uncached, catalog,
                                     cache_occurrences=False).run(program)
        assert cached.trace == uncached.trace  # behaviour identical
        return cached.cost(), uncached.cost()

    def sweep():
        return {size: run_pair(size) for size in (10, 40, 160)}

    costs = benchmark(sweep)
    rows = [
        (size, cached, uncached, f"{uncached / cached:.1f}x")
        for size, (cached, uncached) in costs.items()
    ]
    print_table("E5.5 emulation occurrence-cache ablation", rows,
                ("employees/div", "cached", "uncached", "penalty"))
    # the penalty grows with occurrence size (quadratic materialization)
    penalties = [uncached / cached for _s, (cached, uncached)
                 in costs.items()]
    assert penalties[-1] > penalties[0]
    assert costs[160][1] > 2 * costs[160][0]
