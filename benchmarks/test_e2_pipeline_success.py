"""E2 -- Figure 4.1 + Section 2.1.1: end-to-end conversion of a program
corpus, measuring the automation-rate distribution.

The paper reports that operational tools of the era achieved "a 65-70
percent success rate (sometimes higher)", with failures "marked ... and
then the conversion is completed by hand".  We regenerate that shape:
a generated application system (25% Section 3.2 pathology injection)
is converted for the Figure 4.4 restructuring by

* a purely mechanical run (RefusingAnalyst), and
* an analyst-assisted run (verb pins supplied),

and the status distribution is reported.  Expected shape: the majority
of programs convert mechanically, pathological programs need the
analyst or fail, and the assisted rate exceeds the mechanical rate.
"""

import pytest

from conftest import print_table
from repro.core import ConversionSupervisor, RefusingAnalyst
from repro.options import ConversionOptions
from repro.core.report import (
    STATUS_ASSISTED,
    STATUS_AUTOMATIC,
    STATUS_FAILED,
    STATUS_WARNINGS,
)
from repro.workloads import company
from repro.workloads.corpus import CorpusSpec, generate_corpus

SPEC = CorpusSpec(seed=1979, size=80, pathology_rate=0.25)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(SPEC)


def _verb_pins(corpus):
    return {
        item.program.name: {0: "STORE"}
        for item in corpus if "verb-variability" in item.pathologies
    }


def test_mechanical_automation_rate(corpus, benchmark):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()

    def convert_all():
        supervisor = ConversionSupervisor(schema, operator,
                                          analyst=RefusingAnalyst())
        return supervisor.convert_system(
            [item.program for item in corpus])

    batch = benchmark(convert_all)
    counts = batch.counts()
    rows = sorted(counts.items())
    rows.append(("automation rate", f"{batch.automation_rate():.0%}"))
    print_table("E2.1 mechanical conversion", rows, ("status", "count"))

    # Shape: a solid majority converts mechanically (the paper's
    # 65-70%+ band), and only pathological programs fail.
    assert batch.automation_rate() >= 0.65
    failed = [r for r in batch.reports if r.status == STATUS_FAILED]
    pathological_names = {
        item.program.name for item in corpus if item.pathologies
        and item.kind not in ("report", "audit-file")
    }
    for report in failed:
        assert report.program_name in pathological_names


def test_assisted_rate_exceeds_mechanical(corpus, benchmark):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    pins = _verb_pins(corpus)

    def convert_all():
        supervisor = ConversionSupervisor(schema, operator,
                                          verb_pins=pins)
        return supervisor.convert_system(
            [item.program for item in corpus])

    assisted = benchmark(convert_all)
    mechanical = ConversionSupervisor(
        schema, operator, analyst=RefusingAnalyst()
    ).convert_system([item.program for item in corpus])

    rows = [
        (status,
         mechanical.counts().get(status, 0),
         assisted.counts().get(status, 0))
        for status in (STATUS_AUTOMATIC, STATUS_WARNINGS,
                       STATUS_ASSISTED, STATUS_FAILED)
    ]
    print_table("E2.2 mechanical vs analyst-assisted", rows,
                ("status", "mechanical", "assisted"))
    assert assisted.conversion_rate() > mechanical.conversion_rate()
    # with verbs pinned, the only remaining failures would be genuinely
    # unconvertible patterns; this operator has none in the corpus
    assert assisted.counts().get(STATUS_FAILED, 0) < \
        mechanical.counts().get(STATUS_FAILED, 1)


def test_automation_rate_vs_pathology_rate(benchmark):
    """§3.2 hopes "pathological cases ... do not occur frequently in
    practice, or are disappearing as more programs are written using
    development techniques which emphasize clarity".  The sweep makes
    that quantitative: the mechanical automation rate is a function of
    the pathology rate, and the paper's 65-70% band corresponds to a
    heavily pathological inventory."""
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()

    def sweep():
        rows = []
        for rate in (0.0, 0.25, 0.5, 0.75):
            items = generate_corpus(CorpusSpec(seed=7, size=60,
                                               pathology_rate=rate))
            supervisor = ConversionSupervisor(schema, operator,
                                              analyst=RefusingAnalyst())
            batch = supervisor.convert_system(
                [item.program for item in items])
            rows.append((rate, batch.automation_rate()))
        return rows

    rows = benchmark(sweep)
    print_table("E2.4 automation rate vs pathology rate", [
        (f"{rate:.0%}", f"{automation:.0%}") for rate, automation in rows
    ], ("pathology rate", "mechanical automation"))
    rates = [automation for _r, automation in rows]
    assert rates[0] == 1.0                  # clean corpus: fully automatic
    assert all(a >= b for a, b in zip(rates, rates[1:]))  # monotone down
    assert rates[-1] < 0.9                  # pathology really hurts


def test_converted_corpus_preserves_behaviour(corpus, benchmark):
    """Every converted program is I/O-equivalent (strictly, or as a
    multiset for order-warned programs)."""
    from repro.core.equivalence import check_equivalence
    from repro.programs.interpreter import ProgramInputs
    from repro.restructure import restructure_database

    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator,
                                      verb_pins=_verb_pins(corpus))
    sample = [item for item in corpus][:30]

    def verify_all():
        strict = warned_ok = diverged = 0
        for item in sample:
            report = supervisor.convert_program(item.program)
            if report.target_program is None:
                continue
            source_db = company.company_db(seed=2)
            _s, target_db = restructure_database(source_db, operator)
            fresh_source = company.company_db(seed=2)
            inputs = ProgramInputs(terminal=list(item.terminal_inputs))
            result = check_equivalence(
                item.program, fresh_source, report.target_program,
                target_db, inputs=inputs,
                warnings=tuple(report.warnings), consistent=False,
            )
            if result.equivalent:
                strict += 1
            elif report.warnings and sorted(
                    result.source_trace.terminal_lines()) == sorted(
                    result.target_trace.terminal_lines()):
                warned_ok += 1
            else:
                diverged += 1
        return strict, warned_ok, diverged

    strict, warned_ok, diverged = benchmark(verify_all)
    print_table("E2.3 behaviour preservation", [
        ("strictly equivalent", strict),
        ("equivalent up to warned order", warned_ok),
        ("diverged", diverged),
    ], ("band", "programs"))
    assert diverged == 0
    assert strict > 0


def test_relational_inventory_insensitive_to_change(benchmark):
    """E2.5 -- the data-independence contrast (Section 1.2): the same
    application written set-at-a-time is nearly untouched by the
    Figure 4.4 restructuring, while the navigational inventory needs
    nested rewrites and order warnings."""
    from repro.programs import ast as ast_mod
    from repro.workloads.corpus import generate_relational_corpus

    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)
    network_items = generate_corpus(CorpusSpec(seed=1979, size=40,
                                               pathology_rate=0.0))
    relational_items = generate_relational_corpus(
        CorpusSpec(seed=1979, size=40))

    def measure():
        rows = []
        for label, items, model in (
                ("network", network_items, "network"),
                ("relational", relational_items, "relational")):
            converted = untouched = warned = 0
            for item in items:
                report = supervisor.convert_program(
                    item.program,
                    options=ConversionOptions(target_model=model))
                if report.target_program is None:
                    continue
                converted += 1
                before = sum(1 for _ in
                             ast_mod.walk_program(item.program))
                after = sum(1 for _ in ast_mod.walk_program(
                    report.target_program))
                if after == before and not report.notes \
                        and not report.warnings:
                    untouched += 1
                if report.warnings:
                    warned += 1
            rows.append((label, converted, untouched, warned))
        return rows

    rows = benchmark(measure)
    print_table("E2.5 conversion sensitivity by data model", rows,
                ("inventory", "converted", "untouched", "order-warned"))
    network_row, relational_row = rows
    assert relational_row[2] > network_row[2]   # more untouched
    assert relational_row[3] < network_row[3]   # fewer warnings
    assert relational_row[2] >= relational_row[1] // 2
