"""E10 -- Section 5.2: levels of "successful conversion".

The paper's two worked examples of conversions that are *desired* but
not strictly I/O-equivalent:

1. "suppose employees who retired prior to 1950 are deleted during
   conversion.  Then the converted program which prints all current or
   prior employees is not strictly I/O equivalent ... Yet we would
   probably want a conversion system to convert the 'print all
   employees' program successfully, though perhaps a warning should be
   issued."
2. "suppose a schema at one point in time allows an employee to have
   no associated department, then the schema is changed to require
   each employee to have a department.  A program to insert employees
   may not have the same behavior as previously ... This is the
   desired behavior because the application requirements have changed,
   but it is not strictly equivalent."

Reproduced: both conversions go through, carry warnings, and the
equivalence checker classifies the outcomes into levels.
"""


from conftest import print_table
from repro.core import ConversionSupervisor, check_equivalence
from repro.core.report import STATUS_WARNINGS
from repro.network import DMLSession, NetworkDatabase
from repro.programs import builder as b
from repro.restructure import (
    AddConstraint,
    ChangeMembership,
    Composite,
    restructure_database,
)
from repro.schema import ExistenceConstraint, Insertion, Retention, Schema
from repro.workloads import company


def print_all_program():
    return b.program("PRINT-ALL", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.display(b.field("EMP", "EMP-NAME")),
        ]),
    ])


def test_information_reducing_conversion_warns_but_converts(benchmark):
    """Example 1: data deleted during conversion -> level-2."""
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(print_all_program())
    assert report.target_program is not None

    def run_both():
        source_db = company.company_db(seed=1979,
                                       employees_per_division=12)
        _ts, target_db = restructure_database(
            company.company_db(seed=1979, employees_per_division=12),
            operator)
        # delete the "retired" employees from the TARGET only (the
        # information-reducing step of the paper's example)
        session = DMLSession(target_db)
        erased = 0
        for record in list(target_db.store("EMP").all_records()):
            if record["AGE"] > 60:
                session.find_any("EMP", **{"EMP-NAME": record["EMP-NAME"]})
                session.erase()
                erased += 1
        result = check_equivalence(print_all_program(), source_db,
                                   report.target_program, target_db,
                                   warnings=tuple(report.warnings),
                                   consistent=False)
        return result, erased

    result, erased = benchmark(run_both)
    print_table("E10.1 retired-employees example", [
        ("employees deleted in target", erased),
        ("strict I/O equivalence", result.equivalent),
        ("level", result.level),
        ("first divergence", (result.divergence or "")[:60]),
    ], ("quantity", "value"))
    if erased:
        assert not result.equivalent
        assert result.level == "divergent"
    # the conversion itself succeeded with a warning -- the paper's
    # "convert successfully, though perhaps a warning should be issued"
    assert report.status == STATUS_WARNINGS or report.warnings


def orphan_hire_program():
    """Insert an employee with NO division positioned (legal while the
    set is OPTIONAL)."""
    return b.program("ORPHAN-HIRE", "network", "COMPANY-NAME", [
        b.store("EMP", **{"EMP-NAME": "DRIFTER", "DEPT-NAME": "SALES",
                          "AGE": 44}),
        b.display("STORED", b.v("DB-STATUS")),
    ])


def test_constraint_strengthening_changes_behaviour(benchmark):
    """Example 2: OPTIONAL -> MANDATORY membership; the insert program
    now fails where it used to succeed -- desired, warned, and not
    strictly equivalent."""
    schema = Schema("LOOSE")
    schema.define_record("DIV", {"DIV-NAME": "X(20)"},
                         calc_keys=["DIV-NAME"])
    schema.define_record("EMP", {"EMP-NAME": "X(25)",
                                 "DEPT-NAME": "X(10)", "AGE": "9(2)"},
                         calc_keys=["EMP-NAME"])
    schema.define_set("ALL-DIV", "SYSTEM", "DIV", order_keys=["DIV-NAME"])
    schema.define_set("DIV-EMP", "DIV", "EMP",
                      insertion=Insertion.AUTOMATIC,
                      retention=Retention.OPTIONAL)

    operator = Composite((
        ChangeMembership("DIV-EMP", Insertion.AUTOMATIC,
                         Retention.MANDATORY),
        AddConstraint(ExistenceConstraint("EMP-HAS-DIV", "DIV-EMP")),
    ))
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(orphan_hire_program())
    assert report.target_program is not None
    assert report.notes  # membership + constraint notes

    def run_both():
        source_db = NetworkDatabase(schema)
        source_trace = None
        from repro.programs.interpreter import run_program

        source_trace = run_program(orphan_hire_program(), source_db,
                                   consistent=False)
        _ts, target_db = restructure_database(NetworkDatabase(schema),
                                              operator)
        try:
            target_trace = run_program(report.target_program, target_db,
                                       consistent=False)
            failed = False
        except Exception:
            target_trace = None
            failed = True
        return source_trace, target_trace, failed

    source_trace, target_trace, failed = benchmark(run_both)
    print_table("E10.2 employee-must-have-department example", [
        ("source behaviour", source_trace.terminal_lines()),
        ("target behaviour", "insert refused (ExistenceViolation)"
         if failed else target_trace.terminal_lines()),
        ("strictly equivalent", False),
        ("desired per new requirements", True),
    ], ("aspect", "value"))
    assert source_trace.terminal_lines() == ["STORED 0000"]
    assert failed  # the strengthened schema refuses the orphan insert


def test_level_classification_summary(benchmark):
    """The levels table: strict / warned / divergent over three
    representative conversions."""
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)

    hire = b.program("HIRE", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "ZZ", "DEPT-NAME": "SALES",
                          "AGE": 30, "DIV-NAME": "MACHINERY"}),
        b.display("OK"),
    ])
    count = b.program("COUNT", "network", "COMPANY-NAME", [
        b.assign("N", 0),
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.assign("N", b.add(b.v("N"), 1)),
        ]),
        b.display(b.v("N")),
    ])
    ordered = print_all_program()

    def classify():
        rows = []
        for program in (hire, count, ordered):
            report = supervisor.convert_program(program)
            source_db = company.company_db(seed=3)
            _ts, target_db = restructure_database(
                company.company_db(seed=3), operator)
            result = check_equivalence(program, source_db,
                                       report.target_program, target_db,
                                       warnings=tuple(report.warnings),
                                       consistent=False)
            if result.equivalent:
                level = result.level
            elif sorted(result.source_trace.terminal_lines()) == sorted(
                    result.target_trace.terminal_lines()):
                level = "multiset (order warned)"
            else:
                level = "divergent"
            rows.append((program.name, report.status, level))
        return rows

    rows = benchmark(classify)
    print_table("E10.3 levels of successful conversion", rows,
                ("program", "conversion status", "equivalence level"))
    levels = {name: level for name, _status, level in rows}
    assert levels["HIRE"] == "strict"
    assert levels["COUNT"] == "strict"  # counting is order-insensitive
    assert levels["PRINT-ALL"] == "multiset (order warned)"
