"""E6 -- Section 3.2: execution-time variability detection.

The paper argues programs with run-time verb variability, order
dependence, process-first confusion, or status-code dependence defeat
mechanical conversion, and hopes that "pathological cases ... do not
occur frequently in practice".  We measure the detectors against a
labelled corpus (precision/recall) and demonstrate that a converted
pathological program really does misbehave when converted anyway.
"""

import pytest

from conftest import print_table
from repro.analysis import detect_pathologies
from repro.workloads.corpus import (
    CorpusSpec,
    PATHOLOGY_KINDS,
    generate_corpus,
)

SPEC = CorpusSpec(seed=1979, size=120, pathology_rate=0.4)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(SPEC)


def test_detector_precision_and_recall(corpus, benchmark):
    def detect_all():
        results = {}
        for item in corpus:
            results[item.program.name] = {
                f.kind for f in detect_pathologies(item.program)
            }
        return results

    detected = benchmark(detect_all)
    rows = []
    for kind in PATHOLOGY_KINDS:
        true_positive = false_negative = false_positive = 0
        for item in corpus:
            has_label = kind in item.pathologies
            was_detected = kind in detected[item.program.name]
            if has_label and was_detected:
                true_positive += 1
            elif has_label and not was_detected:
                false_negative += 1
            elif was_detected and not has_label:
                false_positive += 1
        recall = true_positive / max(true_positive + false_negative, 1)
        precision = true_positive / max(true_positive + false_positive, 1)
        rows.append((kind, true_positive, false_positive,
                     false_negative, f"{precision:.2f}", f"{recall:.2f}"))
        # Recall must be perfect: a missed pathology silently breaks a
        # converted program.
        assert recall == 1.0, (kind, rows)
    print_table("E6.1 detector accuracy over labelled corpus", rows,
                ("pathology", "TP", "FP", "FN", "precision", "recall"))


def test_blocking_findings_are_exactly_verb_variability(corpus,
                                                        benchmark):
    benchmark(lambda: [detect_pathologies(item.program)
                       for item in corpus[:10]])
    for item in corpus:
        findings = detect_pathologies(item.program)
        blocking = {f.kind for f in findings if f.blocking}
        if "verb-variability" in item.pathologies:
            assert blocking == {"verb-variability"}
        else:
            assert not blocking


def test_unconverted_order_dependent_program_misbehaves(benchmark):
    """Converting an order-dependent program anyway (ignoring the
    warning) changes its observable output -- why the paper wants the
    analyst in the loop."""
    from conftest import make_pair
    from repro.core import ConversionSupervisor
    from repro.programs import builder as b
    from repro.programs.interpreter import run_program
    from repro.workloads import company

    program = b.program("ORDERED", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.display(b.field("EMP", "EMP-NAME")),
        ]),
    ])
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(program)
    assert report.warnings  # the framework flagged it

    def run_both():
        source_db, target_db = make_pair(operator,
                                         employees_per_division=12)
        source_trace = run_program(program, source_db, consistent=False)
        target_trace = run_program(report.target_program, target_db,
                                   consistent=False)
        return source_trace, target_trace

    source_trace, target_trace = benchmark(run_both)
    assert source_trace != target_trace            # order differs ...
    assert sorted(source_trace.terminal_lines()) == \
        sorted(target_trace.terminal_lines())      # ... content doesn't
    print_table("E6.2 warned order divergence", [
        ("source first lines", source_trace.terminal_lines()[:3]),
        ("target first lines", target_trace.terminal_lines()[:3]),
    ], ("trace", "lines"))


def test_status_code_change_under_restructuring(benchmark):
    """"It is easy to write programs which depend on certain status
    codes being returned by the database system but certain
    restructurings ... will cause a different status code to be
    returned."  A FIND FIRST that used to answer 'empty set' (0307)
    answers differently once the set is interposed away and the scan
    runs against the group level."""
    from repro.network import DMLSession
    from repro.workloads import company
    from repro.restructure import restructure_database

    operator = company.figure_44_operator()

    def statuses():
        # a division with NO employees: first FIND on DIV-EMP gives 0307
        source_db = company.company_db(seed=1979,
                                       employees_per_division=4)
        session = DMLSession(source_db)
        session.store("DIV", {"DIV-NAME": "EMPTYDIV", "DIV-LOC": "X"})
        session.find_any("DIV", **{"DIV-NAME": "EMPTYDIV"})
        session.find_first("EMP", "DIV-EMP")
        source_status = session.status

        _schema, target_db = restructure_database(source_db, operator)
        target_session = DMLSession(target_db)
        target_session.find_any("DIV", **{"DIV-NAME": "EMPTYDIV"})
        # the naive (unconverted) probe for employees now asks the
        # *group* level first:
        target_session.find_first("DEPT", "DIV-DEPT")
        group_status = target_session.status
        target_session.find_first("EMP", "DEPT-EMP")
        member_status = target_session.status
        return source_status, group_status, member_status

    source_status, group_status, member_status = benchmark(statuses)
    print_table("E6.3 status codes before/after restructuring", [
        ("source FIND FIRST EMP WITHIN DIV-EMP", source_status),
        ("target FIND FIRST DEPT WITHIN DIV-DEPT", group_status),
        ("target FIND FIRST EMP WITHIN DEPT-EMP", member_status),
    ], ("probe", "status"))
    assert source_status == "0307"
    # the member-level probe now reports missing *currency*, not an
    # empty set -- a different code, exactly as Section 3.2 warns
    assert member_status == "0306"
