"""Unit tests for the CODASYL DML session."""

import pytest

from repro.errors import ExistenceViolation, MandatoryViolation
from repro.network import (
    DMLSession,
    NetworkDatabase,
    STATUS_END_OF_SET,
    STATUS_NO_CURRENCY,
    STATUS_NOT_FOUND,
    STATUS_OK,
)
from repro.schema import Insertion, Retention, Schema


@pytest.fixture
def session(small_db):
    return DMLSession(small_db)


class TestFindAny:
    def test_by_calc_key(self, session):
        record = session.find_any("OWNER", **{"KEY": "K1"})
        assert record["NAME"] == "OWNER-K1"
        assert session.status == STATUS_OK

    def test_miss_sets_status(self, session):
        assert session.find_any("OWNER", **{"KEY": "NOPE"}) is None
        assert session.status == STATUS_NOT_FOUND

    def test_by_non_calc_field_scans(self, session):
        record = session.find_any("OWNER", **{"NAME": "OWNER-K2"})
        assert record["KEY"] == "K2"

    def test_uses_uwa_values(self, session):
        session.move("K2", "OWNER", "KEY")
        record = session.find_any("OWNER")
        assert record["KEY"] == "K2"

    def test_calc_with_extra_filter(self, session):
        assert session.find_any("OWNER", **{"KEY": "K1",
                                            "NAME": "WRONG"}) is None
        assert session.status == STATUS_NOT_FOUND


class TestSetNavigation:
    def test_scan_in_sorted_order(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        labels = []
        record = session.find_first("ITEM", "OWNS")
        while record is not None:
            labels.append(record["LABEL"])
            record = session.find_next("ITEM", "OWNS")
        assert labels == ["K1-1", "K1-2", "K1-3"]
        assert session.status == STATUS_END_OF_SET

    def test_find_next_from_owner_means_first(self, session):
        session.find_any("OWNER", **{"KEY": "K2"})
        record = session.find_next("ITEM", "OWNS")
        assert record["LABEL"] == "K2-1"

    def test_find_prior_and_last(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        last = session.find_last("ITEM", "OWNS")
        assert last["LABEL"] == "K1-3"
        prior = session.find_prior("ITEM", "OWNS")
        assert prior["LABEL"] == "K1-2"

    def test_find_owner(self, session):
        session.find_any("OWNER", **{"KEY": "K2"})
        session.find_first("ITEM", "OWNS")
        owner = session.find_owner("OWNS")
        assert owner["KEY"] == "K2"

    def test_owner_of_system_set_not_found(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        assert session.find_owner("ALL-OWNER") is None
        assert session.status == STATUS_NOT_FOUND

    def test_no_currency_status(self, session):
        assert session.find_first("ITEM", "OWNS") is None
        assert session.status == STATUS_NO_CURRENCY

    def test_find_next_using(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        session.move(2, "ITEM", "SEQ")
        record = session.find_next_using("ITEM", "OWNS", "SEQ")
        assert record["LABEL"] == "K1-2"
        assert session.find_next_using("ITEM", "OWNS", "SEQ") is None
        assert session.status == STATUS_END_OF_SET

    def test_find_current_reestablishes(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        session.find_first("ITEM", "OWNS")
        record = session.find_current("OWNER")
        assert record["KEY"] == "K1"
        assert session.currency.run_unit.record_name == "OWNER"


class TestGetStoreModifyErase:
    def test_get_reads_current(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        values = session.get()
        assert values["NAME"] == "OWNER-K1"

    def test_get_without_currency(self, small_db):
        session = DMLSession(small_db)
        assert session.get() is None
        assert session.status == STATUS_NO_CURRENCY

    def test_store_connects_via_currency(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        record = session.store("ITEM", {"SEQ": 9, "LABEL": "NEW"})
        owner = session.db.owner_record("OWNS", record.rid)
        assert owner["KEY"] == "K1"

    def test_store_from_uwa(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        session.move(8, "ITEM", "SEQ")
        session.move("UWA", "ITEM", "LABEL")
        record = session.store("ITEM")
        assert record["LABEL"] == "UWA"

    def test_modify_repositions_in_sorted_set(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        record = session.find_first("ITEM", "OWNS")
        assert record["SEQ"] == 1
        session.modify({"SEQ": 99})
        session.find_any("OWNER", **{"KEY": "K1"})
        last = session.find_last("ITEM", "OWNS")
        assert last["SEQ"] == 99

    def test_erase_disconnects_and_deletes(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        session.find_first("ITEM", "OWNS")
        session.erase()
        assert session.status == STATUS_OK
        session.find_any("OWNER", **{"KEY": "K1"})
        assert session.db.set_store("OWNS").members(
            session.currency.run_unit.rid
        ).__len__() == 2

    def test_erase_owner_with_optional_members_disconnects(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        session.erase()
        assert session.status == STATUS_OK
        # items survive, unconnected
        assert session.db.count("ITEM") == 6

    def test_erase_all_members_cascades(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        session.erase(all_members=True)
        assert session.db.count("ITEM") == 3

    def test_connect_disconnect(self, session):
        session.find_any("OWNER", **{"KEY": "K1"})
        item = session.find_first("ITEM", "OWNS")
        session.disconnect("OWNS")
        assert session.db.set_store("OWNS").owner(item.rid) is None
        # reconnect to K2's occurrence
        session.find_any("OWNER", **{"KEY": "K2"})
        session.find_current("ITEM")
        session.connect("OWNS")
        assert session.db.owner_record("OWNS", item.rid)["KEY"] == "K2"


class TestMandatoryMembership:
    @pytest.fixture
    def strict_db(self):
        schema = Schema("STRICT")
        schema.define_record("P", {"K": "X(2)"}, calc_keys=["K"])
        schema.define_record("C", {"V": "9(2)"})
        schema.define_set("ALL-P", "SYSTEM", "P")
        schema.define_set("PC", "P", "C",
                          insertion=Insertion.AUTOMATIC,
                          retention=Retention.MANDATORY)
        return NetworkDatabase(schema)

    def test_store_without_owner_fails(self, strict_db):
        session = DMLSession(strict_db)
        with pytest.raises(ExistenceViolation):
            session.store("C", {"V": 1})

    def test_store_with_currency_succeeds(self, strict_db):
        session = DMLSession(strict_db)
        session.store("P", {"K": "A"})
        record = session.store("C", {"V": 1})
        assert strict_db.owner_record("PC", record.rid)["K"] == "A"

    def test_erase_owner_with_mandatory_members_refused(self, strict_db):
        session = DMLSession(strict_db)
        session.store("P", {"K": "A"})
        session.store("C", {"V": 1})
        session.find_any("P", **{"K": "A"})
        with pytest.raises(MandatoryViolation):
            session.erase()

    def test_erase_all_members_allows_cascade(self, strict_db):
        session = DMLSession(strict_db)
        session.store("P", {"K": "A"})
        session.store("C", {"V": 1})
        session.find_any("P", **{"K": "A"})
        session.erase(all_members=True)
        assert strict_db.count("C") == 0

    def test_disconnect_mandatory_caught_at_run_unit(self, strict_db):
        session = DMLSession(strict_db)
        session.store("P", {"K": "A"})
        session.store("C", {"V": 1})
        session.disconnect("PC")
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            strict_db.verify_consistent()


class TestVirtualSelection:
    def test_store_routes_by_virtual_value(self, company_db):
        session = DMLSession(company_db)
        record = session.store("EMP", {
            "EMP-NAME": "ROUTED", "DEPT-NAME": "SALES", "AGE": 30,
            "DIV-NAME": "CHEMICAL",
        })
        owner = company_db.owner_record("DIV-EMP", record.rid)
        assert owner["DIV-NAME"] == "CHEMICAL"

    def test_get_resolves_virtual_field(self, company_db):
        session = DMLSession(company_db)
        session.find_any("DIV", **{"DIV-NAME": "MACHINERY"})
        session.find_first("EMP", "DIV-EMP")
        values = session.get()
        assert values["DIV-NAME"] == "MACHINERY"


class TestScopedOwnerSelection:
    """CODASYL SET SELECTION ... THRU OWNER: when the owner key is
    ambiguous by value (the interposed weak entity), currency
    disambiguates."""

    @pytest.fixture
    def two_sales_db(self, company_db):
        from repro.restructure import restructure_database
        from repro.workloads import company

        _ts, target_db = restructure_database(
            company_db, company.figure_44_operator())
        # both divisions have a SALES department
        sales = [r for r in target_db.store("DEPT").all_records()
                 if r["DEPT-NAME"] == "SALES"]
        assert len(sales) == 2
        return target_db

    def test_store_picks_currency_consistent_owner(self, two_sales_db):
        session = DMLSession(two_sales_db)
        session.find_any("DIV", **{"DIV-NAME": "CHEMICAL"})
        record = session.store("EMP", {
            "EMP-NAME": "SCOPED", "DEPT-NAME": "SALES", "AGE": 20,
        })
        dept = two_sales_db.owner_record("DEPT-EMP", record.rid)
        div = two_sales_db.owner_record("DIV-DEPT", dept.rid)
        assert div["DIV-NAME"] == "CHEMICAL"

    def test_other_division_currency_picks_other_group(self,
                                                       two_sales_db):
        session = DMLSession(two_sales_db)
        session.find_any("DIV", **{"DIV-NAME": "MACHINERY"})
        record = session.store("EMP", {
            "EMP-NAME": "SCOPED2", "DEPT-NAME": "SALES", "AGE": 20,
        })
        dept = two_sales_db.owner_record("DEPT-EMP", record.rid)
        div = two_sales_db.owner_record("DIV-DEPT", dept.rid)
        assert div["DIV-NAME"] == "MACHINERY"
