"""Tests for the three conversion strategies (Section 2.1.2) and the
paper's efficiency claims (E5 in miniature)."""

import pytest

from repro.core.analyzer_db import ConversionAnalyzer
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import run_program
from repro.restructure import restructure_database
from repro.strategies import (
    BridgeStrategy,
    DifferentialFile,
    EmulationStrategy,
    RewriteStrategy,
)
from repro.workloads import company


def report_program():
    return b.program("REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME"),
                          b.field("EMP", "DEPT-NAME"),
                          b.field("EMP", "DIV-NAME")),
            ]),
        ]),
        b.display("END"),
    ])


def hire_program():
    return b.program("HIRE", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "ZZ-HIRE", "DEPT-NAME": "SALES",
                          "AGE": 25, "DIV-NAME": "MACHINERY"}),
        b.display("HIRED"),
    ])


def transfer_program():
    return b.program("TRANSFER", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.find_first("EMP", "DIV-EMP"),
        b.if_(ast.status_ok(), [
            b.modify("EMP", **{"DEPT-NAME": "ADMIN"}),
            b.display("MOVED"),
        ]),
    ])


@pytest.fixture
def setup(company_schema, interpose_operator):
    catalog = ConversionAnalyzer().analyze_operator(company_schema,
                                                    interpose_operator)

    def make_target(seed=42):
        source_db = company.company_db(seed=seed)
        _schema, target_db = restructure_database(source_db,
                                                  interpose_operator)
        return source_db, target_db

    return catalog, make_target


def source_trace(program, seed=42):
    return run_program(program, company.company_db(seed=seed),
                       consistent=False)


class TestEmulation:
    def test_retrieval_preserves_trace_exactly(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = EmulationStrategy(target_db, catalog)
        run = strategy.run(report_program())
        assert run.trace == source_trace(report_program())

    def test_emulation_counts_mapping_work(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = EmulationStrategy(target_db, catalog)
        run = strategy.run(report_program())
        assert run.metrics.emulation_mappings > 0
        assert run.metrics.sort_operations > 0  # occurrence re-sort

    def test_store_maintains_target_structure(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = EmulationStrategy(target_db, catalog)
        before = target_db.count("EMP")
        strategy.run(hire_program())
        assert target_db.count("EMP") == before + 1
        target_db.verify_consistent()

    def test_modify_virtualized_field_reconnects(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = EmulationStrategy(target_db, catalog)
        run = strategy.run(transfer_program())
        assert run.trace.terminal_lines() == ["MOVED"]
        target_db.verify_consistent()
        # the moved employee now sits under an ADMIN group
        admin_groups = [
            r for r in target_db.store("DEPT").all_records()
            if r["DEPT-NAME"] == "ADMIN"
        ]
        assert admin_groups

    def test_find_owner_two_hops(self, setup, company_schema):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = EmulationStrategy(target_db, catalog)
        program = b.program("OWNERQ", "network", "COMPANY-NAME", [
            b.find_any("EMP", **{"EMP-NAME": "TAYLOR-0000"}),
            b.if_(ast.status_ok(), [
                b.find_owner("DIV-EMP"),
                b.get("DIV"),
                b.display(b.field("DIV", "DIV-NAME")),
            ], [b.display("NO EMP")]),
        ])
        run = strategy.run(program)
        assert run.trace == source_trace(program)


class TestBridge:
    def test_retrieval_preserves_trace_exactly(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = BridgeStrategy(
            target_db, company.figure_44_operator(), catalog)
        run = strategy.run(report_program())
        assert run.trace == source_trace(report_program())
        assert run.metrics.bridge_materializations > 0

    def test_clean_run_skips_retranslation(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = BridgeStrategy(
            target_db, company.figure_44_operator(), catalog)
        strategy.run(report_program())
        assert strategy.retranslations == 0

    def test_update_run_retranslates(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = BridgeStrategy(
            target_db, company.figure_44_operator(), catalog)
        before = target_db.count("EMP")
        run = strategy.run(hire_program())
        assert run.trace.terminal_lines() == ["HIRED"]
        assert strategy.retranslations == 1
        assert strategy.target_db.count("EMP") == before + 1
        strategy.target_db.verify_consistent()

    def test_sequential_runs_see_updates(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = BridgeStrategy(
            target_db, company.figure_44_operator(), catalog)
        strategy.run(hire_program())
        lookup = b.program("CHECK", "network", "COMPANY-NAME", [
            b.find_any("EMP", **{"EMP-NAME": "ZZ-HIRE"}),
            b.display(b.v("DB-STATUS")),
        ])
        run = strategy.run(lookup)
        assert run.trace.terminal_lines() == ["0000"]


class TestRewrite:
    def test_retrieval_multiset_equivalent(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = RewriteStrategy(target_db, catalog.source_schema,
                                   company.figure_44_operator())
        run = strategy.run(report_program())
        assert sorted(run.trace.terminal_lines()) == \
            sorted(source_trace(report_program()).terminal_lines())

    def test_conversion_is_memoized(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = RewriteStrategy(target_db, catalog.source_schema,
                                   company.figure_44_operator())
        first = strategy.conversion_report(report_program())
        second = strategy.conversion_report(report_program())
        assert first is second

    def test_update_program_strict(self, setup):
        catalog, make_target = setup
        _source, target_db = make_target()
        strategy = RewriteStrategy(target_db, catalog.source_schema,
                                   company.figure_44_operator())
        run = strategy.run(hire_program())
        assert run.trace == source_trace(hire_program())
        target_db.verify_consistent()


class TestStrategyComparison:
    def test_paper_cost_ordering(self, setup):
        """Section 2.1.2's shape: rewrite cheapest, bridge most
        expensive, emulation in between."""
        catalog, make_target = setup
        costs = {}

        _s, target1 = make_target()
        costs["emulation"] = EmulationStrategy(target1, catalog).run(
            report_program()).cost()
        _s, target2 = make_target()
        costs["bridge"] = BridgeStrategy(
            target2, company.figure_44_operator(), catalog).run(
            report_program()).cost()
        _s, target3 = make_target()
        costs["rewrite"] = RewriteStrategy(
            target3, catalog.source_schema,
            company.figure_44_operator()).run(report_program()).cost()

        assert costs["rewrite"] < costs["emulation"] < costs["bridge"], \
            costs


class TestDifferentialFile:
    def test_logging(self):
        diff = DifferentialFile()
        assert not diff.dirty
        diff.log_store("EMP", 3, {"A": 1})
        diff.log_modify("EMP", 3, {"A": 2})
        diff.log_erase("EMP", 3, cascade=False)
        assert len(diff) == 3
        assert diff.dirty
        ops = [e.op for e in diff.entries]
        assert ops == ["store", "modify", "erase"]


class TestEmulationReorderedSet:
    def test_old_order_preserved_under_reordering(self):
        """A SetOrderChanged restructuring: the emulated program still
        sees the OLD member order."""
        from repro.restructure import ChangeSetOrder

        schema = company.figure_42_schema()
        operator = ChangeSetOrder("DIV-EMP", ("AGE",),
                                  allow_duplicates=True)
        catalog = ConversionAnalyzer().analyze_operator(schema, operator)
        program = b.program("ORDERED", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ])
        source_trace = run_program(program, company.company_db(seed=42),
                                   consistent=False)
        _ts, target_db = restructure_database(company.company_db(seed=42),
                                              operator)
        # sanity: the raw target order differs (sorted by AGE now)
        raw_trace = run_program(program, target_db, consistent=False)
        assert raw_trace != source_trace
        # but the emulated run restores the old EMP-NAME order
        _ts, fresh_target = restructure_database(
            company.company_db(seed=42), operator)
        strategy = EmulationStrategy(fresh_target, catalog)
        run = strategy.run(program)
        assert run.trace == source_trace
        assert run.metrics.sort_operations > 0
