"""Unit tests for the Program Analyzer, templates, access patterns and
access path graphs."""

import pytest

from repro.core import (
    AccessPathGraph,
    ALocate,
    AScan,
    AFirst,
    AToOwner,
    AStore,
    ProgramAnalyzer,
    access_pattern_sequence,
)
from repro.core.abstract import AErase, AModify, render_abstract, walk
from repro.core.access_patterns import render_sequence
from repro.errors import AnalysisError
from repro.programs import ast
from repro.programs import builder as b
from repro.workloads import florida


class TestTemplateMatching:
    def analyze(self, schema, statements):
        program = b.program("T", "network", schema.name, statements)
        return ProgramAnalyzer(schema).analyze(program)

    def test_locate_with_get(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            b.get("DIV"),
        ])
        assert len(abstract.statements) == 1
        locate = abstract.statements[0]
        assert isinstance(locate, ALocate)
        assert locate.bind
        assert locate.conditions[0].field == "DIV-NAME"

    def test_locate_without_get(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
        ])
        assert not abstract.statements[0].bind

    def test_scan_template(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ])
        scan = abstract.statements[1]
        assert isinstance(scan, AScan)
        assert scan.entity == "EMP"
        assert scan.via == "DIV-EMP"
        assert scan.bind
        assert scan.order_sensitive

    def test_keyed_scan_template(self, company_schema):
        """The paper's template (B): FIND NEXT ... USING."""
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            b.find_next_using("EMP", "DIV-EMP", **{"DEPT-NAME": "SALES"}),
            b.while_(ast.status_ok(), [
                b.get("EMP"),
                b.find_next_using("EMP", "DIV-EMP",
                                  **{"DEPT-NAME": "SALES"}),
            ]),
        ])
        scan = abstract.statements[1]
        assert isinstance(scan, AScan)
        assert scan.keyed
        assert scan.conditions[0].field == "DEPT-NAME"

    def test_process_first_template(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.process_first("EMP", "DIV-EMP", [b.display("X")]),
        ])
        assert isinstance(abstract.statements[1], AFirst)

    def test_owner_template(self, florida_db):
        abstract = self.analyze(florida_db.schema, [
            b.find_any("EMP-DEPT"),
            b.find_owner(florida.EMP_ED),
            b.get("EMP"),
        ])
        owner = abstract.statements[1]
        assert isinstance(owner, AToOwner)
        assert owner.entity == "EMP"
        assert owner.bind

    def test_store_modify_erase(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            b.store("EMP", **{"EMP-NAME": "A", "AGE": 1,
                              "DEPT-NAME": "S"}),
            b.modify("EMP", **{"AGE": 2}),
            b.erase("EMP"),
        ])
        kinds = [type(s) for s in abstract.statements[1:]]
        assert kinds == [AStore, AModify, AErase]

    def test_free_navigation_rejected(self, company_schema):
        with pytest.raises(AnalysisError):
            self.analyze(company_schema, [
                b.find_next("EMP", "DIV-EMP"),  # no template
            ])

    def test_variable_verb_blocks(self, company_schema):
        with pytest.raises(AnalysisError):
            self.analyze(company_schema, [
                b.accept("V"),
                b.generic_call(b.v("V"), "EMP"),
            ])

    def test_pinned_verb_unblocks(self, company_schema):
        program = b.program("T", "network", "COMPANY-NAME", [
            b.accept("V"),
            b.generic_call(b.v("V"), "EMP", **{"EMP-NAME": "X"}),
        ])
        abstract = ProgramAnalyzer(company_schema).analyze(
            program, pinned_verbs={0: "FIND-ANY"})
        locates = [s for s in abstract.statements
                   if isinstance(s, ALocate)]
        assert locates

    def test_constant_generic_calls_translate(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            b.generic_call("STORE", "EMP", **{"EMP-NAME": "A", "AGE": 1,
                                              "DEPT-NAME": "S"}),
            b.generic_call("ERASE", "EMP"),
        ])
        kinds = [type(s) for s in abstract.statements]
        assert AStore in kinds and AErase in kinds

    def test_procedure_with_dml_rejected(self, company_schema):
        procedure = b.procedure("P", (), [b.get("EMP")])
        program = b.program("T", "network", "COMPANY-NAME",
                            [b.call("P")], procedures=[procedure])
        with pytest.raises(AnalysisError):
            ProgramAnalyzer(company_schema).analyze(program)

    def test_notes_carry_warnings(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ])
        assert any("order-dependence" in note for note in abstract.notes)

    def test_render_abstract_readable(self, company_schema):
        abstract = self.analyze(company_schema, [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.scan_set("EMP", "DIV-EMP", [b.display("X")]),
        ])
        text = render_abstract(abstract)
        assert "LOCATE DIV" in text
        assert "SCAN EMP VIA DIV-EMP" in text


class TestRelationalAnalysis:
    def test_query_becomes_aquery(self, florida_db):
        program = b.program("T", "relational", "FLORIDA", [
            b.query("SELECT ENAME FROM EMP", "$R"),
        ])
        abstract = ProgramAnalyzer(florida_db.schema).analyze(program)
        from repro.core.abstract import AQuery

        assert isinstance(abstract.statements[0], AQuery)

    def test_insert_delete_update(self, florida_db):
        program = b.program("T", "relational", "FLORIDA", [
            b.rel_insert("EMP", **{"E#": "E9", "ENAME": "X"}),
            b.rel_update("EMP", {"E#": "E9"}, {"ENAME": "Y"}),
            b.rel_delete("EMP", **{"E#": "E9"}),
        ])
        abstract = ProgramAnalyzer(florida_db.schema).analyze(program)
        kinds = [type(s).__name__ for s in abstract.statements]
        assert kinds == ["AStore", "ALocate", "AModify", "ALocate",
                         "AErase"]


class TestAccessPatterns:
    def test_smith_query_matches_paper(self):
        schema = florida.florida_schema()
        sequence = access_pattern_sequence(
            florida.smith_query_abstract(), schema)
        assert render_sequence(sequence) == (
            "ACCESS DEPT via DEPT\n"
            "ACCESS EMP-DEPT via DEPT\n"
            "ACCESS EMP via EMP-DEPT\n"
            "RETRIEVE"
        )

    def test_conditions_included_on_request(self):
        schema = florida.florida_schema()
        sequence = access_pattern_sequence(
            florida.smith_query_abstract(), schema,
            include_conditions=True)
        assert "MGR = 'SMITH'" in sequence[0].render()

    def test_update_verbs_in_sequence(self, company_schema):
        from repro.core.abstract import AbstractProgram

        program = AbstractProgram("T", "network", "X", (
            ALocate("DIV", (), bind=False),
            AStore("EMP", ()),
            AErase("EMP"),
        ))
        sequence = access_pattern_sequence(program, company_schema)
        verbs = [p.verb for p in sequence]
        assert verbs == ["ACCESS", "STORE", "ERASE"]

    def test_analyzed_program_yields_same_patterns(self, florida_db):
        """Analyzing the concrete Smith program produces the paper's
        sequence too."""
        schema = florida_db.schema
        abstract = ProgramAnalyzer(schema).analyze(
            florida.smith_query_network_program())
        sequence = access_pattern_sequence(abstract, schema)
        rendered = [p.render() for p in sequence]
        assert "ACCESS DEPT via DEPT" in rendered
        assert "ACCESS EMP-DEPT via DEPT" in rendered
        assert "ACCESS EMP via EMP-DEPT" in rendered
        assert "RETRIEVE" in rendered


class TestAccessPathGraph:
    def test_single_path(self, company_schema):
        graph = AccessPathGraph(company_schema)
        paths = graph.paths("DIV", "EMP")
        assert len(paths) == 1
        assert paths[0][0].set_name == "DIV-EMP"
        assert not graph.is_ambiguous("DIV", "EMP")

    def test_two_hop_path(self):
        schema = florida.florida_schema()
        graph = AccessPathGraph(schema)
        path = graph.shortest_path("DEPT", "EMP")
        assert [hop.set_name for hop in path] == \
            [florida.DEPT_ED, florida.EMP_ED]
        assert path[0].direction == "down"
        assert path[1].direction == "up"

    def test_realizations_per_model(self):
        schema = florida.florida_schema()
        graph = AccessPathGraph(schema)
        hop = graph.shortest_path("DEPT", "EMP")[0]
        assert "FIND NEXT" in hop.realization("network", schema)
        assert "join" in hop.realization("relational", schema)
        assert "GNP" in hop.realization("hierarchical", schema)

    def test_ambiguity_detection(self, company_schema):
        schema = company_schema.copy()
        schema.define_set("SECOND-PATH", "DIV", "EMP")
        graph = AccessPathGraph(schema)
        assert graph.is_ambiguous("DIV", "EMP")
        assert len(graph.paths("DIV", "EMP")) == 2

    def test_no_path(self, company_schema):
        schema = company_schema.copy()
        schema.define_record("LONER", {"X": "X(1)"})
        graph = AccessPathGraph(schema)
        assert graph.paths("DIV", "LONER") == []
        import networkx as nx

        with pytest.raises(nx.NetworkXNoPath):
            graph.shortest_path("DIV", "LONER")

    def test_entry_points(self, company_schema):
        graph = AccessPathGraph(company_schema)
        assert graph.entry_points() == ["DIV", "EMP"]


def test_walk_and_children(company_schema):
    analyzer = ProgramAnalyzer(company_schema)
    abstract = analyzer.analyze(b.program("T", "network", "C", [
        b.find_any("DIV", **{"DIV-NAME": "X"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 10), [b.display("Y")]),
        ]),
    ]))
    kinds = [type(s).__name__ for s in walk(abstract.statements)]
    assert "ALocate" in kinds
    assert "AScan" in kinds
    assert "If" in kinds
