"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.workloads.company import FIGURE_4_3_DDL

FIG44_SPEC = ("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP "
              "AS DIV-DEPT, DEPT-EMP.\n")

REPORT_PROGRAM = """\
PROGRAM REPORT (network / COMPANY-NAME).
  FIND ANY DIV USING DIV-NAME='MACHINERY'.
  FIND FIRST EMP WITHIN DIV-EMP.
  PERFORM WHILE (DB-STATUS = '0000')
    GET EMP.
    IF (EMP.AGE > 45)
      DISPLAY EMP.EMP-NAME.
    END-IF
    FIND NEXT EMP WITHIN DIV-EMP.
  END-PERFORM
"""

VARIABLE_VERB_PROGRAM = """\
PROGRAM CONSOLE (network / COMPANY-NAME).
  ACCEPT V.
  CALL DML(V, EMP, EMP-NAME='X').
"""


@pytest.fixture
def artifacts(tmp_path):
    ddl = tmp_path / "company.ddl"
    ddl.write_text(FIGURE_4_3_DDL)
    spec = tmp_path / "fig44.spec"
    spec.write_text(FIG44_SPEC)
    program = tmp_path / "report.cob"
    program.write_text(REPORT_PROGRAM)
    return {"ddl": str(ddl), "spec": str(spec), "program": str(program),
            "dir": tmp_path}


def test_validate_ddl(artifacts, capsys):
    assert main(["validate-ddl", artifacts["ddl"]]) == 0
    out = capsys.readouterr().out
    assert "SCHEMA NAME IS COMPANY-NAME." in out
    assert "2 record type(s)" in out


def test_validate_ddl_syntax_error(tmp_path, capsys):
    bad = tmp_path / "bad.ddl"
    bad.write_text("SCHEMA NAME COMPANY.")
    assert main(["validate-ddl", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_changes(artifacts, capsys):
    assert main(["changes", "--ddl", artifacts["ddl"],
                 "--spec", artifacts["spec"]]) == 0
    out = capsys.readouterr().out
    assert "record DEPT interposed on set DIV-EMP" in out


def test_changes_with_target_ddl(artifacts, capsys):
    assert main(["changes", "--ddl", artifacts["ddl"],
                 "--spec", artifacts["spec"], "--target-ddl"]) == 0
    out = capsys.readouterr().out
    assert "SET NAME IS DEPT-EMP." in out


def test_changes_warns_on_information_loss(artifacts, tmp_path, capsys):
    spec = tmp_path / "drop.spec"
    spec.write_text("DROP FIELD EMP.AGE FORCE.\n")
    assert main(["changes", "--ddl", artifacts["ddl"],
                 "--spec", str(spec)]) == 0
    assert "information-reducing" in capsys.readouterr().out


def test_analyze(artifacts, capsys):
    assert main(["analyze", "--ddl", artifacts["ddl"],
                 "--program", artifacts["program"]]) == 0
    out = capsys.readouterr().out
    assert "SCAN EMP VIA DIV-EMP" in out
    assert "ACCESS EMP via DIV-EMP" in out


def test_analyze_blocked_by_verb_variability(artifacts, tmp_path, capsys):
    program = tmp_path / "console.cob"
    program.write_text(VARIABLE_VERB_PROGRAM)
    assert main(["analyze", "--ddl", artifacts["ddl"],
                 "--program", str(program)]) == 1
    out = capsys.readouterr().out
    assert "verb-variability" in out


def test_convert_network(artifacts, capsys):
    assert main(["convert", "--ddl", artifacts["ddl"],
                 "--spec", artifacts["spec"],
                 "--program", artifacts["program"]]) == 0
    captured = capsys.readouterr()
    assert "FIND FIRST DEPT WITHIN DIV-DEPT" in captured.out
    assert "converted-with-warnings" in captured.err


def test_convert_relational(artifacts, capsys):
    assert main(["convert", "--ddl", artifacts["ddl"],
                 "--spec", artifacts["spec"],
                 "--program", artifacts["program"],
                 "--target-model", "relational"]) == 0
    out = capsys.readouterr().out
    assert "QUERY [" in out
    assert "FOR EACH EMP" in out


def test_convert_failure_exit_code(artifacts, tmp_path, capsys):
    spec = tmp_path / "drop.spec"
    spec.write_text("DROP FIELD EMP.AGE FORCE.\n")
    assert main(["convert", "--ddl", artifacts["ddl"],
                 "--spec", str(spec),
                 "--program", artifacts["program"]]) == 1
    assert "needs-manual-conversion" in capsys.readouterr().err


def test_convert_output_is_reparseable_and_runs(artifacts, capsys):
    main(["convert", "--ddl", artifacts["ddl"],
          "--spec", artifacts["spec"],
          "--program", artifacts["program"]])
    converted_text = capsys.readouterr().out
    from repro.programs.interpreter import run_program
    from repro.programs.parser import parse_program
    from repro.restructure import restructure_database
    from repro.workloads import company

    converted = parse_program(converted_text)
    _ts, target_db = restructure_database(
        company.company_db(seed=1979), company.figure_44_operator())
    trace = run_program(converted, target_db, consistent=False)
    assert trace is not None


def test_suggest_renames(artifacts, tmp_path, capsys):
    renamed = FIGURE_4_3_DDL.replace("AGE", "YEARS")
    target = tmp_path / "new.ddl"
    target.write_text(renamed)
    assert main(["suggest-renames", "--ddl", artifacts["ddl"],
                 "--target-ddl", str(target)]) == 0
    out = capsys.readouterr().out
    assert "EMP.AGE -> EMP.YEARS?" in out


def test_suggest_renames_none(artifacts, capsys):
    assert main(["suggest-renames", "--ddl", artifacts["ddl"],
                 "--target-ddl", artifacts["ddl"]]) == 0
    assert "no rename hypotheses" in capsys.readouterr().out


def test_missing_file(capsys):
    assert main(["validate-ddl", "/nonexistent/x.ddl"]) == 2
    assert "error:" in capsys.readouterr().err


LOADER_PROGRAM = """\
PROGRAM LOADER (network / COMPANY-NAME).
  STORE DIV (DIV-NAME='MACHINERY', DIV-LOC='DETROIT').
  STORE EMP (EMP-NAME='SMITH', DEPT-NAME='SALES', AGE=51, DIV-NAME='MACHINERY').
  STORE EMP (EMP-NAME='ADAMS', DEPT-NAME='ENG', AGE=47, DIV-NAME='MACHINERY').
  STORE EMP (EMP-NAME='YOUNG', DEPT-NAME='SALES', AGE=30, DIV-NAME='MACHINERY').
"""


@pytest.fixture
def run_artifacts(artifacts):
    data = artifacts["dir"] / "load.cob"
    data.write_text(LOADER_PROGRAM)
    artifacts["data"] = str(data)
    return artifacts


def test_run_on_source(run_artifacts, capsys):
    assert main(["run", "--ddl", run_artifacts["ddl"],
                 "--data", run_artifacts["data"],
                 "--program", run_artifacts["program"]]) == 0
    out = capsys.readouterr().out
    assert "terminal -> SMITH" in out
    assert "terminal -> ADAMS" in out
    assert "YOUNG" not in out  # age 30 filtered


def test_run_converted_on_target(run_artifacts, capsys):
    assert main(["run", "--ddl", run_artifacts["ddl"],
                 "--data", run_artifacts["data"],
                 "--program", run_artifacts["program"],
                 "--spec", run_artifacts["spec"]]) == 0
    captured = capsys.readouterr()
    assert "terminal -> SMITH" in captured.out
    assert "converted-with-warnings" in captured.err


def test_run_converted_relational_target(run_artifacts, capsys):
    assert main(["run", "--ddl", run_artifacts["ddl"],
                 "--data", run_artifacts["data"],
                 "--program", run_artifacts["program"],
                 "--spec", run_artifacts["spec"],
                 "--target-model", "relational"]) == 0
    out = capsys.readouterr().out
    assert "terminal -> SMITH" in out


def test_check_equivalence(run_artifacts, capsys):
    assert main(["check", "--ddl", run_artifacts["ddl"],
                 "--spec", run_artifacts["spec"],
                 "--data", run_artifacts["data"],
                 "--program", run_artifacts["program"]]) == 0
    out = capsys.readouterr().out
    assert "equivalent" in out


def test_check_reports_divergence(run_artifacts, tmp_path, capsys):
    """An order-dependent program without a filter diverges (grouped
    order) and check exits nonzero with both traces printed."""
    ordered = tmp_path / "ordered.cob"
    ordered.write_text("""\
PROGRAM ORDERED (network / COMPANY-NAME).
  FIND ANY DIV USING DIV-NAME='MACHINERY'.
  FIND FIRST EMP WITHIN DIV-EMP.
  PERFORM WHILE (DB-STATUS = '0000')
    GET EMP.
    DISPLAY EMP.EMP-NAME.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-PERFORM
""")
    # Data where grouped order visibly differs from global name order:
    # source gives ADAMS, BAKER, CLARK; grouped gives BAKER first.
    data = tmp_path / "ordered-load.cob"
    data.write_text("""\
PROGRAM LOADER (network / COMPANY-NAME).
  STORE DIV (DIV-NAME='MACHINERY', DIV-LOC='DETROIT').
  STORE EMP (EMP-NAME='ADAMS', DEPT-NAME='SALES', AGE=41, DIV-NAME='MACHINERY').
  STORE EMP (EMP-NAME='BAKER', DEPT-NAME='ENG', AGE=42, DIV-NAME='MACHINERY').
  STORE EMP (EMP-NAME='CLARK', DEPT-NAME='SALES', AGE=43, DIV-NAME='MACHINERY').
""")
    code = main(["check", "--ddl", run_artifacts["ddl"],
                 "--spec", run_artifacts["spec"],
                 "--data", str(data),
                 "--program", str(ordered)])
    captured = capsys.readouterr()
    assert code == 1
    assert "NOT equivalent" in captured.out
    assert "source trace:" in captured.err


HIRE_PROGRAM = """\
PROGRAM HIRE (network / COMPANY-NAME).
  FIND ANY DIV USING DIV-NAME='MACHINERY'.
  STORE EMP (EMP-NAME='ZZ-HIRE', DEPT-NAME='SALES', AGE=25, DIV-NAME='MACHINERY').
  DISPLAY 'HIRED'.
"""


@pytest.fixture
def batch_artifacts(run_artifacts):
    hire = run_artifacts["dir"] / "hire.cob"
    hire.write_text(HIRE_PROGRAM)
    run_artifacts["hire"] = str(hire)
    return run_artifacts


def test_convert_batch_checkpoint_and_out_dir(batch_artifacts, capsys):
    """A repeated --program batch journals every report and writes the
    converted programs to --out-dir."""
    import json

    checkpoint = batch_artifacts["dir"] / "batch.json"
    out_dir = batch_artifacts["dir"] / "out"
    assert main(["convert", "--ddl", batch_artifacts["ddl"],
                 "--spec", batch_artifacts["spec"],
                 "--program", batch_artifacts["program"],
                 "--program", batch_artifacts["hire"],
                 "--data", batch_artifacts["data"],
                 "--checkpoint", str(checkpoint),
                 "--out-dir", str(out_dir)]) == 0
    err = capsys.readouterr().err
    assert "program(s) processed" in err
    journal = json.loads(checkpoint.read_text())
    assert [e["program"] for e in journal["completed"]] == \
        ["REPORT", "HIRE"]
    assert (out_dir / "REPORT.cob").exists()
    assert (out_dir / "HIRE.cob").exists()
    assert "STORE" in (out_dir / "HIRE.cob").read_text()


def test_convert_batch_resume_completes_remainder(batch_artifacts, capsys):
    """Truncating the journal (a simulated kill) and re-running with
    --resume converts only the unfinished program and exits 0."""
    import json

    checkpoint = batch_artifacts["dir"] / "batch.json"
    args = ["convert", "--ddl", batch_artifacts["ddl"],
            "--spec", batch_artifacts["spec"],
            "--program", batch_artifacts["program"],
            "--program", batch_artifacts["hire"],
            "--data", batch_artifacts["data"],
            "--checkpoint", str(checkpoint)]
    assert main(args) == 0
    capsys.readouterr()

    journal = json.loads(checkpoint.read_text())
    journal["completed"] = journal["completed"][:1]
    checkpoint.write_text(json.dumps(journal))

    assert main(args + ["--resume"]) == 0
    err = capsys.readouterr().err
    assert "HIRE" in err
    journal = json.loads(checkpoint.read_text())
    assert [e["program"] for e in journal["completed"]] == \
        ["REPORT", "HIRE"]


def test_convert_batch_nonzero_when_any_program_fails(batch_artifacts,
                                                      tmp_path, capsys):
    """One unconvertible program fails its batch slot (exit 1) while
    the other still converts."""
    console = tmp_path / "console.cob"
    console.write_text(VARIABLE_VERB_PROGRAM)
    assert main(["convert", "--ddl", batch_artifacts["ddl"],
                 "--spec", batch_artifacts["spec"],
                 "--program", batch_artifacts["hire"],
                 "--program", str(console),
                 "--data", batch_artifacts["data"]]) == 1
    err = capsys.readouterr().err
    assert "HIRE" in err
    assert "needs-manual-conversion" in err


def test_validate_ddl_truncated_text_names_line(tmp_path, capsys):
    """An unexpected EOF is a diagnosed syntax error with a line
    number, not a traceback."""
    bad = tmp_path / "truncated.ddl"
    bad.write_text("SCHEMA NAME IS X")
    assert main(["validate-ddl", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "line 1: unexpected end of DDL text" in err
    assert "Traceback" not in err
