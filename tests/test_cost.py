"""The COBRA cost model (repro.cost), the cost-gated optimizer passes,
and the cost-ordered cascade.

The load-bearing invariant throughout: cost ordering is *sound pruning
only*.  The cascade may skip a rewrite attempt exactly when the static
profile proves the analyzer would refuse the program, and the skipped
path must synthesize byte-identical reports, checkpoints, and analyst
transcripts -- at every jobs count and pathology rate.
"""

import json

import pytest

from repro.analysis.variability import (
    VERB_VARIABILITY_DETAIL,
    detect_verb_variability,
)
from repro.batch import run_batch
from repro.core.abstract import ACond, ALocate, AbstractProgram, walk
from repro.core.optimizer import CostModel, Optimizer
from repro.core.supervisor import ScriptedAnalyst
from repro.cost import CostCalibrator, CostPredictor, estimate_profile
from repro.options import ConversionOptions
from repro.parallel import run_parallel_batch
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import ProgramInputs
from repro.restructure import restructure_database
from repro.strategies import FallbackCascade
from repro.workloads import company
from repro.workloads.inventory import (
    InventorySpec,
    generate_inventory,
    inventory_cascade,
)

MODEL = CostModel({"DIV": 2, "EMP": 40})


def lookup_program():
    return b.program("LOOKUP", "network", "COMPANY-NAME", [
        b.find_any("EMP", **{"EMP-NAME": "TAYLOR-0000"}),
    ])


def scan_program():
    return b.program("SCAN", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.find_first("EMP", "DIV-EMP"),
        b.while_(ast.status_ok(), [
            b.get("EMP"),
            b.find_next("EMP", "DIV-EMP"),
        ]),
    ])


def verb_program(name="VERB-VAR"):
    return b.program(name, "network", "COMPANY-NAME", [
        b.accept("REQUEST", prompt="VERB?"),
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.generic_call(b.v("REQUEST"), "EMP", **{
            "EMP-NAME": "VAR-0000",
            "AGE": 30,
            "DEPT-NAME": "SALES",
            "DIV-NAME": "MACHINERY",
        }),
        b.display("DONE"),
    ])


class TestAccessProfile:
    def test_calc_lookup_is_an_index_probe(self, company_schema):
        profile = estimate_profile(lookup_program(), MODEL, company_schema)
        assert profile.index_probes == 1
        assert profile.records_read == 1
        assert profile.full_scans == 0
        assert profile.rewrite_feasible

    def test_uncovered_find_is_a_half_scan(self, company_schema):
        program = b.program("T", "network", "C", [
            b.find_any("EMP", **{"DEPT-NAME": "SALES"}),
        ])
        profile = estimate_profile(program, MODEL, company_schema)
        assert profile.index_probes == 0
        assert profile.full_scans == 1
        assert profile.records_read == pytest.approx(40 / 2)

    def test_scan_trip_follows_set_cardinalities(self, company_schema):
        profile = estimate_profile(scan_program(), MODEL, company_schema)
        # DIV probe (1) + FIND FIRST (1) + trip 20 x (GET + FIND NEXT).
        assert profile.records_read == pytest.approx(1 + 1 + 20 + 20)
        assert profile.index_probes == 1

    def test_if_branches_are_expectations(self, company_schema):
        program = b.program("T", "network", "C", [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            b.if_(ast.status_ok(), [b.get("DIV")]),
        ])
        profile = estimate_profile(program, MODEL, company_schema)
        assert profile.records_read == pytest.approx(1 + 0.5)

    def test_blocking_details_match_the_detector(self, company_schema):
        program = verb_program()
        profile = estimate_profile(program, MODEL, company_schema)
        assert profile.blocking_details == (VERB_VARIABILITY_DETAIL,)
        assert not profile.rewrite_feasible
        findings = detect_verb_variability(program)
        assert [f.detail for f in findings if f.blocking] == \
            list(profile.blocking_details)

    def test_constant_verb_is_not_blocking(self, company_schema):
        program = b.program("T", "network", "C", [
            b.generic_call(ast.Const("STORE"), "EMP",
                           **{"EMP-NAME": "X"}),
        ])
        profile = estimate_profile(program, MODEL, company_schema)
        assert profile.rewrite_feasible


class TestPredictor:
    def test_per_strategy_costs(self, company_schema):
        predictor = CostPredictor(MODEL, company_schema)
        prediction = predictor.predict(lookup_program())
        native = 2  # one probe + one record read
        assert prediction.costs["rewrite"] == pytest.approx(native)
        assert prediction.costs["emulation"] == pytest.approx(
            native + CostPredictor.EMULATION_CALL_FACTOR * 1)
        assert prediction.costs["bridge"] == pytest.approx(native + 40)
        assert prediction.cheapest_feasible() == "rewrite"

    def test_blocking_program_marks_rewrite_infeasible(self,
                                                       company_schema):
        predictor = CostPredictor(MODEL, company_schema)
        prediction = predictor.predict(verb_program())
        assert prediction.costs["rewrite"] is None
        assert prediction.blocking
        assert prediction.cheapest_feasible() in ("emulation", "bridge")


class TestCalibrator:
    def test_factor_and_accuracy(self):
        calibrator = CostCalibrator()
        calibrator.observe("rewrite", predicted=10.0, measured=20.0)
        assert calibrator.factor("rewrite") == pytest.approx(2.0)
        assert calibrator.calibrate("rewrite", 10.0) == pytest.approx(20.0)
        accuracy = calibrator.accuracy()["rewrite"]
        assert accuracy["samples"] == 1
        assert accuracy["mean_abs_pct_error"] == pytest.approx(0.5)

    def test_unknown_strategy_is_identity(self):
        assert CostCalibrator().factor("emulation") == 1.0

    def test_delta_then_absorb_reconstructs_the_whole(self):
        calibrator = CostCalibrator()
        calibrator.observe("rewrite", 10.0, 12.0)
        before = calibrator.snapshot()
        calibrator.observe("rewrite", 5.0, 4.0)
        calibrator.observe("emulation", 7.0, 21.0)
        delta = calibrator.delta(before)
        assert set(delta) == {"rewrite", "emulation"}
        merged = CostCalibrator()
        merged.absorb(before)
        merged.absorb(delta)
        assert merged.snapshot() == calibrator.snapshot()

    def test_delta_skips_unmoved_channels(self):
        calibrator = CostCalibrator()
        calibrator.observe("rewrite", 10.0, 12.0)
        assert calibrator.delta(calibrator.snapshot()) == {}


class TestOptimizerCalcLocate:
    def make(self, statements):
        return AbstractProgram("T", "network", "COMPANY-NAME",
                               tuple(statements))

    def locate_pair(self):
        locate = ALocate("EMP", (
            ACond("EMP-NAME", "=", ast.Const("TAYLOR-0000")),
            ACond("AGE", ">", ast.Const(30)),
        ))
        guard = ast.If(ast.status_ok(),
                       (ast.WriteTerminal((ast.Const("HIT"),)),),
                       (ast.WriteTerminal((ast.Const("MISS"),)),))
        return locate, guard

    def optimize(self, company_schema, statements):
        optimizer = Optimizer(company_schema, cost_model=MODEL,
                              passes=("calc-locate",))
        return optimizer.optimize(self.make(statements)).statements

    def test_residual_moves_into_the_guard(self, company_schema):
        locate, guard = self.locate_pair()
        out = self.optimize(company_schema, [locate, guard])
        new_locate, new_guard = out
        assert all(c.op == "=" for c in new_locate.conditions)
        assert new_guard.condition == ast.status_ok()
        (inner,) = new_guard.then
        assert isinstance(inner, ast.If)
        assert inner.condition == ast.Bin(
            ">", ast.Var("EMP.AGE"), ast.Const(30))
        assert inner.then == guard.then
        # The filter-miss arm restores the not-found status first.
        assert inner.orelse[0] == ast.Assign("DB-STATUS",
                                             ast.Const("0326"))
        assert inner.orelse[1:] == guard.orelse

    def test_fires_inside_nested_while_and_if(self, company_schema):
        locate, guard = self.locate_pair()
        nested = ast.While(ast.Bin("<", ast.Var("I"), ast.Const(3)), (
            ast.If(ast.Bin("=", ast.Var("GO"), ast.Const(1)),
                   (locate, guard), ()),
            ast.Assign("I", ast.Bin("+", ast.Var("I"), ast.Const(1))),
        ))
        (out,) = self.optimize(company_schema, [nested])
        rewritten = out.body[0].then[0]
        assert isinstance(rewritten, ALocate)
        assert all(c.op == "=" for c in rewritten.conditions)

    def test_uncovered_calc_key_is_left_alone(self, company_schema):
        locate = ALocate("EMP", (ACond("AGE", ">", ast.Const(30)),))
        guard = ast.If(ast.status_ok(), (), ())
        out = self.optimize(company_schema, [locate, guard])
        assert out == (locate, guard)

    def test_tiny_occurrence_keeps_the_scan(self, company_schema):
        locate, guard = self.locate_pair()
        optimizer = Optimizer(company_schema,
                              cost_model=CostModel({"EMP": 2}),
                              passes=("calc-locate",))
        out = optimizer.optimize(self.make([locate, guard])).statements
        assert out == (locate, guard)


class TestOptimizerHoistLocate:
    def loop(self, body_tail=()):
        locate = ALocate("DIV", (
            ACond("DIV-NAME", "=", ast.Const("MACHINERY")),
        ))
        body = (locate,
                ast.Assign("I", ast.Bin("+", ast.Var("I"), ast.Const(1))),
                *body_tail)
        return locate, ast.While(
            ast.Bin("<", ast.Var("I"), ast.Const(3)), body)

    def optimize(self, company_schema, statements):
        optimizer = Optimizer(company_schema, cost_model=MODEL,
                              passes=("hoist-locate",))
        program = AbstractProgram("T", "network", "COMPANY-NAME",
                                  tuple(statements))
        return optimizer.optimize(program).statements

    def test_invariant_locate_moves_before_the_loop(self, company_schema):
        locate, loop = self.loop()
        out = self.optimize(company_schema, [loop])
        assert out[0] == locate
        assert isinstance(out[1], ast.While)
        assert not any(isinstance(s, ALocate) for s in walk(out[1].body))

    def test_fires_inside_a_nested_if(self, company_schema):
        locate, loop = self.loop()
        wrapped = ast.If(ast.Bin("=", ast.Var("GO"), ast.Const(1)),
                         (loop,), ())
        (out,) = self.optimize(company_schema, [wrapped])
        assert out.then[0] == locate
        assert isinstance(out.then[1], ast.While)

    def test_database_work_in_body_blocks_the_hoist(self, company_schema):
        other = ALocate("EMP", (
            ACond("EMP-NAME", "=", ast.Const("X")),
        ))
        _locate, loop = self.loop(body_tail=(other,))
        out = self.optimize(company_schema, [loop])
        assert out == (loop,)

    def test_status_dependent_loop_blocks_the_hoist(self, company_schema):
        locate = ALocate("DIV", (
            ACond("DIV-NAME", "=", ast.Const("MACHINERY")),
        ))
        loop = ast.While(ast.status_ok(), (
            locate,
            ast.Assign("I", ast.Bin("+", ast.Var("I"), ast.Const(1))),
        ))
        out = self.optimize(company_schema, [loop])
        assert out == (loop,)


@pytest.fixture
def cascade_pair(interpose_operator):
    def build(strategy_order, analyst=None):
        source_db = company.company_db(seed=42)
        _schema, target_db = restructure_database(source_db,
                                                  interpose_operator)
        return FallbackCascade(source_db, target_db, interpose_operator,
                               analyst=analyst,
                               strategy_order=strategy_order)
    return build


VERB_OPTIONS = ConversionOptions(inputs=ProgramInputs(terminal=["STORE"]))


class TestCostOrderedCascade:
    def test_blocking_program_skips_rewrite_byte_identically(
            self, cascade_pair):
        fixed = cascade_pair("fixed").convert(
            verb_program(), options=VERB_OPTIONS.replace(
                strategy_order="fixed"))
        cost_cascade = cascade_pair("cost")
        cost = cost_cascade.convert(verb_program(), options=VERB_OPTIONS)
        assert cost.report.to_summary() == fixed.report.to_summary()
        assert cost.report.strategy == "emulation"
        assert cost_cascade.cost_counters.get("rewrite_skips") == 1
        assert cost.report.cost["predicted"]["rewrite"] is None
        assert cost.report.cost["chosen_order"] == ["emulation", "bridge"]
        assert fixed.report.cost["chosen_order"] == [
            "rewrite", "emulation", "bridge"]

    def test_analyst_transcripts_are_identical(self, cascade_pair):
        transcripts = {}
        for order in ("fixed", "cost"):
            analyst = ScriptedAnalyst({})
            cascade_pair(order, analyst=analyst).convert(
                verb_program(), options=VERB_OPTIONS.replace(
                    strategy_order=order))
            transcripts[order] = [
                (question.render(), answer)
                for question, answer in analyst.transcript
            ]
        assert transcripts["cost"] == transcripts["fixed"]
        assert transcripts["cost"], "the pin-verb question must be posed"

    def test_clean_program_pays_the_attempt_and_carries_cost(
            self, cascade_pair):
        cascade = cascade_pair("cost")
        outcome = cascade.convert(lookup_program(),
                                  options=VERB_OPTIONS)
        assert outcome.report.strategy == "rewrite"
        assert outcome.report.cost["chosen_order"] == [
            "rewrite", "emulation", "bridge"]
        assert outcome.report.cost["predicted"]["rewrite"] is not None
        assert outcome.report.cost["measured"] == outcome.run.cost()
        assert cascade.cost_counters.get("rewrite_skips") == 0
        assert cascade.calibrator.samples == 1

    def test_options_strategy_order_overrides_the_constructor(
            self, cascade_pair):
        cascade = cascade_pair("cost")
        outcome = cascade.convert(
            verb_program(),
            options=VERB_OPTIONS.replace(strategy_order="fixed"))
        assert cascade.cost_counters.get("rewrite_skips") == 0
        assert outcome.report.cost["chosen_order"] == [
            "rewrite", "emulation", "bridge"]

    def test_summary_round_trip_excludes_cost(self, cascade_pair):
        outcome = cascade_pair("cost").convert(lookup_program(),
                                               options=VERB_OPTIONS)
        assert "cost" not in outcome.report.to_summary()

    def test_invalid_strategy_order_rejected(self, cascade_pair):
        with pytest.raises(ValueError):
            cascade_pair("greedy")


BATCH_OPTIONS = ConversionOptions(inputs=ProgramInputs(terminal=["STORE"]),
                                  parallel_threshold=2)


class TestByteIdentityMatrix:
    """Cost-ordered output must be indistinguishable from fixed-order
    output (reports and checkpoints) at jobs in {1, 4} and pathology
    rates {0, 0.75}."""

    @pytest.mark.parametrize("rate", [0.0, 0.75])
    def test_cost_vs_fixed_vs_parallel(self, rate, tmp_path):
        spec = InventorySpec(programs=24, pathology_rate=rate,
                             sweep_statements=300)
        programs = [item.program for item in generate_inventory(spec)]

        fixed_path = tmp_path / "fixed.json"
        fixed = run_batch(
            inventory_cascade(spec, strategy_order="fixed"), programs,
            BATCH_OPTIONS.replace(strategy_order="fixed",
                                  checkpoint=fixed_path))

        cost_path = tmp_path / "cost.json"
        serial_cascade = inventory_cascade(spec)
        serial = run_batch(serial_cascade, programs,
                           BATCH_OPTIONS.replace(checkpoint=cost_path))

        parallel_path = tmp_path / "parallel.json"
        parallel_cascade = inventory_cascade(spec)
        parallel = run_parallel_batch(
            parallel_cascade, programs,
            BATCH_OPTIONS.replace(jobs=4, checkpoint=parallel_path))

        def summaries(batch):
            return [report.to_summary() for report in batch.reports]

        assert summaries(serial) == summaries(fixed)
        assert summaries(parallel) == summaries(serial)
        assert cost_path.read_bytes() == fixed_path.read_bytes()
        assert parallel_path.read_bytes() == cost_path.read_bytes()

        # Every cascade report carries the prediction, and the parallel
        # merge reattaches the same cost dicts the serial run produced.
        serial_costs = [report.cost for report in serial.reports]
        assert all(entry and entry.get("predicted")
                   for entry in serial_costs)
        assert [report.cost for report in parallel.reports] == \
            serial_costs
        assert json.dumps(serial_costs)  # JSON-serializable end to end

        # The coordinator absorbed the workers' calibration deltas: a
        # parallel batch learns exactly what the serial one does.  The
        # error accumulator is a float sum, so worker-order addition
        # may differ from serial by an ulp -- hence approx, while the
        # integer and total fields must match exactly.
        serial_snapshot = serial_cascade.calibrator.snapshot()
        parallel_snapshot = parallel_cascade.calibrator.snapshot()
        assert set(parallel_snapshot) == set(serial_snapshot)
        for strategy, channel in serial_snapshot.items():
            assert parallel_snapshot[strategy] == pytest.approx(channel)

    def test_skips_happen_only_on_pathological_corpora(self, tmp_path):
        spec = InventorySpec(programs=24, pathology_rate=0.75,
                             sweep_statements=300)
        programs = [item.program for item in generate_inventory(spec)]
        cascade = inventory_cascade(spec)
        run_batch(cascade, programs, BATCH_OPTIONS)
        assert cascade.cost_counters.get("rewrite_skips") > 0
        assert cascade.cost_counters.get("predictions") == len(programs)
