"""Unit tests for the record store."""

import pytest

from repro.engine import Metrics, RecordStore
from repro.errors import RecordNotFound


@pytest.fixture
def store():
    return RecordStore("EMP", Metrics())


def test_insert_assigns_increasing_rids(store):
    first = store.insert({"NAME": "A"})
    second = store.insert({"NAME": "B"})
    assert first.rid == 1
    assert second.rid == 2
    assert len(store) == 2


def test_fetch_returns_current_version(store):
    record = store.insert({"NAME": "A", "AGE": 1})
    store.update(record.rid, {"AGE": 2})
    assert store.fetch(record.rid)["AGE"] == 2


def test_stale_record_objects_keep_old_values(store):
    record = store.insert({"AGE": 1})
    store.update(record.rid, {"AGE": 2})
    assert record["AGE"] == 1  # run-unit copy semantics


def test_fetch_missing_raises(store):
    with pytest.raises(RecordNotFound):
        store.fetch(99)


def test_delete_removes_and_rids_never_reused(store):
    record = store.insert({"NAME": "A"})
    store.delete(record.rid)
    replacement = store.insert({"NAME": "B"})
    assert replacement.rid == 2
    with pytest.raises(RecordNotFound):
        store.fetch(record.rid)


def test_delete_missing_raises(store):
    with pytest.raises(RecordNotFound):
        store.delete(1)


def test_scan_is_insertion_ordered(store):
    names = ["C", "A", "B"]
    for name in names:
        store.insert({"NAME": name})
    assert [r["NAME"] for r in store.scan()] == names


def test_scan_counts_reads(store):
    store.insert({"NAME": "A"})
    store.insert({"NAME": "B"})
    before = store.metrics.records_read
    list(store.scan())
    assert store.metrics.records_read == before + 2


def test_peek_is_uncounted(store):
    record = store.insert({"NAME": "A"})
    before = store.metrics.records_read
    assert store.peek(record.rid) is not None
    assert store.peek(999) is None
    assert store.metrics.records_read == before


def test_update_missing_raises(store):
    with pytest.raises(RecordNotFound):
        store.update(5, {"NAME": "X"})


def test_with_values_copy_semantics(store):
    record = store.insert({"A": 1, "B": 2})
    changed = record.with_values(B=3)
    assert changed["A"] == 1
    assert changed["B"] == 3
    assert record["B"] == 2


def test_load_bulk(store):
    records = store.load([{"NAME": "A"}, {"NAME": "B"}])
    assert [r.rid for r in records] == [1, 2]


def test_metrics_track_writes_and_deletes(store):
    record = store.insert({"NAME": "A"})
    store.update(record.rid, {"NAME": "B"})
    store.delete(record.rid)
    assert store.metrics.records_written == 2
    assert store.metrics.records_deleted == 1
