"""Property-based tests (hypothesis) on core data structures and the
library's key invariants:

* sorted-index ordering and membership under arbitrary operations;
* PIC type validation totality;
* set-store occurrence invariants under random connect/disconnect;
* snapshot extract/load round-trips;
* Housel inverse round-trips for invertible operators;
* DDL parse/format fixpoint;
* CDML conversion equivalence over random company instances.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.engine import SortedIndex
from repro.engine.index import _orderable
from repro.errors import SchemaError
from repro.network import NetworkDatabase
from repro.restructure import (
    RenameField,
    extract_snapshot,
    load_network,
    restructure_database,
)
from repro.schema import Schema, format_ddl, parse_ddl, parse_pic
from repro.workloads import company

names = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=6)
small_ints = st.integers(min_value=0, max_value=99)


# ---------------------------------------------------------------------------
# Sorted index
# ---------------------------------------------------------------------------


@given(st.lists(st.tuples(small_ints, st.integers(1, 10**6)),
                max_size=50))
def test_sorted_index_scan_is_sorted(pairs):
    index = SortedIndex("t")
    for key, rid in pairs:
        index.insert(key, rid)
    keys = [key for key, _rid in index.scan_items()]
    assert keys == sorted(keys)
    assert len(index) == len(pairs)


@given(st.lists(st.tuples(small_ints, st.integers(1, 100)), max_size=40),
       st.data())
def test_sorted_index_remove_keeps_order(pairs, data):
    index = SortedIndex("t")
    live = []
    for key, rid in pairs:
        index.insert(key, rid)
        live.append((key, rid))
    if live:
        victim = data.draw(st.sampled_from(live))
        index.remove(*victim)
        live.remove(victim)
    assert sorted(index.scan_items(), key=lambda p: _orderable(p[0])) == \
        list(index.scan_items())
    assert len(index) == len(live)


@given(st.lists(st.one_of(small_ints, names, st.none()), max_size=30))
def test_orderable_total_order_over_mixed_types(values):
    ordered = sorted(values, key=_orderable)
    # sorting twice is stable and consistent
    assert sorted(ordered, key=_orderable) == ordered


# ---------------------------------------------------------------------------
# PIC types
# ---------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=30),
       st.one_of(st.integers(), st.text(max_size=40), st.none(),
                 st.floats(allow_nan=False), st.booleans()))
def test_pic_alpha_validation_total(width, value):
    """X(n) either returns a string of length <= n or raises SchemaError."""
    field_type = parse_pic(f"X({width})")
    try:
        result = field_type.validate(value)
    except SchemaError:
        return
    assert result is None or (isinstance(result, str)
                              and len(result) <= width)


@given(st.integers(min_value=1, max_value=8),
       st.one_of(st.integers(min_value=-10**9, max_value=10**9),
                 st.text(max_size=12), st.none()))
def test_pic_numeric_validation_total(width, value):
    field_type = parse_pic(f"9({width})")
    try:
        result = field_type.validate(value)
    except SchemaError:
        return
    assert result is None or (isinstance(result, int)
                              and 0 <= result < 10 ** width)


# ---------------------------------------------------------------------------
# Set store invariants
# ---------------------------------------------------------------------------


@st.composite
def connect_script(draw):
    """A random sequence of member values and disconnect choices."""
    values = draw(st.lists(small_ints, min_size=1, max_size=25))
    disconnects = draw(st.lists(
        st.integers(0, len(values) - 1), max_size=10))
    return values, disconnects


@given(connect_script())
@settings(max_examples=50)
def test_set_store_occurrence_invariants(script):
    values, disconnects = script
    schema = Schema("P")
    schema.define_record("O", {"K": "X(2)"}, calc_keys=["K"])
    schema.define_record("M", {"V": "9(2)"})
    schema.define_set("ALL-O", "SYSTEM", "O")
    schema.define_set("S", "O", "M", order_keys=["V"])
    db = NetworkDatabase(schema)
    owner = db.insert_record("O", {"K": "A"})
    store = db.set_store("S")
    rids = []
    for value in values:
        member = db.insert_record("M", {"V": value})
        store.connect(owner.rid, member.rid)
        rids.append(member.rid)
    for index in disconnects:
        store.disconnect(rids[index])
    members = store.members(owner.rid)
    # invariant 1: each connected member's owner is the owner
    for rid in members:
        assert store.owner(rid) == owner.rid
    # invariant 2: disconnected members have no owner
    for index in set(disconnects):
        assert store.owner(rids[index]) is None or rids[index] in members
    # invariant 3: members sorted by order key
    member_values = [db.store("M").peek(rid)["V"] for rid in members]
    assert member_values == sorted(member_values)


# ---------------------------------------------------------------------------
# Snapshot round trip
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_snapshot_round_trip_any_seed(seed):
    db = company.company_db(seed=seed, divisions=2,
                            employees_per_division=6)
    snapshot = extract_snapshot(db)
    clone = load_network(db.schema, snapshot)
    assert extract_snapshot(clone).rows == snapshot.rows
    assert extract_snapshot(clone).links == snapshot.links


# ---------------------------------------------------------------------------
# Operator inverses (Housel)
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_interpose_inverse_is_identity_on_data(seed):
    db = company.company_db(seed=seed, divisions=2,
                            employees_per_division=8)
    operator = company.figure_44_operator()
    _tschema, target_db = restructure_database(db, operator)
    back = operator.inverse(db.schema)
    _bschema, back_db = restructure_database(target_db, back)
    original = sorted(
        tuple(sorted(r.values.items()))
        for r in db.store("EMP").all_records()
    )
    returned = sorted(
        tuple(sorted(r.values.items()))
        for r in back_db.store("EMP").all_records()
    )
    assert original == returned


@given(names, st.integers(min_value=0, max_value=10**5))
@settings(max_examples=20, deadline=None)
def test_rename_field_inverse_identity(new_name, seed):
    schema = company.figure_42_schema()
    if schema.record("EMP").has_field(new_name):
        return
    operator = RenameField("EMP", "AGE", new_name)
    db = company.company_db(seed=seed, divisions=1,
                            employees_per_division=4)
    _tschema, target_db = restructure_database(db, operator)
    inverse = operator.inverse(schema)
    _bschema, back_db = restructure_database(target_db, inverse)
    assert [r.values for r in back_db.store("EMP").all_records()] == \
        [r.values for r in db.store("EMP").all_records()]


# ---------------------------------------------------------------------------
# DDL fixpoint
# ---------------------------------------------------------------------------


def test_ddl_format_parse_fixpoint_on_workloads():
    from repro.workloads import florida, school

    for schema in (company.figure_42_schema(), school.school_schema(),
                   florida.florida_schema()):
        text = format_ddl(schema)
        assert format_ddl(parse_ddl(text)) == text


# ---------------------------------------------------------------------------
# CDML conversion equivalence (the E3 property, any instance)
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=20, max_value=60))
@settings(max_examples=15, deadline=None)
def test_strict_cdml_conversion_equivalent_on_any_instance(seed, age):
    from repro.cdml import CdmlEngine, convert_statement, parse_cdml

    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    db = company.company_db(seed=seed, divisions=3,
                            employees_per_division=10)
    changes = operator.changes(schema)
    target_schema, target_db = restructure_database(db, operator)
    query = parse_cdml(
        f"FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > {age}))")
    converted = convert_statement(query, changes, schema, target_schema,
                                  strict=True).statement
    source_names = [r["EMP-NAME"] for r in CdmlEngine(db).find(query)]
    target_names = [r["EMP-NAME"]
                    for r in CdmlEngine(target_db).execute(converted)]
    assert source_names == target_names


# ---------------------------------------------------------------------------
# Interpreter determinism and strategy equivalence over seeds
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=59))
@settings(max_examples=20, deadline=None)
def test_interpreter_is_deterministic(seed, program_index):
    from repro.programs.interpreter import ProgramInputs, run_program
    from repro.workloads.corpus import CorpusSpec, generate_corpus

    corpus = generate_corpus(CorpusSpec(seed=97, size=60,
                                        pathology_rate=0.3))
    item = corpus[program_index]
    inputs = ProgramInputs(terminal=list(item.terminal_inputs))
    first = run_program(item.program, company.company_db(seed=seed),
                        inputs.copy(), consistent=False)
    second = run_program(item.program, company.company_db(seed=seed),
                         inputs.copy(), consistent=False)
    assert first == second


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_emulation_equivalent_on_any_instance(seed):
    """Property behind E5.3: for any seeded instance, the emulated run
    of the source program is trace-identical to the source run."""
    from repro.core.analyzer_db import ConversionAnalyzer
    from repro.programs import builder as b
    from repro.programs.interpreter import run_program
    from repro.strategies import EmulationStrategy

    program = b.program("REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    source_trace = run_program(
        program,
        company.company_db(seed=seed, divisions=2,
                           employees_per_division=8),
        consistent=False)
    _ts, target_db = restructure_database(
        company.company_db(seed=seed, divisions=2,
                           employees_per_division=8),
        operator)
    run = EmulationStrategy(target_db, catalog).run(program)
    assert run.trace == source_trace
