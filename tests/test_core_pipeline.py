"""Tests for converter rules, optimizer, generator, supervisor, and the
end-to-end Figure 4.1 pipeline with equivalence checking."""

import pytest

from repro.core import (
    ConversionSupervisor,
    CostModel,
    Optimizer,
    ProgramAnalyzer,
    ProgramConverter,
    RefusingAnalyst,
    ScriptedAnalyst,
    check_equivalence,
)
from repro.core.abstract import ALocate, AReconnect, AScan, walk
from repro.core.analyzer_db import ConversionAnalyzer
from repro.core.report import (
    STATUS_AUTOMATIC,
    STATUS_FAILED,
    STATUS_WARNINGS,
)
from repro.errors import UnconvertiblePattern
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import ProgramInputs
from repro.restructure import (
    AddConstraint,
    ChangeSetOrder,
    DropField,
    RenameField,
    RenameRecord,
    restructure_database,
)
from repro.schema import NotNull
from repro.workloads import company


def list_program(threshold=30):
    return b.program("LIST-OLD", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), threshold), [
                b.display(b.field("EMP", "EMP-NAME"),
                          b.field("EMP", "DEPT-NAME")),
            ]),
        ]),
        b.display("DONE"),
    ])


def hire_program(dept="SALES"):
    return b.program("HIRE", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "ZZ-NEW", "DEPT-NAME": dept,
                          "AGE": 22, "DIV-NAME": "MACHINERY"}),
        b.display("HIRED"),
    ])


def transfer_program():
    return b.program("TRANSFER", "network", "COMPANY-NAME", [
        b.find_any("EMP", **{"EMP-NAME": "TAYLOR-0000"}),
        b.if_(ast.status_ok(), [
            b.modify("EMP", **{"DEPT-NAME": "ADMIN"}),
            b.display("TRANSFERRED"),
        ], [b.display("MISSING")]),
    ])


def fresh_pair(operator, seed=42):
    source_db = company.company_db(seed=seed)
    _schema, target_db = restructure_database(source_db, operator)
    return source_db, target_db


class TestConverterRules:
    def convert(self, program, operator, schema):
        catalog = ConversionAnalyzer().analyze_operator(schema, operator)
        abstract = ProgramAnalyzer(schema).analyze(program)
        return ProgramConverter().convert(abstract, catalog), catalog

    def test_rename_record_rewrites_everything(self, company_schema):
        artifacts, _catalog = self.convert(
            list_program(), RenameRecord("EMP", "WORKER"), company_schema)
        entities = {
            getattr(s, "entity", None)
            for s in walk(artifacts.program.statements)
        }
        assert "WORKER" in entities
        assert "EMP" not in entities
        # bound variables rewritten in output expressions
        from repro.core.abstract import render_abstract

        assert "WORKER.EMP-NAME" in render_abstract(artifacts.program)

    def test_rename_field_rewrites_conditions_and_vars(self,
                                                       company_schema):
        artifacts, _ = self.convert(
            list_program(), RenameField("EMP", "AGE", "YEARS"),
            company_schema)
        from repro.core.abstract import render_abstract

        text = render_abstract(artifacts.program)
        assert "EMP.YEARS" in text
        assert "EMP.AGE" not in text

    def test_drop_referenced_field_unconvertible(self, company_schema):
        catalog = ConversionAnalyzer().analyze_operator(
            company_schema, DropField("EMP", "AGE", force=True))
        abstract = ProgramAnalyzer(company_schema).analyze(list_program())
        with pytest.raises(UnconvertiblePattern):
            ProgramConverter().convert(abstract, catalog)

    def test_drop_unreferenced_field_fine(self, company_schema):
        catalog = ConversionAnalyzer().analyze_operator(
            company_schema, DropField("DIV", "DIV-LOC", force=True))
        abstract = ProgramAnalyzer(company_schema).analyze(list_program())
        artifacts = ProgramConverter().convert(abstract, catalog)
        assert artifacts.clean

    def test_interpose_nests_scans(self, company_schema,
                                   interpose_operator):
        artifacts, _ = self.convert(list_program(), interpose_operator,
                                    company_schema)
        scans = [s for s in walk(artifacts.program.statements)
                 if isinstance(s, AScan)]
        vias = {s.via for s in scans}
        assert vias == {"DIV-DEPT", "DEPT-EMP"}
        assert artifacts.warnings  # order-sensitive scan warned

    def test_interpose_store_gains_guard(self, company_schema,
                                         interpose_operator):
        artifacts, _ = self.convert(hire_program(), interpose_operator,
                                    company_schema)
        from repro.core.abstract import AStore

        stores = [s for s in walk(artifacts.program.statements)
                  if isinstance(s, AStore)]
        assert {s.entity for s in stores} == {"DEPT", "EMP"}

    def test_interpose_modify_key_becomes_reconnect(self, company_schema,
                                                    interpose_operator):
        artifacts, _ = self.convert(transfer_program(),
                                    interpose_operator, company_schema)
        reconnects = [s for s in walk(artifacts.program.statements)
                      if isinstance(s, AReconnect)]
        assert len(reconnects) == 1
        assert reconnects[0].ensure_owner

    def test_order_change_warns_only_when_output_involved(self,
                                                          company_schema):
        operator = ChangeSetOrder("DIV-EMP", ("AGE",),
                                  allow_duplicates=True)
        artifacts, _ = self.convert(list_program(), operator,
                                    company_schema)
        assert artifacts.warnings
        artifacts2, _ = self.convert(hire_program(), operator,
                                     company_schema)
        assert not artifacts2.warnings

    def test_constraint_added_notes(self, company_schema):
        operator = AddConstraint(NotNull("NN", "EMP", "AGE"))
        artifacts, _ = self.convert(hire_program(), operator,
                                    company_schema)
        assert any("constraint" in note for note in artifacts.notes)


class TestOptimizer:
    def test_pushdown_then_keyed(self, company_schema):
        abstract = ProgramAnalyzer(company_schema).analyze(
            b.program("T", "network", "C", [
                b.find_any("DIV", **{"DIV-NAME": "X"}),
                *b.scan_set("EMP", "DIV-EMP", [
                    b.if_(b.eq(b.field("EMP", "DEPT-NAME"), "SALES"), [
                        b.display("HIT"),
                    ]),
                ]),
            ]))
        optimized = Optimizer(company_schema).optimize(abstract)
        scan = [s for s in walk(optimized.statements)
                if isinstance(s, AScan)][0]
        assert scan.conditions[0].field == "DEPT-NAME"
        assert scan.keyed

    def test_pushdown_skips_mixed_conditions(self, company_schema):
        abstract = ProgramAnalyzer(company_schema).analyze(
            b.program("T", "network", "C", [
                b.assign("LIMIT", 10),
                b.find_any("DIV", **{"DIV-NAME": "X"}),
                *b.scan_set("EMP", "DIV-EMP", [
                    b.if_(b.gt(b.v("LIMIT"), 5), [b.display("HIT")]),
                ]),
            ]))
        optimized = Optimizer(company_schema).optimize(abstract)
        scan = [s for s in walk(optimized.statements)
                if isinstance(s, AScan)][0]
        assert scan.conditions == ()

    def test_inequality_not_keyed(self, company_schema):
        abstract = ProgramAnalyzer(company_schema).analyze(
            b.program("T", "network", "C", [
                b.find_any("DIV", **{"DIV-NAME": "X"}),
                *b.scan_set("EMP", "DIV-EMP", [
                    b.if_(b.gt(b.field("EMP", "AGE"), 30), [
                        b.display("HIT"),
                    ]),
                ]),
            ]))
        optimized = Optimizer(company_schema).optimize(abstract)
        scan = [s for s in walk(optimized.statements)
                if isinstance(s, AScan)][0]
        assert scan.conditions and not scan.keyed

    def test_dedup_locates(self, company_schema):
        abstract = ProgramAnalyzer(company_schema).analyze(
            b.program("T", "network", "C", [
                b.find_any("DIV", **{"DIV-NAME": "X"}),
                b.find_any("DIV", **{"DIV-NAME": "X"}),
                b.display("OK"),
            ]))
        optimized = Optimizer(company_schema).optimize(abstract)
        locates = [s for s in walk(optimized.statements)
                   if isinstance(s, ALocate)]
        assert len(locates) == 1

    def test_passes_are_toggleable(self, company_schema):
        abstract = ProgramAnalyzer(company_schema).analyze(
            b.program("T", "network", "C", [
                b.find_any("DIV", **{"DIV-NAME": "X"}),
                b.find_any("DIV", **{"DIV-NAME": "X"}),
            ]))
        unoptimized = Optimizer(company_schema, passes=()).optimize(abstract)
        locates = [s for s in walk(unoptimized.statements)
                   if isinstance(s, ALocate)]
        assert len(locates) == 2

    def test_cost_model_from_database(self, company_db):
        model = CostModel.from_database(company_db)
        assert model.count("EMP") == company_db.count("EMP")
        assert model.count("UNKNOWN") == model.default_count


class TestSupervisor:
    def test_clean_program_automatic(self, company_schema,
                                     interpose_operator):
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator)
        report = supervisor.convert_program(hire_program())
        assert report.status == STATUS_AUTOMATIC
        assert report.target_program is not None

    def test_order_sensitive_program_warned(self, company_schema,
                                            interpose_operator):
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator)
        report = supervisor.convert_program(list_program())
        assert report.status == STATUS_WARNINGS

    def test_variable_verb_fails_with_refusing_analyst(self,
                                                       company_schema,
                                                       interpose_operator):
        analyst = RefusingAnalyst()
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator,
                                          analyst=analyst)
        program = b.program("VAR", "network", "COMPANY-NAME", [
            b.accept("V"),
            b.generic_call(b.v("V"), "EMP"),
        ])
        report = supervisor.convert_program(program)
        assert report.status == STATUS_FAILED
        assert analyst.declined

    def test_analyst_pins_verb(self, company_schema, interpose_operator):
        analyst = ScriptedAnalyst({"pin-verb": "pinned"})
        supervisor = ConversionSupervisor(
            company_schema, interpose_operator, analyst=analyst,
            verb_pins={"VAR": {0: "FIND-ANY"}})
        program = b.program("VAR", "network", "COMPANY-NAME", [
            b.accept("V"),
            b.generic_call(b.v("V"), "EMP", **{"EMP-NAME": "X"}),
            b.display("OK"),
        ])
        report = supervisor.convert_program(program)
        assert report.converted
        assert report.status == "analyst-assisted"

    def test_unconvertible_reported(self, company_schema):
        supervisor = ConversionSupervisor(
            company_schema, DropField("EMP", "DEPT-NAME", force=True))
        report = supervisor.convert_program(list_program())
        assert report.status == STATUS_FAILED
        assert "DEPT-NAME" in report.failure

    def test_batch_report(self, company_schema, interpose_operator):
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator)
        batch = supervisor.convert_system([hire_program(),
                                           list_program()])
        counts = batch.counts()
        assert counts[STATUS_AUTOMATIC] == 1
        assert counts[STATUS_WARNINGS] == 1
        assert batch.automation_rate() == 1.0
        assert batch.conversion_rate() == 1.0
        assert "2 program(s)" in batch.render()


class TestEndToEndEquivalence:
    def run_pair(self, program, operator, seed=42, inputs=None):
        schema = company.figure_42_schema()
        supervisor = ConversionSupervisor(schema, operator)
        report = supervisor.convert_program(program)
        assert report.target_program is not None, report.failure
        source_db, target_db = fresh_pair(operator, seed)
        return check_equivalence(
            program, source_db, report.target_program, target_db,
            inputs=inputs, warnings=tuple(report.warnings),
        ), report

    def test_hire_is_strictly_equivalent(self, interpose_operator):
        result, _report = self.run_pair(hire_program(),
                                        interpose_operator)
        assert result.equivalent
        assert result.level == "strict"

    def test_transfer_is_strictly_equivalent(self, interpose_operator):
        result, _report = self.run_pair(transfer_program(),
                                        interpose_operator)
        assert result.equivalent

    def test_transfer_actually_moves_departments(self,
                                                 interpose_operator):
        schema = company.figure_42_schema()
        supervisor = ConversionSupervisor(schema, interpose_operator)
        report = supervisor.convert_program(transfer_program())
        _src, target_db = fresh_pair(interpose_operator)
        from repro.programs.interpreter import run_program

        run_program(report.target_program, target_db)
        moved = [
            r for r in target_db.store("EMP").all_records()
            if r["EMP-NAME"] == "TAYLOR-0000"
        ]
        if moved:  # employee exists in this seed
            assert target_db.read_field(moved[0], "DEPT-NAME") == "ADMIN"
        target_db.verify_consistent()

    def test_report_divergence_under_grouping(self, interpose_operator):
        result, report = self.run_pair(list_program(),
                                       interpose_operator)
        # order-sensitive program: grouped order differs, and the
        # supervisor warned about exactly that
        if not result.equivalent:
            assert report.warnings
            source_lines = sorted(result.source_trace.terminal_lines())
            target_lines = sorted(result.target_trace.terminal_lines())
            assert source_lines == target_lines

    def test_rename_everything_strict(self):
        from repro.restructure import Composite

        operator = Composite((
            RenameRecord("EMP", "WORKER"),
            RenameField("WORKER", "AGE", "YEARS"),
        ))
        result, _report = self.run_pair(list_program(), operator)
        assert result.equivalent
        assert result.level == "strict"

    def test_generic_call_program_runs_after_pinning(self,
                                                     interpose_operator):
        schema = company.figure_42_schema()
        program = b.program("VAR", "network", "COMPANY-NAME", [
            b.accept("V", prompt="VERB?"),
            b.generic_call(b.v("V"), "EMP", **{"EMP-NAME": "TAYLOR-0000"}),
            b.display(b.v("DB-STATUS")),
        ])
        supervisor = ConversionSupervisor(
            schema, interpose_operator,
            verb_pins={"VAR": {0: "FIND-ANY"}})
        report = supervisor.convert_program(program)
        assert report.converted
        inputs = ProgramInputs(terminal=["FIND-ANY"])
        source_db, target_db = fresh_pair(interpose_operator)
        result = check_equivalence(program, source_db,
                                   report.target_program, target_db,
                                   inputs=inputs)
        assert result.equivalent
