"""Tests for the Michigan code-template approach (Section 4.3)."""

import pytest

from repro.core import ProgramGenerator
from repro.core.code_templates import (
    Join,
    Project,
    RelationRef,
    Select,
    TemplateProgram,
    convert_algebra,
    expand,
)
from repro.core.abstract import ACond, AScan
from repro.errors import ConversionError
from repro.programs import ast
from repro.programs.interpreter import run_program
from repro.restructure import restructure_database
from repro.workloads import company


def sales_report() -> TemplateProgram:
    """Employees of every division's SALES department, over 40."""
    return TemplateProgram(
        "SALES-REPORT", "COMPANY-NAME",
        Project(
            Select(
                Join(RelationRef("DIV"), "DIV-EMP", "EMP"),
                (ACond("DEPT-NAME", "=", ast.Const("SALES")),
                 ACond("AGE", ">", ast.Const(40))),
            ),
            ("DIV.DIV-NAME", "EMP.EMP-NAME"),
        ),
    )


class TestExpansion:
    def test_levels_become_nested_scans(self, company_schema):
        abstract = expand(sales_report(), company_schema)
        outer = abstract.statements[0]
        assert isinstance(outer, AScan)
        assert outer.entity == "DIV"
        assert outer.via == "ALL-DIV"
        inner = outer.body[0]
        assert isinstance(inner, AScan)
        assert inner.entity == "EMP"
        assert inner.via == "DIV-EMP"
        assert {c.field for c in inner.conditions} == \
            {"DEPT-NAME", "AGE"}

    def test_select_on_outer_level(self, company_schema):
        program = TemplateProgram(
            "T", "COMPANY-NAME",
            Join(
                Select(RelationRef("DIV"),
                       (ACond("DIV-NAME", "=",
                              ast.Const("MACHINERY")),)),
                "DIV-EMP", "EMP",
            ),
        )
        abstract = expand(program, company_schema)
        outer = abstract.statements[0]
        assert outer.conditions[0].field == "DIV-NAME"
        assert outer.body[0].conditions == ()

    def test_expanded_program_runs(self, company_schema, company_db):
        abstract = expand(sales_report(), company_schema)
        program = ProgramGenerator(company_schema).generate(abstract,
                                                            "network")
        trace = run_program(program, company_db, consistent=False)
        expected = sorted(
            f"{company_db.read_field(r, 'DIV-NAME')} {r['EMP-NAME']}"
            for r in company_db.store("EMP").all_records()
            if r["DEPT-NAME"] == "SALES" and r["AGE"] > 40
        )
        assert sorted(trace.terminal_lines()) == expected

    def test_project_must_be_outermost(self, company_schema):
        bad = TemplateProgram("T", "COMPANY-NAME", Join(
            Project(RelationRef("DIV"), ("DIV.DIV-NAME",)),
            "DIV-EMP", "EMP",
        ))
        with pytest.raises(ConversionError):
            expand(bad, company_schema)

    def test_join_must_follow_schema(self, company_schema):
        bad = TemplateProgram("T", "COMPANY-NAME",
                              Join(RelationRef("DIV"), "DIV-EMP", "DIV"))
        with pytest.raises(ConversionError):
            expand(bad, company_schema)


class TestAlgebraConversion:
    def test_interpose_extends_join_path(self, company_schema,
                                         interpose_operator):
        changes = interpose_operator.changes(company_schema)
        converted = convert_algebra(sales_report(), changes)
        text = converted.expression.render()
        assert "JOIN[DIV-DEPT]" in text
        assert "JOIN[DEPT-EMP]" in text

    def test_converted_template_equivalent_as_multiset(
            self, company_schema, interpose_operator):
        changes = interpose_operator.changes(company_schema)
        target_schema = interpose_operator.apply_schema(company_schema)
        source_db = company.company_db(seed=31)
        _ts, target_db = restructure_database(
            company.company_db(seed=31), interpose_operator)

        source_program = ProgramGenerator(company_schema).generate(
            expand(sales_report(), company_schema), "network")
        converted = convert_algebra(sales_report(), changes)
        target_program = ProgramGenerator(target_schema).generate(
            expand(converted, target_schema), "network")

        source_trace = run_program(source_program, source_db,
                                   consistent=False)
        target_trace = run_program(target_program, target_db,
                                   consistent=False)
        assert sorted(source_trace.terminal_lines()) == \
            sorted(target_trace.terminal_lines())

    def test_merge_collapses_join_path(self, company_schema,
                                       interpose_operator):
        changes = interpose_operator.changes(company_schema)
        converted = convert_algebra(sales_report(), changes)
        target_schema = interpose_operator.apply_schema(company_schema)
        merge = interpose_operator.inverse(company_schema)
        back = convert_algebra(converted, merge.changes(target_schema))
        assert back.expression.render() == \
            sales_report().expression.render()

    def test_renames_flow_through(self, company_schema):
        from repro.restructure import Composite, RenameField, RenameRecord

        operator = Composite((
            RenameRecord("EMP", "WORKER"),
            RenameField("WORKER", "AGE", "YEARS"),
        ))
        changes = operator.changes(company_schema)
        converted = convert_algebra(sales_report(), changes)
        text = converted.expression.render()
        assert "WORKER" in text
        assert "YEARS >" in text
        assert "WORKER.EMP-NAME" in text

    def test_template_written_program_converts_automatically(
            self, company_schema, interpose_operator):
        """Section 4.3's pitch: template-written programs skip program
        analysis entirely.  The expanded source program also converts
        through the ordinary Figure 4.1 pipeline -- templates and the
        pipeline agree."""
        from repro.core import ConversionSupervisor

        source_program = ProgramGenerator(company_schema).generate(
            expand(sales_report(), company_schema), "network")
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator)
        report = supervisor.convert_program(source_program)
        assert report.converted

        # the pipeline-converted and algebra-converted programs agree
        changes = interpose_operator.changes(company_schema)
        target_schema = interpose_operator.apply_schema(company_schema)
        algebra_program = ProgramGenerator(target_schema).generate(
            expand(convert_algebra(sales_report(), changes),
                   target_schema), "network")
        _ts, target_db = restructure_database(
            company.company_db(seed=31), interpose_operator)
        _ts, target_db_2 = restructure_database(
            company.company_db(seed=31), interpose_operator)
        pipeline_trace = run_program(report.target_program, target_db,
                                     consistent=False)
        algebra_trace = run_program(algebra_program, target_db_2,
                                    consistent=False)
        assert pipeline_trace == algebra_trace
