"""Unit tests for the Maryland CDML: parser, evaluator, transformation.

E3's headline assertions live here: the paper's two FIND statements
convert into exactly the forms printed in Section 4.2.
"""

import pytest

from repro.cdml import (
    CdmlEngine,
    DeleteStmt,
    FindStmt,
    ModifyStmt,
    SortStmt,
    StoreStmt,
    convert_statement,
    parse_cdml,
)
from repro.errors import QueryError
from repro.restructure import restructure_database
from repro.workloads.company import (
    CONVERTED_MACHINERY_SALES,
    CONVERTED_OVER_30,
    FIND_MACHINERY_SALES,
    FIND_OVER_30,
)


class TestParser:
    def test_parse_paper_query_1(self):
        stmt = parse_cdml(FIND_OVER_30)
        assert isinstance(stmt, FindStmt)
        assert stmt.target == "EMP"
        assert [item.name for item in stmt.path] == \
            ["SYSTEM", "ALL-DIV", "DIV", "DIV-EMP", "EMP"]
        assert stmt.path[-1].qual.render() == "AGE > 30"

    def test_parse_paper_query_2(self):
        stmt = parse_cdml(FIND_MACHINERY_SALES)
        assert stmt.path[2].qual.render() == "DIV-NAME = 'MACHINERY'"
        assert stmt.path[4].qual.render() == "DEPT-NAME = 'SALES'"

    def test_parse_sort(self):
        stmt = parse_cdml(CONVERTED_OVER_30)
        assert isinstance(stmt, SortStmt)
        assert stmt.keys == ("EMP-NAME",)
        assert stmt.inner.target == "EMP"

    def test_parse_store(self):
        stmt = parse_cdml("STORE(EMP: EMP-NAME = 'X', AGE = 30)")
        assert isinstance(stmt, StoreStmt)
        assert dict(stmt.values) == {"EMP-NAME": "X", "AGE": 30}

    def test_parse_delete_and_modify(self):
        stmt = parse_cdml(f"DELETE({FIND_OVER_30})")
        assert isinstance(stmt, DeleteStmt)
        stmt = parse_cdml(f"MODIFY({FIND_OVER_30}: AGE = 31)")
        assert isinstance(stmt, ModifyStmt)
        assert dict(stmt.updates) == {"AGE": 31}

    def test_boolean_quals(self):
        stmt = parse_cdml(
            "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, "
            "EMP(AGE > 30 AND DEPT-NAME = 'SALES'))")
        qual = stmt.path[-1].qual
        assert "AND" in qual.render()

    def test_or_qual(self):
        stmt = parse_cdml(
            "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, "
            "EMP(AGE > 60 OR AGE < 20))")
        assert "OR" in stmt.path[-1].qual.render()

    @pytest.mark.parametrize("bad", [
        "FIND(EMP SYSTEM)",
        "FIND(EMP: )",
        "SORT(STORE(EMP: A = 1)) ON (A)",
        "FIND(EMP: SYSTEM) trailing",
        "FROB(EMP: SYSTEM)",
    ])
    def test_errors(self, bad):
        with pytest.raises(QueryError):
            parse_cdml(bad)

    def test_render_round_trip(self):
        for text in (FIND_OVER_30, FIND_MACHINERY_SALES,
                     CONVERTED_OVER_30, CONVERTED_MACHINERY_SALES):
            stmt = parse_cdml(text)
            assert parse_cdml(stmt.render()).render() == stmt.render()


class TestEvaluator:
    def test_query_1_traversal_order(self, company_db):
        engine = CdmlEngine(company_db)
        records = engine.find(parse_cdml(FIND_OVER_30))
        assert all(r["AGE"] > 30 for r in records)
        assert records, "seeded data must include employees over 30"

    def test_query_2_filters_both_levels(self, company_db):
        engine = CdmlEngine(company_db)
        records = engine.find(parse_cdml(FIND_MACHINERY_SALES))
        for record in records:
            assert company_db.read_field(record, "DIV-NAME") == "MACHINERY"
            assert record["DEPT-NAME"] == "SALES"

    def test_sort_statement(self, company_db):
        engine = CdmlEngine(company_db)
        records = engine.execute(parse_cdml(
            f"SORT({FIND_OVER_30}) ON (AGE)"))
        ages = [r["AGE"] for r in records]
        assert ages == sorted(ages)

    def test_collections_feed_later_finds(self, company_db):
        engine = CdmlEngine(company_db)
        engine.execute(parse_cdml(FIND_OVER_30), into="$OLD")
        records = engine.find(parse_cdml("FIND(EMP: $OLD(AGE > 50))"))
        assert all(r["AGE"] > 50 for r in records)

    def test_unknown_collection(self, company_db):
        engine = CdmlEngine(company_db)
        with pytest.raises(QueryError):
            engine.find(parse_cdml("FIND(EMP: $NOPE)"))

    def test_upward_traversal(self, company_db):
        engine = CdmlEngine(company_db)
        records = engine.find(parse_cdml(
            "FIND(DIV: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30), "
            "DIV-EMP, DIV)"))
        # every division with an employee over 30, no duplicates
        names = [r["DIV-NAME"] for r in records]
        assert len(names) == len(set(names))

    def test_store_and_delete(self, company_db):
        engine = CdmlEngine(company_db)
        before = company_db.count("EMP")
        engine.execute(parse_cdml(
            "STORE(EMP: EMP-NAME = 'CDML-NEW', DEPT-NAME = 'SALES', "
            "AGE = 33, DIV-NAME = 'MACHINERY')"))
        assert company_db.count("EMP") == before + 1
        engine.execute(parse_cdml(
            "DELETE(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, "
            "EMP(EMP-NAME = 'CDML-NEW')))"))
        assert company_db.count("EMP") == before

    def test_modify(self, company_db):
        engine = CdmlEngine(company_db)
        count = engine.execute(parse_cdml(
            f"MODIFY({FIND_OVER_30}: AGE = 99)"))
        assert count > 0
        records = engine.find(parse_cdml(
            "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE = 99))"))
        assert len(records) == count

    def test_wrong_target_rejected(self, company_db):
        engine = CdmlEngine(company_db)
        with pytest.raises(QueryError):
            engine.find(parse_cdml("FIND(DIV: SYSTEM, ALL-DIV, DIV, "
                                   "DIV-EMP, EMP)"))

    def test_path_must_alternate(self, company_db):
        engine = CdmlEngine(company_db)
        with pytest.raises(QueryError):
            engine.find(parse_cdml("FIND(EMP: SYSTEM, ALL-DIV)"))


class TestTransformation:
    @pytest.fixture
    def conversion(self, company_schema, interpose_operator):
        changes = interpose_operator.changes(company_schema)
        target_schema = interpose_operator.apply_schema(company_schema)
        return company_schema, target_schema, changes

    def test_paper_conversion_query_1_verbatim(self, conversion):
        source_schema, target_schema, changes = conversion
        result = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                   source_schema, target_schema)
        assert result.statement.render() == CONVERTED_OVER_30

    def test_paper_conversion_query_2_verbatim(self, conversion):
        source_schema, target_schema, changes = conversion
        result = convert_statement(parse_cdml(FIND_MACHINERY_SALES),
                                   changes, source_schema, target_schema)
        assert result.statement.render() == CONVERTED_MACHINERY_SALES
        assert result.notes == ()  # pinned: fully mechanical, no caveats

    def test_strict_mode_extends_sort_keys(self, conversion):
        source_schema, target_schema, changes = conversion
        result = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                   source_schema, target_schema,
                                   strict=True)
        assert isinstance(result.statement, SortStmt)
        assert result.statement.keys == ("DIV-NAME", "EMP-NAME")

    def test_equivalence_of_converted_statements(self, company_db,
                                                 conversion,
                                                 interpose_operator):
        source_schema, target_schema, changes = conversion
        _schema, target_db = restructure_database(company_db,
                                                  interpose_operator)
        source_engine = CdmlEngine(company_db)
        target_engine = CdmlEngine(target_db)

        # Query 2: paper mode is already strictly equivalent.
        q2 = parse_cdml(FIND_MACHINERY_SALES)
        converted_2 = convert_statement(q2, changes, source_schema,
                                        target_schema).statement
        assert [r["EMP-NAME"] for r in source_engine.find(q2)] == \
            [r["EMP-NAME"] for r in target_engine.execute(converted_2)]

        # Query 1: strict mode restores the exact source order.
        q1 = parse_cdml(FIND_OVER_30)
        converted_1 = convert_statement(q1, changes, source_schema,
                                        target_schema,
                                        strict=True).statement
        assert [r["EMP-NAME"] for r in source_engine.find(q1)] == \
            [r["EMP-NAME"] for r in target_engine.execute(converted_1)]

    def test_paper_mode_query_1_is_only_group_equivalent(self, company_db,
                                                         conversion,
                                                         interpose_operator):
        """The reproduction's finding: the paper's own SORT ON
        (EMP-NAME) restores name order globally, not the source's
        per-division grouping."""
        source_schema, target_schema, changes = conversion
        _schema, target_db = restructure_database(company_db,
                                                  interpose_operator)
        q1 = parse_cdml(FIND_OVER_30)
        converted = convert_statement(q1, changes, source_schema,
                                      target_schema).statement
        source_names = [r["EMP-NAME"]
                        for r in CdmlEngine(company_db).find(q1)]
        target_names = [r["EMP-NAME"]
                        for r in CdmlEngine(target_db).execute(converted)]
        assert sorted(source_names) == sorted(target_names)
        assert target_names == sorted(target_names)  # global name order

    def test_store_conversion_gains_ensure_path(self, conversion):
        source_schema, target_schema, changes = conversion
        stmt = parse_cdml("STORE(EMP: EMP-NAME = 'X', DEPT-NAME = 'NEWD', "
                          "AGE = 20, DIV-NAME = 'MACHINERY')")
        result = convert_statement(stmt, changes, source_schema,
                                   target_schema)
        assert isinstance(result.statement, StoreStmt)
        assert result.statement.ensure_path
        assert any("interposed" in note for note in result.notes)

    def test_converted_store_creates_group(self, company_db, conversion,
                                           interpose_operator):
        source_schema, target_schema, changes = conversion
        _schema, target_db = restructure_database(company_db,
                                                  interpose_operator)
        stmt = parse_cdml("STORE(EMP: EMP-NAME = 'X-NEW', "
                          "DEPT-NAME = 'BRANDNEW', AGE = 20, "
                          "DIV-NAME = 'MACHINERY')")
        converted = convert_statement(stmt, changes, source_schema,
                                      target_schema).statement
        engine = CdmlEngine(target_db)
        before = target_db.count("DEPT")
        engine.execute(converted)
        assert target_db.count("DEPT") == before + 1
        target_db.verify_consistent()

    def test_rename_conversions(self, company_schema):
        from repro.restructure import RenameField, RenameRecord, RenameSet

        operator = RenameRecord("EMP", "WORKER")
        changes = operator.changes(company_schema)
        target_schema = operator.apply_schema(company_schema)
        result = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                   company_schema, target_schema)
        assert "WORKER(AGE > 30)" in result.statement.render()

        operator = RenameSet("DIV-EMP", "STAFF")
        changes = operator.changes(company_schema)
        target_schema = operator.apply_schema(company_schema)
        result = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                   company_schema, target_schema)
        assert "STAFF, EMP" in result.statement.render()

        operator = RenameField("EMP", "AGE", "YEARS")
        changes = operator.changes(company_schema)
        target_schema = operator.apply_schema(company_schema)
        result = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                   company_schema, target_schema)
        assert "YEARS > 30" in result.statement.render()

    def test_merge_conversion_round_trip(self, conversion,
                                         interpose_operator,
                                         company_schema):
        """Converting the converted statement with the inverse change
        returns to the original form (up to the SORT wrapper)."""
        source_schema, target_schema, changes = conversion
        q2 = parse_cdml(FIND_MACHINERY_SALES)
        converted = convert_statement(q2, changes, source_schema,
                                      target_schema).statement
        merge = interpose_operator.inverse(company_schema)
        back_changes = merge.changes(target_schema)
        back_schema = merge.apply_schema(target_schema)
        back = convert_statement(converted, back_changes, target_schema,
                                 back_schema).statement
        assert back.render() == q2.render()

    def test_set_order_change_wraps_sort(self, company_schema):
        from repro.restructure import ChangeSetOrder

        operator = ChangeSetOrder("DIV-EMP", ("AGE",),
                                  allow_duplicates=True)
        changes = operator.changes(company_schema)
        target_schema = operator.apply_schema(company_schema)
        result = convert_statement(parse_cdml(FIND_OVER_30), changes,
                                   company_schema, target_schema)
        assert isinstance(result.statement, SortStmt)
        assert result.statement.keys == ("EMP-NAME",)


def test_composite_reorder_then_interpose(company_db, company_schema):
    """Composite conversion preserves behaviour against the ORIGINAL
    schema: the reorder step wraps a SORT on the original keys, and the
    later interposition rewrites the inner FIND without disturbing it.
    The RecordInterposed snapshot keeps the rules consistent even
    though the interposition happened after the reorder."""
    from repro.restructure import ChangeSetOrder, Composite
    from repro.workloads import company

    operator = Composite((
        ChangeSetOrder("DIV-EMP", ("AGE",), allow_duplicates=True),
        company.figure_44_operator(),
    ))
    changes = operator.changes(company_schema)
    # the snapshot records the interposition-era ordering (AGE)
    interposed = [c for c in changes
                  if type(c).__name__ == "RecordInterposed"][0]
    assert interposed.order_keys == ("AGE",)

    target_schema = operator.apply_schema(company_schema)
    statement = parse_cdml(FIND_OVER_30)
    result = convert_statement(statement, changes, company_schema,
                               target_schema)
    # the reorder step already wrapped SORT on the ORIGINAL keys; the
    # interposition rewrites the inner path and leaves the wrapper
    assert isinstance(result.statement, SortStmt)
    assert result.statement.keys == ("EMP-NAME",)
    assert "DIV-DEPT" in result.statement.inner.render()

    _ts, target_db = restructure_database(company_db, operator)
    source_names = sorted(
        r["EMP-NAME"]
        for r in CdmlEngine(company.company_db(seed=42)).find(statement)
    )
    target_names = sorted(
        r["EMP-NAME"]
        for r in CdmlEngine(target_db).execute(result.statement)
    )
    assert source_names == target_names
