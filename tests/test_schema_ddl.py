"""Unit tests for the Figure 4.3 DDL parser and formatter."""

import pytest

from repro.errors import DDLSyntaxError
from repro.schema import (
    CardinalityLimit,
    DomainConstraint,
    ExistenceConstraint,
    Insertion,
    NotNull,
    Retention,
    UniqueKey,
    format_ddl,
    parse_ddl,
)
from repro.workloads.company import FIGURE_4_3_DDL


def test_parse_figure_43_verbatim():
    schema = parse_ddl(FIGURE_4_3_DDL)
    assert schema.name == "COMPANY-NAME"
    assert list(schema.records) == ["DIV", "EMP"]
    assert list(schema.sets) == ["ALL-DIV", "DIV-EMP"]
    emp = schema.record("EMP")
    virtual = emp.field("DIV-NAME")
    assert virtual.is_virtual
    assert virtual.virtual_via == "DIV-EMP"
    assert virtual.virtual_using == "DIV-NAME"
    assert emp.calc_keys == ("EMP-NAME",)


def test_set_keys_imply_no_duplicates():
    schema = parse_ddl(FIGURE_4_3_DDL)
    assert schema.set_type("DIV-EMP").order_keys == ("EMP-NAME",)
    assert not schema.set_type("DIV-EMP").allow_duplicates


def test_membership_clauses():
    schema = parse_ddl("""
    SCHEMA NAME IS T.
    RECORD SECTION.
      RECORD NAME IS A. FIELDS ARE. K PIC X(2). END RECORD.
      RECORD NAME IS B. FIELDS ARE. V PIC 9(3). END RECORD.
    END RECORD SECTION.
    SET SECTION.
      SET NAME IS S.
        OWNER IS A.
        MEMBER IS B.
        INSERTION IS MANUAL.
        RETENTION IS MANDATORY.
        DUPLICATES ARE NOT ALLOWED.
      END SET.
    END SET SECTION.
    END SCHEMA.
    """)
    set_type = schema.set_type("S")
    assert set_type.insertion is Insertion.MANUAL
    assert set_type.retention is Retention.MANDATORY
    assert not set_type.allow_duplicates


def test_constraint_section_all_kinds():
    schema = parse_ddl("""
    SCHEMA NAME IS T.
    RECORD SECTION.
      RECORD NAME IS A. FIELDS ARE. K PIC X(2). N PIC 9(2). END RECORD.
      RECORD NAME IS B. FIELDS ARE. V PIC 9(3). END RECORD.
    END RECORD SECTION.
    SET SECTION.
      SET NAME IS S. OWNER IS A. MEMBER IS B. END SET.
    END SET SECTION.
    CONSTRAINT SECTION.
      CONSTRAINT NAME IS C1. UNIQUE (K) IN A. END CONSTRAINT.
      CONSTRAINT NAME IS C2. NOT NULL V IN B. END CONSTRAINT.
      CONSTRAINT NAME IS C3. EXISTENCE OF MEMBER IN S. END CONSTRAINT.
      CONSTRAINT NAME IS C4. LIMIT S TO 2 PER (V). END CONSTRAINT.
      CONSTRAINT NAME IS C5. DOMAIN N IN A FROM 1 TO 99. END CONSTRAINT.
      CONSTRAINT NAME IS C6. DOMAIN K IN A AMONG ('X1', 'X2'). END CONSTRAINT.
    END CONSTRAINT SECTION.
    END SCHEMA.
    """)
    kinds = [type(c) for c in schema.constraints]
    assert kinds == [UniqueKey, NotNull, ExistenceConstraint,
                     CardinalityLimit, DomainConstraint, DomainConstraint]
    limit = schema.constraints[3]
    assert limit.limit == 2
    assert limit.per_fields == ("V",)
    domain = schema.constraints[4]
    assert (domain.low, domain.high) == (1, 99)
    assert schema.constraints[5].allowed == ("X1", "X2")


def test_round_trip_preserves_everything():
    schema = parse_ddl(FIGURE_4_3_DDL)
    again = parse_ddl(format_ddl(schema))
    assert list(again.records) == list(schema.records)
    assert list(again.sets) == list(schema.sets)
    for name in schema.records:
        assert again.record(name).fields == schema.record(name).fields
        assert again.record(name).calc_keys == schema.record(name).calc_keys
    for name in schema.sets:
        assert again.set_type(name) == schema.set_type(name)


def test_round_trip_with_constraints(school_db):
    from repro.schema.ddl import format_ddl as fmt

    schema = school_db.schema
    again = parse_ddl(fmt(schema))
    assert [c.describe() for c in again.constraints] == \
        [c.describe() for c in schema.constraints]


@pytest.mark.parametrize("bad,message", [
    ("SCHEMA NAME T.", "expected IS"),
    ("SCHEMA NAME IS T. END SCHEMA. EXTRA.", "after END SCHEMA"),
    ("SCHEMA NAME IS T. BOGUS SECTION. END SCHEMA.", "expected a section"),
])
def test_syntax_errors(bad, message):
    with pytest.raises(DDLSyntaxError) as excinfo:
        parse_ddl(bad)
    assert message.split()[0].lower() in str(excinfo.value).lower()


def test_unknown_constraint_kind_rejected():
    with pytest.raises(DDLSyntaxError):
        parse_ddl("""
        SCHEMA NAME IS T.
        RECORD SECTION.
          RECORD NAME IS A. FIELDS ARE. K PIC X(2). END RECORD.
        END RECORD SECTION.
        CONSTRAINT SECTION.
          CONSTRAINT NAME IS C1. FROBNICATE A. END CONSTRAINT.
        END CONSTRAINT SECTION.
        END SCHEMA.
        """)


def test_comments_are_ignored():
    schema = parse_ddl("""
    SCHEMA NAME IS T. *> a schema
    RECORD SECTION. *> records follow
      RECORD NAME IS A. FIELDS ARE. K PIC X(2). END RECORD.
    END RECORD SECTION.
    END SCHEMA.
    """)
    assert "A" in schema.records
