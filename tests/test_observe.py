"""Tests for the observability layer (:mod:`repro.observe`).

Covers the tracer's span trees (nesting, timing under a fake clock,
exception safety, sampling), thread isolation of the active tracer,
the Chrome trace round trip, the profile table's reconciliation
property, the unified metrics registry and its back-compat shims
(engine ``Metrics``, ``MetricsScope`` deltas, ``NamedCounters``), and
a hypothesis property over counter monotonicity.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, strategies as st

from repro.engine.metrics import Metrics, MetricsScope
from repro.observe import (
    NULL_SPAN,
    MetricsRegistry,
    NamedCounters,
    Span,
    Tracer,
    current_tracer,
    get_registry,
    load_trace,
    profile_rows,
    registry_delta,
    render_profile,
    sampled_span,
    span,
    spans_from_chrome,
    to_chrome,
    write_trace,
)


class FakeClock:
    """A deterministic clock: every reading advances by ``step``."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        reading = self.now
        self.now += self.step
        return reading


def empty_registry() -> MetricsRegistry:
    """A dedicated registry so tests do not see global bundles."""
    return MetricsRegistry()


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------


def test_span_nesting_follows_call_structure():
    tracer = Tracer(clock=FakeClock(), registry=empty_registry())
    with tracer:
        with span("outer") as outer:
            with span("inner-a"):
                pass
            with span("inner-b") as inner_b:
                inner_b.set_attr("rows", 7)
    assert [root.name for root in tracer.roots] == ["outer"]
    assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
    assert inner_b.attrs == {"rows": 7}
    assert not outer.children[0].children


def test_span_timing_with_fake_clock():
    # FakeClock advances 1s per reading; span open and close each take
    # one reading, so "outer" spans readings 0..5 and the two children
    # 1..2 and 3..4.
    tracer = Tracer(clock=FakeClock(), registry=empty_registry())
    with tracer:
        with span("outer"):
            with span("a"):
                pass
            with span("b"):
                pass
    outer = tracer.roots[0]
    assert outer.start == 0.0 and outer.end == 5.0
    assert outer.duration == 5.0
    assert [child.duration for child in outer.children] == [1.0, 1.0]
    assert outer.self_seconds() == 3.0


def test_span_closes_on_exception():
    tracer = Tracer(clock=FakeClock(), registry=empty_registry())
    with tracer:
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
    doomed = tracer.roots[0]
    assert doomed.end is not None
    # The current-span var was restored: a new span is a root, not a
    # child of the failed one.
    with tracer:
        with span("after"):
            pass
    assert [root.name for root in tracer.roots] == ["doomed", "after"]


def test_multiple_roots():
    tracer = Tracer(clock=FakeClock(), registry=empty_registry())
    with tracer:
        with span("first"):
            pass
        with span("second"):
            pass
    assert [root.name for root in tracer.roots] == ["first", "second"]


def test_no_active_tracer_yields_null_span():
    assert current_tracer() is None
    with span("ignored") as handle:
        handle.set_attr("anything", 1)  # must not raise
    assert handle is NULL_SPAN
    assert not handle


def test_sampled_span_records_every_nth():
    tracer = Tracer(clock=FakeClock(), registry=empty_registry(),
                    sample_every=3)
    with tracer:
        for _ in range(7):
            with sampled_span("dml.NetGet"):
                pass
    # Calls 1, 4 and 7 are recorded; all seven are counted.
    assert len(tracer.roots) == 3
    assert [root.attrs["sample_index"] for root in tracer.roots] == [1, 4, 7]
    assert tracer.sample_counts == {"dml.NetGet": 7}


def test_sample_every_validation():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)


def test_thread_does_not_see_main_thread_tracer():
    tracer = Tracer(registry=empty_registry())
    seen: list[object] = []

    def worker() -> None:
        seen.append(current_tracer())
        with span("thread-span"):
            pass

    with tracer:
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    # Threads start from a fresh context: no tracer, nothing recorded.
    assert seen == [None]
    assert tracer.roots == []


def test_thread_with_own_tracer_records_independently():
    main_tracer = Tracer(registry=empty_registry())
    thread_tracer = Tracer(registry=empty_registry())

    def worker() -> None:
        with thread_tracer:
            with span("thread-root"):
                pass

    with main_tracer:
        with span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
    assert [root.name for root in main_tracer.roots] == ["main-root"]
    assert [root.name for root in thread_tracer.roots] == ["thread-root"]


# ---------------------------------------------------------------------------
# Export round trips and the profile table
# ---------------------------------------------------------------------------


def make_trace() -> Tracer:
    tracer = Tracer(clock=FakeClock(0.5), registry=empty_registry())
    with tracer:
        with span("convert", program="REPORT"):
            with span("phase.analyze"):
                pass
            with span("phase.generate"):
                with span("operator.Interpose"):
                    pass
    return tracer


def test_native_round_trip(tmp_path):
    tracer = make_trace()
    path = write_trace(tracer, tmp_path / "trace.json")
    loaded = load_trace(path)
    assert [span.to_dict() for span in loaded] == \
        [root.to_dict() for root in tracer.roots]


def test_chrome_document_shape():
    tracer = make_trace()
    document = to_chrome(tracer)
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert {event["ph"] for event in events} == {"X"}
    assert [event["name"] for event in events] == [
        "convert", "phase.analyze", "phase.generate", "operator.Interpose",
    ]
    convert = events[0]
    assert convert["ts"] == 0.0
    assert convert["args"]["program"] == "REPORT"


def test_chrome_containment_reconstruction():
    tracer = make_trace()
    rebuilt = spans_from_chrome(to_chrome(tracer)["traceEvents"])
    assert len(rebuilt) == 1
    convert = rebuilt[0]
    assert convert.name == "convert"
    assert [child.name for child in convert.children] == \
        ["phase.analyze", "phase.generate"]
    assert [g.name for g in convert.children[1].children] == \
        ["operator.Interpose"]


def test_load_trace_accepts_bare_chrome_events(tmp_path):
    tracer = make_trace()
    path = tmp_path / "bare.json"
    import json
    path.write_text(json.dumps({"traceEvents":
                                to_chrome(tracer)["traceEvents"]}))
    loaded = load_trace(path)
    assert loaded[0].name == "convert"
    assert [child.name for child in loaded[0].children] == \
        ["phase.analyze", "phase.generate"]


def test_profile_reconciles_with_root_duration():
    tracer = make_trace()
    rows = profile_rows(tracer)
    root_total = sum(root.duration for root in tracer.roots)
    assert sum(row.self_seconds for row in rows) == pytest.approx(root_total)
    rendered = render_profile(tracer)
    assert "self times sum to" in rendered
    assert "1 root span(s)" in rendered


def test_profile_aggregates_by_name():
    tracer = Tracer(clock=FakeClock(), registry=empty_registry())
    with tracer:
        for _ in range(3):
            with span("repeated"):
                pass
    (row,) = profile_rows(tracer)
    assert row.name == "repeated" and row.calls == 3
    assert row.total_seconds == pytest.approx(3.0)


def test_span_dict_round_trip():
    original = Span("s", {"k": 1}, start=1.0, end=2.5,
                    children=[Span("c", start=1.2, end=1.4)],
                    metrics={"engine.dml_calls": 3},
                    metrics_delta={"engine.dml_calls": 2})
    assert Span.from_dict(original.to_dict()).to_dict() == original.to_dict()


# ---------------------------------------------------------------------------
# Metrics registry and the back-compat shims
# ---------------------------------------------------------------------------


def test_named_counters_namespace_and_aggregation():
    registry = empty_registry()
    a = NamedCounters("emulation", registry=registry)
    b = NamedCounters("emulation", registry=registry)
    a.bump("store")
    a.bump("store")
    b.bump("store")
    b.bump("erase", 3)
    assert a.get("store") == 2 and a.get("never") == 0
    assert a.snapshot() == {"store": 2}
    assert registry.snapshot() == {"emulation.erase": 3,
                                   "emulation.store": 3}


def test_engine_metrics_register_globally():
    registry = get_registry()
    before = registry.snapshot()
    bundle = Metrics()
    bundle.records_read += 5
    bundle.dml_calls += 2
    delta = registry_delta(before, registry.snapshot())
    assert delta["engine.records_read"] == 5
    assert delta["engine.dml_calls"] == 2


def test_derived_metrics_do_not_double_count():
    registry = get_registry()
    bundle = Metrics()
    bundle.records_read += 4
    before = registry.snapshot()
    # Subtraction results and scope deltas copy counts that the
    # aggregate has already seen; they must not register.
    difference = bundle - Metrics(registered=False)
    with MetricsScope(bundle) as scope:
        bundle.records_read += 1
    assert difference.records_read == 4
    assert scope.delta.records_read == 1
    delta = registry_delta(before, registry.snapshot())
    assert delta == {"engine.records_read": 1}


def test_registry_holds_sources_weakly():
    registry = empty_registry()
    counters = NamedCounters("tmp", registry=registry)
    counters.bump("x")
    assert registry.snapshot() == {"tmp.x": 1}
    del counters
    import gc
    gc.collect()
    assert registry.snapshot() == {}


def test_registry_delta_semantics():
    assert registry_delta({}, {"a": 2}) == {"a": 2}
    assert registry_delta({"a": 2}, {"a": 2}) == {}
    # Vanished counters (collected bundle) are dropped, not negative.
    assert registry_delta({"a": 2}, {}) == {}
    assert registry_delta({"a": 2}, {"a": 5, "b": 1}) == {"a": 3, "b": 1}


def test_span_captures_metrics_delta():
    registry = empty_registry()
    counters = NamedCounters("verbs", registry=registry)
    tracer = Tracer(clock=FakeClock(), registry=registry)
    with tracer:
        with span("work"):
            counters.bump("find", 4)
    work = tracer.roots[0]
    assert work.metrics_delta == {"verbs.find": 4}
    assert work.metrics == {"verbs.find": 4}


@given(st.lists(st.tuples(st.sampled_from(["read", "write", "probe"]),
                          st.integers(min_value=0, max_value=10)),
                max_size=30))
def test_counter_snapshots_never_decrease(bumps):
    registry = MetricsRegistry()
    counters = NamedCounters("prop", registry=registry)
    previous = registry.snapshot()
    for name, amount in bumps:
        counters.bump(name, amount)
        current = registry.snapshot()
        for key, value in previous.items():
            assert current.get(key, 0) >= value
        assert all(v >= 0 for v in
                   registry_delta(previous, current).values())
        previous = current
