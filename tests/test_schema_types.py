"""Unit tests for PIC field types."""

import pytest

from repro.errors import SchemaError
from repro.schema import parse_pic


def test_parse_alphanumeric():
    field_type = parse_pic("X(20)")
    assert field_type.kind == "X"
    assert field_type.width == 20
    assert field_type.pic == "X(20)"
    assert not field_type.is_numeric


def test_parse_numeric():
    field_type = parse_pic("9(4)")
    assert field_type.is_numeric
    assert field_type.width == 4


def test_parse_is_case_insensitive_and_trims():
    assert parse_pic(" x(3) ").pic == "X(3)"


@pytest.mark.parametrize("bad", ["X", "9", "X()", "A(3)", "X(0)", "", "X(3"])
def test_parse_rejects_malformed(bad):
    with pytest.raises(SchemaError):
        parse_pic(bad)


def test_alpha_validate_accepts_and_bounds():
    field_type = parse_pic("X(5)")
    assert field_type.validate("ABC") == "ABC"
    assert field_type.validate(123) == "123"
    with pytest.raises(SchemaError):
        field_type.validate("TOOLONG")


def test_numeric_validate():
    field_type = parse_pic("9(2)")
    assert field_type.validate(7) == 7
    assert field_type.validate("42") == 42
    with pytest.raises(SchemaError):
        field_type.validate(100)
    with pytest.raises(SchemaError):
        field_type.validate(-1)
    with pytest.raises(SchemaError):
        field_type.validate("ABC")
    with pytest.raises(SchemaError):
        field_type.validate(3.5)
    with pytest.raises(SchemaError):
        field_type.validate(True)


def test_none_always_valid():
    assert parse_pic("X(1)").validate(None) is None
    assert parse_pic("9(1)").validate(None) is None
