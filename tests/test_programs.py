"""Unit tests for the program AST, builder, interpreter and I/O traces."""

import pytest

from repro.programs import ProgramInputs, run_program
from repro.programs import builder as b
from repro.programs import ast
from repro.programs.ast import render_program, transform_program, walk_program
from repro.programs.interpreter import Interpreter, InterpreterError
from repro.programs.iotrace import IOTrace


class TestExpressions:
    def run_expr(self, expr, env=None, db=None, small_db=None):
        interpreter = Interpreter(db if db is not None else small_db)
        interpreter.env.update(env or {})
        return interpreter.eval(expr)

    def test_arithmetic_and_comparison(self, small_db):
        interpreter = Interpreter(small_db)
        assert interpreter.eval(b.add(2, 3)) == 5
        assert interpreter.eval(b.gt(5, 3)) is True
        assert interpreter.eval(b.le(5, 3)) is False
        assert interpreter.eval(b.ne("a", "b")) is True

    def test_boolean_short_circuit(self, small_db):
        interpreter = Interpreter(small_db)
        # right side references an unbound var: must not be evaluated
        expr = b.or_(b.eq(1, 1), b.eq(b.v("UNBOUND"), 1))
        assert interpreter.eval(expr) is True
        expr = b.and_(b.eq(1, 2), b.eq(b.v("UNBOUND"), 1))
        assert interpreter.eval(expr) is False

    def test_none_comparisons(self, small_db):
        interpreter = Interpreter(small_db)
        interpreter.env["X"] = None
        assert interpreter.eval(b.eq(b.v("X"), None)) is True
        assert interpreter.eval(b.lt(b.v("X"), 5)) is True  # None < all
        assert interpreter.eval(b.gt(b.v("X"), 5)) is False

    def test_unbound_variable_raises(self, small_db):
        interpreter = Interpreter(small_db)
        with pytest.raises(InterpreterError):
            interpreter.eval(b.v("NOPE"))


class TestHostStatements:
    def test_terminal_io(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.accept("NAME", prompt="WHO?"),
            b.display("HELLO", b.v("NAME")),
        ])
        trace = run_program(program, small_db,
                            ProgramInputs(terminal=["WORLD"]))
        assert trace.terminal_lines() == ["WHO?", "HELLO WORLD"]
        reads = [e for e in trace.events if e.direction == "read"]
        assert reads[0].text == "WORLD"

    def test_terminal_read_exhausted_gives_empty(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.accept("X"),
            b.display(b.v("X"), "END"),
        ])
        trace = run_program(program, small_db)
        assert trace.terminal_lines() == [" END"]

    def test_file_io_and_eof(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.read_file("IN", "LINE"),
            b.while_(b.eq(b.v("FILE-STATUS"), "00"), [
                b.write_file("OUT", b.v("LINE")),
                b.read_file("IN", "LINE"),
            ]),
            b.display("COPIED"),
        ])
        trace = run_program(program, small_db,
                            ProgramInputs(files={"IN": ["a", "b"]}))
        assert trace.file_lines("OUT") == ["a", "b"]

    def test_if_else(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.assign("X", 10),
            b.if_(b.gt(b.v("X"), 5), [b.display("BIG")],
                  [b.display("SMALL")]),
        ])
        assert run_program(program, small_db).terminal_lines() == ["BIG"]

    def test_while_loop(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.assign("I", 0),
            b.while_(b.lt(b.v("I"), 3), [
                b.display(b.v("I")),
                b.assign("I", b.add(b.v("I"), 1)),
            ]),
        ])
        assert run_program(program, small_db).terminal_lines() == \
            ["0", "1", "2"]

    def test_step_budget_stops_infinite_loop(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.while_(b.eq(1, 1), [b.assign("X", 1)]),
        ])
        interpreter = Interpreter(small_db, max_steps=1000)
        with pytest.raises(InterpreterError):
            interpreter.run(program)

    def test_procedure_call_binds_and_restores(self, small_db):
        procedure = b.procedure("GREET", ("WHO",), [
            b.display("HI", b.v("WHO")),
        ])
        program = b.program("T", "network", "SMALL", [
            b.assign("WHO", "OUTER"),
            b.call("GREET", "INNER"),
            b.display(b.v("WHO")),
        ], procedures=[procedure])
        trace = run_program(program, small_db)
        assert trace.terminal_lines() == ["HI INNER", "OUTER"]

    def test_procedure_with_dml(self, small_db):
        procedure = b.procedure("SHOW", ("KEY",), [
            b.find_any("OWNER", **{"KEY": b.v("KEY")}),
            b.get("OWNER"),
            b.display(b.field("OWNER", "NAME")),
        ])
        program = b.program("T", "network", "SMALL", [
            b.call("SHOW", "K1"),
            b.call("SHOW", "K2"),
        ], procedures=[procedure])
        trace = run_program(program, small_db, consistent=False)
        assert trace.terminal_lines() == ["OWNER-K1", "OWNER-K2"]

    def test_bind_first_row(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.assign("ROWS", 0),  # placeholder, replaced below
        ])
        interpreter = Interpreter(small_db)
        interpreter.env["$R"] = [{"A": 1}, {"A": 2}]
        interpreter._exec(ast.BindFirstRow("ROW", "$R"))
        assert interpreter.env["ROW.A"] == 1
        assert interpreter.env["DB-STATUS"] == "0000"
        interpreter.env["$R"] = []
        interpreter._exec(ast.BindFirstRow("ROW", "$R"))
        assert interpreter.env["DB-STATUS"] == "0326"
        del program


class TestNetworkStatements:
    def test_scan_template(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.find_any("OWNER", **{"KEY": "K1"}),
            *b.scan_set("ITEM", "OWNS", [
                b.display(b.field("ITEM", "LABEL")),
            ]),
        ])
        trace = run_program(program, small_db, consistent=False)
        assert trace.terminal_lines() == ["K1-1", "K1-2", "K1-3"]

    def test_process_first_template(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.find_any("OWNER", **{"KEY": "K1"}),
            *b.process_first("ITEM", "OWNS", [
                b.display(b.field("ITEM", "LABEL")),
            ]),
        ])
        trace = run_program(program, small_db, consistent=False)
        assert trace.terminal_lines() == ["K1-1"]

    def test_get_wrong_record_sets_status(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.find_any("OWNER", **{"KEY": "K1"}),
            b.get("ITEM"),
            b.display(b.v("DB-STATUS")),
        ])
        trace = run_program(program, small_db, consistent=False)
        assert trace.terminal_lines() == ["0306"]

    def test_generic_call_dispatch(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.assign("VERB", "FIND-ANY"),
            b.generic_call(b.v("VERB"), "OWNER", **{"KEY": "K2"}),
            b.get("OWNER"),
            b.display(b.field("OWNER", "NAME")),
        ])
        trace = run_program(program, small_db, consistent=False)
        assert trace.terminal_lines() == ["OWNER-K2"]

    def test_store_modify_erase_via_program(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.find_any("OWNER", **{"KEY": "K1"}),
            b.store("ITEM", **{"SEQ": 77, "LABEL": "NEW"}),
            b.modify("ITEM", **{"LABEL": "CHANGED"}),
            b.erase("ITEM"),
            b.display("OK"),
        ])
        before = small_db.count("ITEM")
        run_program(program, small_db, consistent=False)
        assert small_db.count("ITEM") == before


class TestTraces:
    def test_equality_and_diff(self):
        left = IOTrace()
        left.terminal_write("A")
        right = IOTrace()
        right.terminal_write("A")
        assert left == right
        assert left.diff(right) is None
        right.terminal_write("B")
        assert left != right
        assert "extra" in left.diff(right)

    def test_diff_reports_first_divergence(self):
        left = IOTrace()
        left.terminal_write("A")
        left.terminal_write("B")
        right = IOTrace()
        right.terminal_write("A")
        right.terminal_write("C")
        assert "event 1" in left.diff(right)

    def test_render(self):
        trace = IOTrace()
        trace.terminal_write("X")
        trace.file_read("F", "line")
        assert "terminal -> X" in trace.render()
        assert "F <- line" in trace.render()


class TestTreeTools:
    def test_walk_covers_nested_blocks(self):
        program = b.program("T", "network", "S", [
            b.if_(b.eq(1, 1), [
                b.while_(b.eq(1, 1), [b.display("X")]),
            ], [b.display("Y")]),
        ])
        kinds = [type(s).__name__ for s in walk_program(program)]
        assert kinds == ["If", "While", "WriteTerminal", "WriteTerminal"]

    def test_transform_splice_and_drop(self):
        program = b.program("T", "network", "S", [
            b.display("KEEP"),
            b.display("DROP"),
            b.display("DOUBLE"),
        ])

        def fn(stmt):
            if isinstance(stmt, ast.WriteTerminal):
                text = stmt.exprs[0].value
                if text == "DROP":
                    return None
                if text == "DOUBLE":
                    return [stmt, stmt]
            return stmt

        result = transform_program(program, fn)
        texts = [s.exprs[0].value for s in result.statements]
        assert texts == ["KEEP", "DOUBLE", "DOUBLE"]

    def test_render_program_is_text(self, small_db):
        program = b.program("T", "network", "SMALL", [
            b.find_any("OWNER", **{"KEY": "K1"}),
            *b.scan_set("ITEM", "OWNS", [b.display("X")]),
        ])
        text = render_program(program)
        assert "FIND FIRST ITEM WITHIN OWNS" in text
        assert "PERFORM WHILE" in text


def test_run_unit_enforces_consistency(small_db):
    """Section 1.1: programs must leave the database consistent."""
    from repro.schema import ExistenceConstraint

    small_db.schema.add_constraint(ExistenceConstraint("E", "OWNS"))
    program = b.program("T", "network", "SMALL", [
        b.store("ITEM", **{"SEQ": 1, "LABEL": "ORPHAN"}),
    ])
    from repro.errors import IntegrityError

    with pytest.raises(IntegrityError):
        run_program(program, small_db, consistent=True)
