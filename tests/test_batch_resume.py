"""Checkpointed, fault-isolated batch conversion (repro.batch) plus
the error-context plumbing it relies on."""

import json

import pytest

from repro.batch import BatchCheckpoint, CheckpointError, run_batch
from repro.core.report import (
    BatchReport,
    FaultContext,
    STATUS_ASSISTED,
    STATUS_AUTOMATIC,
    STATUS_FAILED,
    STATUS_FELL_BACK,
)
from repro.core.supervisor import (
    ConversionSupervisor,
    RefusingAnalyst,
    ScriptedAnalyst,
)
from repro.errors import AnalysisError, PipelineFault, annotate
from repro.options import ConversionOptions
from repro.faultinject import InjectedFault, inject
from repro.programs import ast
from repro.programs import builder as b
from repro.restructure import restructure_database
from repro.strategies import FallbackCascade
from repro.workloads import company


def report_program(name="REPORT"):
    return b.program(name, "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
        b.display("END"),
    ])


def hire_program():
    return b.program("HIRE", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "ZZ-HIRE", "DEPT-NAME": "SALES",
                          "AGE": 25, "DIV-NAME": "MACHINERY"}),
        b.display("HIRED"),
    ])


def variable_verb_program(name="CONSOLE"):
    """CALL DML(V, ...): the analyzer must ask the analyst."""
    return b.program(name, "network", "COMPANY-NAME", [
        b.accept("V"),
        b.generic_call(ast.Var("V"), "EMP", **{"EMP-NAME": "X"}),
    ])


@pytest.fixture
def cascade(interpose_operator):
    source_db = company.company_db(seed=42)
    _schema, target_db = restructure_database(source_db,
                                              interpose_operator)
    return FallbackCascade(source_db, target_db, interpose_operator)


class TestFaultIsolation:
    def test_one_fault_leaves_rest_of_batch_converted(self, cascade):
        source_before = cascade.source_db.state_fingerprint()
        target_before = cascade.target_db.state_fingerprint()
        programs = [report_program("P1"), hire_program(),
                    report_program("P3")]
        # Poison the reference run of whichever program touches the
        # calc index second (HIRE's FIND ANY DIV) -- a fault the
        # cascade cannot fall back from.
        with inject(cascade.source_db, "calc_index", nth=2):
            batch = run_batch(cascade, programs)
        statuses = {r.program_name: r.status for r in batch.reports}
        assert statuses["HIRE"] == STATUS_FAILED
        assert statuses["P1"] != STATUS_FAILED
        assert statuses["P3"] != STATUS_FAILED
        assert cascade.source_db.state_fingerprint() == source_before
        assert cascade.target_db.state_fingerprint() == target_before

    def test_fault_report_carries_chained_root_cause(self, cascade):
        with inject(cascade.source_db, "calc_index", nth=1):
            batch = run_batch(cascade, [hire_program()])
        report = batch.reports[0]
        assert report.status == STATUS_FAILED
        fault = report.fault
        assert fault is not None
        assert fault.program == "HIRE"
        assert fault.error_type == "PipelineFault"
        assert "InjectedFault" in fault.root_cause
        assert fault in BatchReport(batch.reports).faults()

    def test_duplicate_program_names_rejected(self, cascade):
        with pytest.raises(ValueError, match="duplicate"):
            run_batch(cascade, [hire_program(), hire_program()])


class TestCheckpointResume:
    def test_checkpoint_journals_after_every_program(self, cascade,
                                                     tmp_path):
        path = tmp_path / "batch.json"
        programs = [report_program("P1"), hire_program()]
        run_batch(cascade, programs,
                  ConversionOptions(checkpoint=path))
        data = json.loads(path.read_text())
        assert [e["program"] for e in data["completed"]] == ["P1", "HIRE"]
        assert data["programs"] == ["P1", "HIRE"]

    def test_resume_skips_finished_programs(self, cascade, tmp_path):
        path = tmp_path / "batch.json"
        programs = [report_program("P1"), hire_program(),
                    report_program("P3")]
        full = run_batch(cascade, programs,
                         ConversionOptions(checkpoint=path))

        # Simulate a kill after the first program: truncate the journal.
        data = json.loads(path.read_text())
        data["completed"] = data["completed"][:1]
        path.write_text(json.dumps(data))

        # P1's reference run would now fault if re-run; resume must
        # reuse the journaled report instead of re-probing it.
        probes = []
        original = cascade.reference_trace

        def counting_reference(program, inputs=None):
            probes.append(program.name)
            return original(program, inputs)

        cascade.reference_trace = counting_reference
        resumed = run_batch(cascade, programs,
                            ConversionOptions(checkpoint=path,
                                              resume=True))
        assert probes == ["HIRE", "P3"]
        assert [r.to_summary() for r in resumed.reports] == \
            [r.to_summary() for r in full.reports]

    def test_resumed_report_round_trips_target_program(self, cascade,
                                                       tmp_path):
        path = tmp_path / "batch.json"
        programs = [hire_program()]
        run_batch(cascade, programs, ConversionOptions(checkpoint=path))
        resumed = run_batch(cascade, programs,
                            ConversionOptions(checkpoint=path,
                                              resume=True))
        report = resumed.reports[0]
        assert report.target_program is not None
        run = cascade.make_strategy("rewrite")
        # The round-tripped program still executes.
        from repro.programs.interpreter import run_program

        savepoint = cascade.target_db.savepoint()
        trace = run_program(report.target_program, cascade.target_db,
                            consistent=False)
        cascade.target_db.rollback(savepoint)
        assert "HIRED" in trace.terminal_lines()

    def test_checkpoint_for_different_batch_refused(self, cascade,
                                                    tmp_path):
        path = tmp_path / "batch.json"
        run_batch(cascade, [hire_program()],
                  ConversionOptions(checkpoint=path))
        with pytest.raises(CheckpointError, match="different|written for"):
            run_batch(cascade, [report_program("OTHER")],
                      ConversionOptions(checkpoint=path, resume=True))

    def test_corrupt_checkpoint_reported(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            BatchCheckpoint(path).load()

    def test_checkpoint_write_is_atomic(self, cascade, tmp_path):
        path = tmp_path / "batch.json"
        run_batch(cascade, [hire_program()],
                  ConversionOptions(checkpoint=path))
        assert not (tmp_path / "batch.json.tmp").exists()


class TestAnalystEdgeCases:
    def test_scripted_analyst_running_out_of_answers(self, company_schema,
                                                     interpose_operator):
        """A list answer is consumed per question; exhaustion declines,
        so the second variable-verb program fails where the first one
        was (unsuccessfully) answered."""
        analyst = ScriptedAnalyst({"pin-verb": ["pinned"]})
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator,
                                          analyst=analyst)
        first = supervisor.convert_program(variable_verb_program("C1"))
        second = supervisor.convert_program(variable_verb_program("C2"))
        # No pins were configured, so both fail -- but the transcript
        # shows the first was answered and the second declined.
        assert first.status == STATUS_FAILED
        assert second.status == STATUS_FAILED
        answers = [answer for _q, answer in analyst.transcript]
        assert answers == ["pinned", None]

    def test_scripted_analyst_string_answer_repeats(self):
        analyst = ScriptedAnalyst({"pin-verb": "pinned"})
        from repro.core.supervisor import AnalystQuestion

        question = AnalystQuestion("pin-verb", "P", "?")
        assert analyst.answer(question) == "pinned"
        assert analyst.answer(question) == "pinned"

    def test_refusing_analyst_forces_assisted_path_to_fail(
            self, company_schema, interpose_operator):
        """With pins available the AutoAnalyst would assist; the
        RefusingAnalyst declines, so the program needs manual work."""
        pins = {"CONSOLE": {0: "FIND-ANY"}}
        assisted = ConversionSupervisor(
            company_schema, interpose_operator,
            verb_pins=pins).convert_program(variable_verb_program())
        assert assisted.status == STATUS_ASSISTED

        refusing = RefusingAnalyst()
        refused = ConversionSupervisor(
            company_schema, interpose_operator, analyst=refusing,
            verb_pins=pins).convert_program(variable_verb_program())
        assert refused.status == STATUS_FAILED
        assert len(refusing.declined) == 1

    def test_refusing_analyst_through_convert_batch(self,
                                                    interpose_operator):
        """The batch picks the cascade's fallback for programs the
        refused rewrite cannot serve: CONSOLE runs under emulation
        (the verb varies at run time, which emulation handles), while
        plain programs convert automatically."""
        source_db = company.company_db(seed=42)
        _schema, target_db = restructure_database(source_db,
                                                  interpose_operator)
        from repro.programs.interpreter import ProgramInputs

        cascade = FallbackCascade(source_db, target_db,
                                  interpose_operator,
                                  analyst=RefusingAnalyst())
        batch = run_batch(
            cascade, [hire_program(), variable_verb_program()],
            ConversionOptions(inputs=ProgramInputs(terminal=["FIND-ANY"])))
        statuses = {r.program_name: r.status for r in batch.reports}
        assert statuses["HIRE"] == STATUS_AUTOMATIC
        assert statuses["CONSOLE"] in (STATUS_FELL_BACK, STATUS_FAILED)
        console = next(r for r in batch.reports
                       if r.program_name == "CONSOLE")
        assert console.stages[0].outcome == "unconverted"


class TestErrorContext:
    def test_conversion_error_str_includes_context(self):
        error = AnalysisError("no template", program="P1", phase="analyze")
        assert str(error) == "no template [program=P1, phase=analyze]"
        assert error.context() == {"program": "P1", "phase": "analyze"}

    def test_annotate_fills_only_missing_fields(self):
        error = AnalysisError("boom", phase="analyze")
        annotate(error, program="P1", phase="generate", statement="GET X")
        assert error.program == "P1"
        assert error.phase == "analyze"          # raise site wins
        assert error.statement == "GET X"

    def test_supervisor_wraps_stray_exceptions_chained(
            self, company_schema, interpose_operator):
        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator)
        with inject(supervisor.generator, "generate", nth=1,
                    make_error=KeyError):
            with pytest.raises(PipelineFault) as excinfo:
                supervisor.convert_program(hire_program())
        fault = excinfo.value
        assert fault.phase == "generate"
        assert fault.program == "HIRE"
        assert isinstance(fault.__cause__, KeyError)

    def test_fault_context_from_exception_walks_chain(self):
        try:
            try:
                raise InjectedFault("root")
            except InjectedFault as inner:
                raise PipelineFault("wrapper", program="P",
                                    phase="convert") from inner
        except PipelineFault as outer:
            context = FaultContext.from_exception(outer)
        assert context.program == "P"
        assert context.phase == "convert"
        assert context.cause_chain == ("InjectedFault: root",)
        assert context.root_cause == "InjectedFault: root"

    def test_fault_context_json_round_trip(self):
        context = FaultContext("PipelineFault", "boom", program="P",
                               phase="optimize",
                               cause_chain=("KeyError: 'x'",))
        data = json.loads(json.dumps(context.to_dict()))
        assert FaultContext.from_dict(data) == context
