"""Deterministic fault injection (repro.faultinject)."""

import pytest

from repro.engine import RecordStore
from repro.errors import ConversionError, ReproError
from repro.faultinject import (
    FaultInjector,
    InjectedFault,
    choose_point,
    inject,
)


class TestFaultPoint:
    def test_fires_exactly_at_nth_call(self):
        store = RecordStore("EMP")
        with inject(store, "insert", nth=3) as point:
            store.insert({"NAME": "A"})
            store.insert({"NAME": "B"})
            with pytest.raises(InjectedFault):
                store.insert({"NAME": "C"})
            assert point.fired
            # Calls after the Nth pass through unharmed.
            store.insert({"NAME": "D"})
        assert [r.get("NAME") for r in store.all_records()] == \
            ["A", "B", "D"]

    def test_disarm_restores_original_method(self):
        store = RecordStore("EMP")
        original = store.insert
        with inject(store, "insert", nth=1):
            assert store.insert is not original
        assert store.insert.__func__ is original.__func__
        store.insert({"NAME": "A"})

    def test_injection_is_instance_scoped(self):
        store, other = RecordStore("EMP"), RecordStore("EMP")
        with inject(store, "insert", nth=1):
            other.insert({"NAME": "SAFE"})
            with pytest.raises(InjectedFault):
                store.insert({"NAME": "BOOM"})
        assert len(other.all_records()) == 1

    def test_unfired_point_reports_not_fired(self):
        store = RecordStore("EMP")
        with inject(store, "insert", nth=5) as point:
            store.insert({"NAME": "A"})
        assert not point.fired

    def test_custom_error_factory(self):
        store = RecordStore("EMP")
        with inject(store, "insert", nth=1, make_error=RuntimeError):
            with pytest.raises(RuntimeError):
                store.insert({"NAME": "A"})

    def test_non_callable_target_rejected(self):
        store = RecordStore("EMP")
        with pytest.raises(ValueError):
            FaultInjector().add(store, "type_name")
        with pytest.raises(ValueError):
            FaultInjector().add(store, "no_such_method")


class TestFaultInjector:
    def test_multiple_points_armed_together(self):
        store_a, store_b = RecordStore("A"), RecordStore("B")
        injector = FaultInjector()
        injector.add(store_a, "insert", nth=1)
        injector.add(store_b, "insert", nth=2)
        with injector:
            with pytest.raises(InjectedFault):
                store_a.insert({"X": 1})
            store_b.insert({"X": 1})
            with pytest.raises(InjectedFault):
                store_b.insert({"X": 2})
        assert len(injector.fired) == 2

    def test_disarm_even_when_body_raises(self):
        store = RecordStore("EMP")
        injector = FaultInjector()
        injector.add(store, "insert", nth=1)
        with pytest.raises(InjectedFault):
            with injector:
                store.insert({"NAME": "A"})
        store.insert({"NAME": "B"})
        assert len(store.all_records()) == 1


class TestErrorTaxonomy:
    def test_injected_fault_is_outside_conversion_branch(self):
        """Nothing in the pipeline may catch InjectedFault as a
        ConversionError: it must travel the unexpected-exception
        paths, like a genuine engine bug."""
        assert issubclass(InjectedFault, ReproError)
        assert not issubclass(InjectedFault, ConversionError)


class TestChoosePoint:
    def test_same_seed_same_site(self):
        store_a, store_b = RecordStore("A"), RecordStore("B")
        candidates = [(store_a, "insert"), (store_b, "delete")]
        first = choose_point(7, candidates)
        second = choose_point(7, candidates)
        assert first == second

    def test_seed_sweep_covers_multiple_sites(self):
        store_a, store_b = RecordStore("A"), RecordStore("B")
        candidates = [(store_a, "insert"), (store_b, "delete")]
        chosen = {choose_point(seed, candidates)[1] for seed in range(20)}
        assert chosen == {"insert", "delete"}

    def test_nth_bounded(self):
        store = RecordStore("A")
        for seed in range(20):
            _obj, _method, nth = choose_point(seed, [(store, "insert")],
                                              max_nth=3)
            assert 1 <= nth <= 3

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            choose_point(1, [])
