"""The strategy fallback cascade (repro.strategies.cascade)."""

import pytest

from repro.core.report import (
    STATUS_FAILED,
    STATUS_FELL_BACK,
    STATUS_WARNINGS,
)
from repro.errors import PipelineFault
from repro.faultinject import InjectedFault, inject
from repro.programs import ast
from repro.programs import builder as b
from repro.restructure import restructure_database
from repro.strategies import FallbackCascade
from repro.workloads import company


def report_program(name="REPORT"):
    return b.program(name, "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
        b.display("END"),
    ])


def hire_program():
    return b.program("HIRE", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "ZZ-HIRE", "DEPT-NAME": "SALES",
                          "AGE": 25, "DIV-NAME": "MACHINERY"}),
        b.display("HIRED"),
    ])


def free_navigation_program():
    """FIND FIRST/FIND NEXT outside any template: the rewrite pipeline
    refuses it, but the source program still runs -- emulation serves."""
    return b.program("FREE-NAV", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.find_first("EMP", "DIV-EMP"),
        b.find_next("EMP", "DIV-EMP"),
        b.if_(ast.status_ok(), [
            b.get("EMP"),
            b.display(b.field("EMP", "EMP-NAME")),
        ]),
        b.display("DONE"),
    ])


@pytest.fixture
def cascade_setup(interpose_operator):
    source_db = company.company_db(seed=42)
    _schema, target_db = restructure_database(source_db,
                                              interpose_operator)
    cascade = FallbackCascade(source_db, target_db, interpose_operator)
    return source_db, target_db, cascade


class TestHappyPath:
    def test_rewrite_wins_first(self, cascade_setup):
        _source, _target, cascade = cascade_setup
        outcome = cascade.convert(hire_program())
        assert outcome.report.strategy == "rewrite"
        assert outcome.report.converted
        assert outcome.report.stages[0].outcome == "validated"
        assert outcome.strategy is not None
        assert outcome.run is not None

    def test_reordered_trace_is_warned_not_escalated(self, cascade_setup):
        """Interposition regroups DIV-EMP members by DEPT; the rewrite
        emits the same events in a different order.  That is the
        Section 5.2 level-2 band, not a failure."""
        _source, _target, cascade = cascade_setup
        outcome = cascade.convert(report_program())
        assert outcome.report.strategy == "rewrite"
        assert outcome.report.stages[0].outcome == "validated-reordered"
        assert outcome.report.status == STATUS_WARNINGS
        assert any("order" in w for w in outcome.report.warnings)

    def test_probe_leaves_databases_byte_identical(self, cascade_setup):
        source_db, target_db, cascade = cascade_setup
        source_before = source_db.state_fingerprint()
        target_before = target_db.state_fingerprint()
        cascade.convert(hire_program())
        assert source_db.state_fingerprint() == source_before
        assert target_db.state_fingerprint() == target_before


class TestEscalation:
    def test_unconvertible_program_falls_back_to_emulation(
            self, cascade_setup):
        _source, _target, cascade = cascade_setup
        outcome = cascade.convert(free_navigation_program())
        assert outcome.report.status == STATUS_FELL_BACK
        assert outcome.report.strategy == "emulation"
        assert [s.strategy for s in outcome.report.stages] == \
            ["rewrite", "emulation"]
        assert outcome.report.stages[0].outcome == "unconverted"
        assert outcome.report.converted

    def test_injected_fault_escalates_to_next_stage(self, cascade_setup):
        source_db, target_db, cascade = cascade_setup
        source_before = source_db.state_fingerprint()
        target_before = target_db.state_fingerprint()
        # The rewrite probe is the first to insert into the target;
        # nth=1 kills it, then emulation (whose first insert is call 2)
        # runs clean.
        with inject(target_db, "insert_record", nth=1):
            outcome = cascade.convert(hire_program())
        assert outcome.report.status == STATUS_FELL_BACK
        assert outcome.report.strategy == "emulation"
        assert outcome.report.stages[0].outcome == "error"
        assert "InjectedFault" in outcome.report.stages[0].detail
        assert source_db.state_fingerprint() == source_before
        assert target_db.state_fingerprint() == target_before

    def test_all_stages_faulting_reports_failure(self, cascade_setup):
        from repro.faultinject import FaultInjector

        source_db, target_db, cascade_full = cascade_setup
        # Bridge probes write to their own reconstruction, so a target
        # insert fault cannot reach it; restrict the cascade to the
        # two stages that do write through the target.
        cascade = FallbackCascade(source_db, target_db,
                                  cascade_full.operator,
                                  order=("rewrite", "emulation"))
        target_before = target_db.state_fingerprint()
        injector = FaultInjector()
        # Both stages' first target insert gets killed (calls 1 and 2).
        for nth in (1, 2):
            injector.add(target_db, "insert_record", nth=nth)
        with injector:
            outcome = cascade.convert(hire_program())
        assert outcome.report.status == STATUS_FAILED
        assert outcome.strategy is None
        assert outcome.report.fault is not None
        assert "InjectedFault" in outcome.report.fault.root_cause
        assert all(stage.outcome == "error"
                   for stage in outcome.report.stages)
        assert target_db.state_fingerprint() == target_before

    def test_reference_run_fault_is_wrapped_and_chained(
            self, cascade_setup):
        source_db, _target, cascade = cascade_setup
        source_before = source_db.state_fingerprint()
        with inject(source_db, "calc_index", nth=1):
            with pytest.raises(PipelineFault) as excinfo:
                cascade.convert(hire_program())
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert excinfo.value.program == "HIRE"
        assert excinfo.value.phase == "reference-run"
        assert source_db.state_fingerprint() == source_before


class TestConfiguration:
    def test_custom_order_is_honoured(self, cascade_setup):
        _source, _target, cascade_full = cascade_setup
        cascade = FallbackCascade(
            cascade_full.source_db, cascade_full.target_db,
            cascade_full.operator, order=("emulation",))
        outcome = cascade.convert(hire_program())
        assert outcome.report.strategy == "emulation"
        assert outcome.report.status == STATUS_FELL_BACK

    def test_rewrite_only_order_fails_hard_programs(self, cascade_setup):
        _source, _target, cascade_full = cascade_setup
        cascade = FallbackCascade(
            cascade_full.source_db, cascade_full.target_db,
            cascade_full.operator, order=("rewrite",))
        outcome = cascade.convert(free_navigation_program())
        assert outcome.report.status == STATUS_FAILED
        assert not outcome.report.converted
        assert outcome.report.fault is not None

    def test_unknown_stage_rejected(self, cascade_setup):
        _source, _target, cascade_full = cascade_setup
        with pytest.raises(ValueError):
            FallbackCascade(cascade_full.source_db,
                            cascade_full.target_db,
                            cascade_full.operator,
                            order=("rewrite", "teleport"))

    def test_returned_strategy_is_fresh(self, cascade_setup):
        """The instance handed back must not carry probe state (a
        bridge that already retranslated, a rewrite memo against a
        rolled-back target)."""
        _source, target_db, cascade = cascade_setup
        outcome = cascade.convert(hire_program())
        run = outcome.strategy.run(hire_program())
        assert "HIRED" in run.trace.terminal_lines()


class TestConvertSystem:
    def test_mixed_corpus(self, cascade_setup):
        _source, _target, cascade = cascade_setup
        outcomes = cascade.convert_system([
            report_program("P1"), hire_program(),
            free_navigation_program(),
        ])
        statuses = [o.report.status for o in outcomes]
        assert statuses[0] == STATUS_WARNINGS
        assert statuses[2] == STATUS_FELL_BACK
