"""Tests for rename-hypothesis inference (Section 5.1)."""

from repro.core.analyzer_db import ConversionAnalyzer
from repro.restructure import RenameField, RenameRecord
from repro.workloads import company


def test_record_rename_suggested(company_schema):
    operator = RenameRecord("EMP", "WORKER")
    target = operator.apply_schema(company_schema)
    suggestions = ConversionAnalyzer().suggest_renames(company_schema,
                                                       target)
    records = [s for s in suggestions if s.kind == "record"]
    assert len(records) == 1
    assert (records[0].old_name, records[0].new_name) == ("EMP", "WORKER")


def test_field_rename_suggested(company_schema):
    operator = RenameField("EMP", "AGE", "YEARS")
    target = operator.apply_schema(company_schema)
    suggestions = ConversionAnalyzer().suggest_renames(company_schema,
                                                       target)
    fields = [s for s in suggestions if s.kind == "field"]
    assert len(fields) == 1
    assert fields[0].old_name == "EMP.AGE"
    assert fields[0].new_name == "EMP.YEARS"


def test_no_suggestion_when_signatures_differ(company_schema):
    target = company_schema.copy()
    del target.records["EMP"]
    del target.sets["DIV-EMP"]
    target.define_record("TOTALLY-NEW", {"X": "X(1)"})
    suggestions = ConversionAnalyzer().suggest_renames(company_schema,
                                                       target)
    assert [s for s in suggestions if s.kind == "record"] == []


def test_ambiguous_candidates_not_suggested(company_schema):
    """Two added records with the same signature: no safe hypothesis."""
    operator = RenameRecord("EMP", "WORKER")
    target = operator.apply_schema(company_schema)
    # add a twin with the identical signature
    twin = target.records["WORKER"]
    from dataclasses import replace

    target.records["STAFFER"] = replace(twin, name="STAFFER")
    suggestions = ConversionAnalyzer().suggest_renames(company_schema,
                                                       target)
    assert [s for s in suggestions if s.kind == "record"] == []


def test_suggestion_renders(company_schema):
    operator = RenameRecord("EMP", "WORKER")
    target = operator.apply_schema(company_schema)
    suggestion = ConversionAnalyzer().suggest_renames(
        company_schema, target)[0]
    assert "EMP -> WORKER" in suggestion.render()


def test_identical_schemas_suggest_nothing(company_schema):
    assert ConversionAnalyzer().suggest_renames(
        company_schema, company.figure_42_schema()) == []
