"""The large-inventory synthetic workload (repro.workloads.inventory).

The workload backs the multi-scale parallel benchmarks, so its
headline property is determinism: the same spec must yield a
byte-identical schema, corpus, and conversion outcome on every run, in
every process, at every worker count.  Plus the knobs: corpus size,
schema breadth, and the strategy/pathology mix controls.
"""

import gc

import pytest

from repro.batch import run_batch
from repro.options import ConversionOptions
from repro.parallel import run_parallel_batch
from repro.programs.interpreter import ProgramInputs
from repro.workloads.inventory import (
    CLEAN_KINDS,
    INVENTORY_PATHOLOGY_KINDS,
    STORE_KINDS,
    InventorySpec,
    asset_record,
    asset_set,
    generate_inventory,
    inventory_cascade,
    inventory_database,
    inventory_ddl,
    inventory_schema,
    render_corpus,
)

OPTIONS = ConversionOptions(inputs=ProgramInputs(terminal=["STORE"]),
                            parallel_threshold=2)

SPEC = InventorySpec(programs=40)


def summaries(batch):
    return [report.to_summary() for report in batch.reports]


class TestDeterminism:
    def test_same_seed_byte_identical_corpus(self):
        first = render_corpus(generate_inventory(SPEC))
        second = render_corpus(generate_inventory(InventorySpec(
            programs=40)))
        assert first == second

    def test_different_seed_different_corpus(self):
        assert render_corpus(generate_inventory(SPEC)) != \
            render_corpus(generate_inventory(
                InventorySpec(programs=40, seed=7)))

    def test_ddl_and_database_deterministic(self):
        assert inventory_ddl(SPEC) == inventory_ddl(
            InventorySpec(programs=40))
        first = inventory_database(SPEC)
        second = inventory_database(InventorySpec(programs=40))
        assert first.state_fingerprint() == second.state_fingerprint()

    def test_reports_identical_across_runs_and_jobs_counts(self,
                                                           tmp_path):
        """Same seed -> byte-identical conversion reports, serially,
        twice, and at every --jobs count."""
        gc.collect()
        programs = [item.program for item in generate_inventory(SPEC)]
        serial_path = tmp_path / "serial.json"
        serial = run_batch(inventory_cascade(SPEC), programs,
                           OPTIONS.replace(checkpoint=serial_path))
        again = run_batch(inventory_cascade(SPEC), programs, OPTIONS)
        assert summaries(again) == summaries(serial)
        for jobs in (2, 3):
            path = tmp_path / f"jobs{jobs}.json"
            parallel = run_parallel_batch(
                inventory_cascade(SPEC),
                programs,
                OPTIONS.replace(jobs=jobs, checkpoint=path))
            assert summaries(parallel) == summaries(serial)
            assert path.read_bytes() == serial_path.read_bytes()


class TestKnobs:
    def test_corpus_size_knob(self):
        assert len(generate_inventory(InventorySpec(programs=7))) == 7
        assert len(generate_inventory(InventorySpec(programs=123))) == 123

    def test_schema_breadth_scales_with_satellites(self):
        wide = inventory_schema(InventorySpec(satellite_records=9))
        narrow = inventory_schema(InventorySpec(satellite_records=1))
        assert len(wide.records) == 2 + 9
        assert len(narrow.records) == 2 + 1
        assert asset_record(8) in wide.records
        assert asset_set(8) in wide.sets

    def test_pathology_rate_zero_and_high(self):
        clean = generate_inventory(InventorySpec(programs=60,
                                                 pathology_rate=0.0))
        assert all(item.kind not in INVENTORY_PATHOLOGY_KINDS
                   for item in clean)
        dirty = generate_inventory(InventorySpec(programs=60,
                                                 pathology_rate=1.0))
        assert all(item.kind in INVENTORY_PATHOLOGY_KINDS
                   for item in dirty)

    def test_store_rate_steers_the_mix(self):
        stores = generate_inventory(InventorySpec(
            programs=60, pathology_rate=0.0, store_rate=1.0))
        assert all(item.kind in STORE_KINDS for item in stores)
        none = generate_inventory(InventorySpec(
            programs=60, pathology_rate=0.0, store_rate=0.0))
        assert all(item.kind in CLEAN_KINDS for item in none)

    def test_program_names_unique(self):
        corpus = generate_inventory(InventorySpec(programs=200))
        names = [item.program.name for item in corpus]
        assert len(set(names)) == len(names)


class TestConversion:
    def test_corpus_converts_with_a_strategy_mix(self):
        """The cascade must actually exercise rewrite *and* a fallback
        stage on this corpus -- a mix with no emulation-bound programs
        would make the scaling benchmark unrepresentative."""
        gc.collect()
        spec = InventorySpec(programs=60)
        corpus = generate_inventory(spec)
        batch = run_batch(inventory_cascade(spec),
                          [item.program for item in corpus], OPTIONS)
        strategies = {report.strategy for report in batch.reports
                      if report.strategy}
        assert "rewrite" in strategies
        assert len(strategies) >= 2, (
            "expected at least one non-rewrite conversion, got "
            f"{strategies}")

    @pytest.mark.parametrize("rate", [0.0, 0.75])
    def test_pathology_rates_convert_identically_in_parallel(self, rate,
                                                             tmp_path):
        gc.collect()
        spec = InventorySpec(programs=24, pathology_rate=rate)
        programs = [item.program for item in generate_inventory(spec)]
        serial = run_batch(inventory_cascade(spec), programs, OPTIONS)
        parallel = run_parallel_batch(inventory_cascade(spec), programs,
                                      OPTIONS.replace(jobs=2))
        assert summaries(parallel) == summaries(serial)
