"""Unit tests for restructuring operators: schema mapping, data
translation, change declaration, and Housel inverses."""

import pytest

from repro.errors import (
    InformationLoss,
    NotInvertible,
    RestructureError,
)
from repro.network import DMLSession, NetworkDatabase
from repro.restructure import (
    AddConstraint,
    AddField,
    ChangeMembership,
    ChangeSetOrder,
    Composite,
    DropConstraint,
    DropField,
    InterposeRecord,
    MaterializeField,
    MergeRecords,
    RenameField,
    RenameRecord,
    RenameSet,
    SwapSiblingOrder,
    VirtualizeField,
    extract_snapshot,
    restructure_database,
)
from repro.schema import (
    Insertion,
    NotNull,
    Retention,
    Schema,
)


def emp_names(db):
    return sorted(r["EMP-NAME"] for r in db.store("EMP").all_records())


class TestRenames:
    def test_rename_record(self, company_db, company_schema):
        op = RenameRecord("EMP", "WORKER")
        target_schema, target_db = restructure_database(company_db, op)
        assert "WORKER" in target_schema.records
        assert "EMP" not in target_schema.records
        assert target_schema.set_type("DIV-EMP").member == "WORKER"
        assert target_db.count("WORKER") == company_db.count("EMP")

    def test_rename_record_collision(self, company_schema):
        with pytest.raises(RestructureError):
            RenameRecord("EMP", "DIV").apply_schema(company_schema)

    def test_rename_field_updates_everything(self, company_schema):
        op = RenameField("EMP", "EMP-NAME", "WORKER-NAME")
        target = op.apply_schema(company_schema)
        assert target.record("EMP").has_field("WORKER-NAME")
        assert target.set_type("DIV-EMP").order_keys == ("WORKER-NAME",)
        assert target.record("EMP").calc_keys == ("WORKER-NAME",)

    def test_rename_owner_field_updates_virtual_using(self, company_schema):
        op = RenameField("DIV", "DIV-NAME", "DIVISION")
        target = op.apply_schema(company_schema)
        virtual = target.record("EMP").field("DIV-NAME")
        assert virtual.virtual_using == "DIVISION"

    def test_rename_set_updates_virtual_via(self, company_schema):
        op = RenameSet("DIV-EMP", "STAFF")
        target = op.apply_schema(company_schema)
        assert target.record("EMP").field("DIV-NAME").virtual_via == "STAFF"

    def test_rename_data_translation(self, company_db):
        op = RenameField("EMP", "AGE", "YEARS-OLD")
        _schema, target_db = restructure_database(company_db, op)
        record = target_db.store("EMP").all_records()[0]
        assert "YEARS-OLD" in record.values
        assert "AGE" not in record.values

    def test_rename_inverses(self, company_schema):
        for op in (RenameRecord("EMP", "X"),
                   RenameField("EMP", "AGE", "A"),
                   RenameSet("DIV-EMP", "S")):
            inverse = op.inverse(company_schema)
            round_trip = inverse.apply_schema(op.apply_schema(company_schema))
            assert list(round_trip.records) == list(company_schema.records)
            assert list(round_trip.sets) == list(company_schema.sets)


class TestFieldOps:
    def test_add_field_with_default(self, company_db):
        op = AddField("EMP", "GRADE", "9(1)", default=1)
        target_schema, target_db = restructure_database(company_db, op)
        assert target_schema.record("EMP").has_field("GRADE")
        assert all(r["GRADE"] == 1
                   for r in target_db.store("EMP").all_records())

    def test_drop_field_requires_force(self, company_schema):
        with pytest.raises(InformationLoss):
            DropField("EMP", "AGE").apply_schema(company_schema)

    def test_drop_field_forced(self, company_db):
        op = DropField("EMP", "AGE", force=True)
        _schema, target_db = restructure_database(company_db, op)
        assert "AGE" not in target_db.store("EMP").all_records()[0].values

    def test_drop_calc_key_refused(self, company_schema):
        with pytest.raises(RestructureError):
            DropField("EMP", "EMP-NAME", force=True).apply_schema(
                company_schema)

    def test_drop_order_key_refused(self, small_schema):
        with pytest.raises(RestructureError):
            DropField("ITEM", "SEQ", force=True).apply_schema(small_schema)

    def test_drop_has_no_inverse(self, company_schema):
        with pytest.raises(NotInvertible):
            DropField("EMP", "AGE", force=True).inverse(company_schema)

    def test_add_then_inverse_drops(self, company_schema):
        op = AddField("EMP", "GRADE", "9(1)")
        inverse = op.inverse(company_schema)
        assert isinstance(inverse, DropField)
        round_trip = inverse.apply_schema(op.apply_schema(company_schema))
        assert not round_trip.record("EMP").has_field("GRADE")


class TestSetBehaviour:
    def test_change_order(self, company_db):
        op = ChangeSetOrder("DIV-EMP", ("AGE",), allow_duplicates=True)
        _schema, target_db = restructure_database(company_db, op)
        session = DMLSession(target_db)
        session.find_any("DIV", **{"DIV-NAME": "MACHINERY"})
        ages = []
        record = session.find_first("EMP", "DIV-EMP")
        while record is not None:
            ages.append(record["AGE"])
            record = session.find_next("EMP", "DIV-EMP")
        assert ages == sorted(ages)

    def test_change_order_inverse(self, company_schema):
        op = ChangeSetOrder("DIV-EMP", ("AGE",))
        inverse = op.inverse(company_schema)
        assert inverse.new_keys == ("EMP-NAME",)

    def test_change_membership(self, company_schema):
        op = ChangeMembership("DIV-EMP", Insertion.MANUAL,
                              Retention.MANDATORY)
        target = op.apply_schema(company_schema)
        assert target.set_type("DIV-EMP").insertion is Insertion.MANUAL
        inverse = op.inverse(company_schema)
        back = inverse.apply_schema(target)
        assert back.set_type("DIV-EMP") == company_schema.set_type("DIV-EMP")

    def test_swap_sibling_order(self, school_db):
        schema = school_db.schema
        owned = [s.name for s in schema.sets_owned_by("COURSE")]
        assert owned == ["COURSE-OFF"]
        # COURSE owns one set; exercise via the hierarchy fixture instead
        op = SwapSiblingOrder("COURSE", tuple(owned))
        assert op.apply_schema(schema).sets.keys() == schema.sets.keys()

    def test_swap_rejects_non_permutation(self, school_db):
        with pytest.raises(RestructureError):
            SwapSiblingOrder("COURSE", ("NOPE",)).apply_schema(
                school_db.schema)


class TestVirtualization:
    @pytest.fixture
    def schema(self):
        schema = Schema("V")
        schema.define_record("O", {"K": "X(2)", "CITY": "X(8)"},
                             calc_keys=["K"])
        schema.define_record("M", {"N": "X(4)", "CITY": "X(8)"})
        schema.define_set("ALL-O", "SYSTEM", "O")
        schema.define_set("OM", "O", "M", order_keys=["N"])
        return schema

    @pytest.fixture
    def db(self, schema):
        db = NetworkDatabase(schema)
        session = DMLSession(db)
        session.store("O", {"K": "A", "CITY": "DETROIT"})
        session.store("M", {"N": "M1", "CITY": "DETROIT"})
        session.store("M", {"N": "M2", "CITY": "DETROIT"})
        return db

    def test_virtualize_redundant_field(self, db):
        op = VirtualizeField("M", "CITY", "OM")
        target_schema, target_db = restructure_database(db, op)
        assert target_schema.record("M").field("CITY").is_virtual
        record = target_db.store("M").all_records()[0]
        assert "CITY" not in record.values
        assert target_db.read_field(record, "CITY") == "DETROIT"

    def test_virtualize_refuses_mismatch(self, db):
        session = DMLSession(db)
        session.find_any("O", **{"K": "A"})
        session.find_first("M", "OM")
        session.modify({"CITY": "OTHER"})
        op = VirtualizeField("M", "CITY", "OM")
        with pytest.raises(InformationLoss):
            restructure_database(db, op)

    def test_virtualize_forced_drops_mismatch(self, db):
        session = DMLSession(db)
        session.find_any("O", **{"K": "A"})
        session.find_first("M", "OM")
        session.modify({"CITY": "OTHER"})
        op = VirtualizeField("M", "CITY", "OM", force=True)
        _schema, target_db = restructure_database(db, op)
        record = target_db.store("M").all_records()[0]
        assert target_db.read_field(record, "CITY") == "DETROIT"

    def test_materialize_round_trip(self, db):
        op = VirtualizeField("M", "CITY", "OM")
        target_schema, target_db = restructure_database(db, op)
        back_op = op.inverse(db.schema)
        assert isinstance(back_op, MaterializeField)
        back_schema, back_db = restructure_database(target_db, back_op)
        record = back_db.store("M").all_records()[0]
        assert record["CITY"] == "DETROIT"
        assert not back_schema.record("M").field("CITY").is_virtual


class TestInterposeAndMerge:
    def test_schema_matches_figure_44(self, company_schema,
                                      interpose_operator):
        target = interpose_operator.apply_schema(company_schema)
        assert list(target.sets) == ["ALL-DIV", "DIV-DEPT", "DEPT-EMP"]
        assert target.set_type("DIV-DEPT").owner == "DIV"
        assert target.set_type("DIV-DEPT").member == "DEPT"
        assert target.set_type("DEPT-EMP").owner == "DEPT"
        assert target.record("DEPT").calc_keys == ("DEPT-NAME",)
        assert target.record("EMP").field("DEPT-NAME").is_virtual

    def test_virtual_chain_rewired(self, company_schema,
                                   interpose_operator):
        target = interpose_operator.apply_schema(company_schema)
        # EMP.DIV-NAME now chains: EMP -> DEPT -> DIV
        emp_virtual = target.record("EMP").field("DIV-NAME")
        assert emp_virtual.virtual_via == "DEPT-EMP"
        dept_virtual = target.record("DEPT").field("DIV-NAME")
        assert dept_virtual.virtual_via == "DIV-DEPT"

    def test_group_count(self, company_db, interpose_operator):
        _schema, target_db = restructure_database(company_db,
                                                  interpose_operator)
        # one DEPT per (division, department name) pair
        expected = {
            (target_db.read_field(r, "DIV-NAME"), r["DEPT-NAME"])
            for r in target_db.store("DEPT").all_records()
        }
        assert len(expected) == target_db.count("DEPT")
        target_db.verify_consistent()

    def test_data_preserved(self, company_db, interpose_operator):
        _schema, target_db = restructure_database(company_db,
                                                  interpose_operator)
        assert emp_names(target_db) == emp_names(company_db)
        for record in target_db.store("EMP").all_records():
            assert target_db.read_field(record, "DEPT-NAME") is not None

    def test_inverse_round_trip(self, company_db, company_schema,
                                interpose_operator):
        target_schema, target_db = restructure_database(company_db,
                                                        interpose_operator)
        back = interpose_operator.inverse(company_schema)
        assert isinstance(back, MergeRecords)
        back_schema, back_db = restructure_database(target_db, back)
        source_rows = sorted(
            (r["EMP-NAME"], r["DEPT-NAME"], r["AGE"])
            for r in company_db.store("EMP").all_records()
        )
        back_rows = sorted(
            (r["EMP-NAME"], r["DEPT-NAME"], r["AGE"])
            for r in back_db.store("EMP").all_records()
        )
        assert back_rows == source_rows
        assert list(back_schema.sets) == list(company_schema.sets)

    def test_interpose_on_system_set_refused(self, company_schema):
        op = InterposeRecord("ALL-DIV", "X", ("DIV-NAME",), "A", "B")
        with pytest.raises(RestructureError):
            op.apply_schema(company_schema)

    def test_interpose_virtual_key_refused(self, company_schema):
        op = InterposeRecord("DIV-EMP", "X", ("DIV-NAME",), "A", "B")
        with pytest.raises(RestructureError):
            op.apply_schema(company_schema)

    def test_merge_refuses_dropping_stored_fields(self, company_schema,
                                                  interpose_operator):
        target = interpose_operator.apply_schema(company_schema)
        bad = MergeRecords("DEPT", "DIV-DEPT", "DEPT-EMP", "DIV-EMP", ())
        with pytest.raises(InformationLoss):
            bad.apply_schema(target)


class TestConstraintOps:
    def test_add_and_drop(self, company_schema):
        constraint = NotNull("EMP-AGE", "EMP", "AGE")
        add = AddConstraint(constraint)
        target = add.apply_schema(company_schema)
        assert constraint in target.constraints
        drop = add.inverse(company_schema)
        assert isinstance(drop, DropConstraint)
        back = drop.apply_schema(target)
        assert constraint not in back.constraints

    def test_drop_unknown_refused(self, company_schema):
        with pytest.raises(RestructureError):
            DropConstraint("NOPE").apply_schema(company_schema)


class TestComposite:
    def test_sequence_applies_in_order(self, company_db, company_schema):
        op = Composite((
            RenameField("EMP", "AGE", "YEARS"),
            AddField("EMP", "GRADE", "9(1)", default=2),
        ))
        target_schema, target_db = restructure_database(company_db, op)
        record = target_db.store("EMP").all_records()[0]
        assert "YEARS" in record.values
        assert record["GRADE"] == 2
        assert len(op.changes(company_schema)) == 2

    def test_composite_inverse_reverses(self, company_db, company_schema):
        op = Composite((
            RenameField("EMP", "AGE", "YEARS"),
            RenameRecord("EMP", "WORKER"),
        ))
        target_schema, target_db = restructure_database(company_db, op)
        inverse = op.inverse(company_schema)
        back_schema, back_db = restructure_database(target_db, inverse)
        assert "EMP" in back_schema.records
        assert back_schema.record("EMP").has_field("AGE")
        assert back_db.count("EMP") == company_db.count("EMP")


def test_snapshot_round_trip_preserves_links(company_db):
    snapshot = extract_snapshot(company_db)
    from repro.restructure import load_network

    clone = load_network(company_db.schema, snapshot)
    for record in clone.store("EMP").all_records():
        assert clone.owner_record("DIV-EMP", record.rid) is not None
    assert clone.count("EMP") == company_db.count("EMP")


class TestConstraintRemapping:
    """Constraints naming a restructured set are restated or refused
    (the Section 3.1 'open problem', handled explicitly)."""

    def test_existence_decomposes_under_interpose(self, company_schema,
                                                  interpose_operator):
        from repro.schema import ExistenceConstraint

        schema = company_schema.copy()
        schema.add_constraint(ExistenceConstraint("EMP-IN-DIV",
                                                  "DIV-EMP"))
        target = interpose_operator.apply_schema(schema)
        target.validate()
        names = {(c.name, c.set_name) for c in target.constraints
                 if isinstance(c, ExistenceConstraint)}
        assert ("EMP-IN-DIV", "DEPT-EMP") in names
        assert ("EMP-IN-DIV-GROUP", "DIV-DEPT") in names

    def test_remapped_existence_enforced_on_data(self, company_schema,
                                                 interpose_operator):
        from repro.schema import ExistenceConstraint
        from repro.workloads import company

        schema = company_schema.copy()
        schema.add_constraint(ExistenceConstraint("EMP-IN-DIV",
                                                  "DIV-EMP"))
        db = company.populate(NetworkDatabase(schema), seed=5)
        _ts, target_db = restructure_database(db, interpose_operator)
        target_db.verify_consistent()

    def test_cardinality_on_interposed_set_refused(self, company_schema,
                                                   interpose_operator):
        from repro.errors import RestructureError
        from repro.schema import CardinalityLimit

        schema = company_schema.copy()
        schema.add_constraint(CardinalityLimit("MAX-STAFF", "DIV-EMP",
                                               50))
        with pytest.raises(RestructureError):
            interpose_operator.apply_schema(schema)

    def test_merge_restores_existence(self, company_schema,
                                      interpose_operator):
        from repro.schema import ExistenceConstraint

        schema = company_schema.copy()
        schema.add_constraint(ExistenceConstraint("EMP-IN-DIV",
                                                  "DIV-EMP"))
        target = interpose_operator.apply_schema(schema)
        merge = interpose_operator.inverse(schema)
        back = merge.apply_schema(target)
        back.validate()
        existences = [c for c in back.constraints
                      if isinstance(c, ExistenceConstraint)]
        assert [(c.name, c.set_name) for c in existences] == \
            [("EMP-IN-DIV", "DIV-EMP")]

    def test_inline_drops_link_constraints(self, company_schema):
        from repro.restructure import ExtractFields
        from repro.schema import ExistenceConstraint

        extract = ExtractFields("EMP", ("AGE",), "EMP-DETAIL",
                                "EMP-DATA")
        target = extract.apply_schema(company_schema)
        target.add_constraint(ExistenceConstraint("LINKED", "EMP-DATA"))
        back = extract.inverse(company_schema).apply_schema(target)
        back.validate()
        assert all(c.name != "LINKED" for c in back.constraints)
