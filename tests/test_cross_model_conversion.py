"""Cross-model conversion under a simultaneous schema change.

Section 4.1's strongest claim: "Since the conversion takes place at a
level of abstraction that is removed from an actual DBMS language,
conversion from one DBMS to another to account for some schema changes
is possible."  These tests convert a CODASYL program for the
Figure 4.2 -> 4.4 restructuring AND retarget it to the relational
model in the same pipeline run.
"""

import pytest

from repro.core import ConversionSupervisor
from repro.options import ConversionOptions
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import run_program
from repro.restructure import (
    extract_snapshot,
    load_relational,
    restructure_database,
)
from repro.strategies import EmulationStrategy
from repro.workloads import company


def report_program():
    return b.program("REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
        b.display("END"),
    ])


def hire_program():
    return b.program("HIRE", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.store("EMP", **{"EMP-NAME": "XM-HIRE", "DEPT-NAME": "SALES",
                          "AGE": 23, "DIV-NAME": "MACHINERY"}),
        b.display("HIRED"),
    ])


@pytest.fixture
def pair():
    """(source network db, target relational db) under the Fig 4.4 op."""
    operator = company.figure_44_operator()
    source_db = company.company_db(seed=1979)
    target_schema, network_target = restructure_database(source_db,
                                                         operator)
    relational_target = load_relational(target_schema,
                                        extract_snapshot(network_target))
    return source_db, relational_target


class TestNetworkToRelational:
    def convert(self, program):
        supervisor = ConversionSupervisor(company.figure_42_schema(),
                                          company.figure_44_operator())
        report = supervisor.convert_program(
            program,
            options=ConversionOptions(target_model="relational"))
        assert report.target_program is not None, report.failure
        assert report.target_program.model == "relational"
        return report

    def test_report_converts_and_matches(self, pair):
        source_db, relational_target = pair
        report = self.convert(report_program())
        source_trace = run_program(report_program(), source_db,
                                   consistent=False)
        target_trace = run_program(report.target_program,
                                   relational_target, consistent=False)
        assert sorted(target_trace.terminal_lines()) == \
            sorted(source_trace.terminal_lines())

    def test_relational_scan_orders_within_groups(self, pair):
        """The generated queries ORDER BY the set keys, so within-group
        order matches the network target exactly."""
        _source, relational_target = pair
        report = self.convert(report_program())
        operator = company.figure_44_operator()
        _ts, network_target = restructure_database(
            company.company_db(seed=1979), operator)
        network_report = ConversionSupervisor(
            company.figure_42_schema(), operator
        ).convert_program(report_program())
        network_trace = run_program(network_report.target_program,
                                    network_target, consistent=False)
        relational_trace = run_program(report.target_program,
                                       relational_target,
                                       consistent=False)
        assert relational_trace == network_trace

    def test_store_with_group_creation(self, pair):
        _source, relational_target = pair
        report = self.convert(hire_program())
        before = relational_target.count("EMP")
        trace = run_program(report.target_program, relational_target,
                            consistent=False)
        assert trace.terminal_lines() == ["HIRED"]
        assert relational_target.count("EMP") == before + 1
        rows = [r for r in relational_target.relation("EMP").rows()
                if r["EMP-NAME"] == "XM-HIRE"]
        assert rows[0]["DEPT-NAME"] == "SALES"

    def test_generated_queries_are_parameterized(self):
        report = self.convert(report_program())
        queries = [s for s in ast.walk_program(report.target_program)
                   if isinstance(s, ast.RelQuery)]
        assert queries
        scans = [q for q in queries if "ORDER BY" in q.sequel]
        assert scans  # ordered scans for determinism


def test_emulation_composes_with_renames():
    """Emulation handles a rename composed with the interposition."""
    from repro.core.analyzer_db import ConversionAnalyzer
    from repro.restructure import Composite, RenameField

    schema = company.figure_42_schema()
    operator = Composite((
        company.figure_44_operator(),
        RenameField("EMP", "AGE", "YEARS"),
    ))
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    source_db = company.company_db(seed=1979)
    _ts, target_db = restructure_database(
        company.company_db(seed=1979), operator)
    source_trace = run_program(report_program(), source_db,
                               consistent=False)
    strategy = EmulationStrategy(target_db, catalog)
    run = strategy.run(report_program())
    assert run.trace == source_trace
