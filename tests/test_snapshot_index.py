"""Snapshot adjacency indexes: correctness against the linear-scan
reference, invalidation under mutation, copy-on-write isolation, and
the O(n) access-path guarantee of the bulk hierarchical load.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.perf.harness import build_snapshot, perf_schema, size_split
from repro.restructure import (
    AddField,
    Composite,
    RenameField,
    extract_snapshot,
    load_hierarchical,
)
from repro.restructure.translator import DataSnapshot
from repro.workloads import company


def naive_owner_of(snapshot, set_name, member_id):
    """The seed's linear scan, kept as the reference semantics."""
    for owner_id, linked_member in snapshot.links.get(set_name, []):
        if linked_member == member_id:
            return owner_id
    return None


def naive_members_of(snapshot, set_name, owner_id):
    return [
        member_id
        for linked_owner, member_id in snapshot.links.get(set_name, [])
        if linked_owner == owner_id
    ]


# ---------------------------------------------------------------------------
# Randomized agreement with the reference
# ---------------------------------------------------------------------------


@st.composite
def snapshots(draw):
    """A random snapshot: 2 record types, 1-3 sets, arbitrary links
    (including system-owned pairs and duplicate member entries)."""
    n_owner = draw(st.integers(min_value=1, max_value=6))
    n_member = draw(st.integers(min_value=1, max_value=8))
    snapshot = DataSnapshot()
    snapshot.rows["O"] = [{"K": index} for index in range(n_owner)]
    snapshot.rows["M"] = [{"V": index} for index in range(n_member)]
    set_names = draw(st.lists(st.sampled_from(["S1", "S2", "S3"]),
                              min_size=1, max_size=3, unique=True))
    owner_ids = st.one_of(
        st.none(),
        st.integers(0, n_owner - 1).map(lambda i: ("O", i)),
    )
    member_ids = st.integers(0, n_member - 1).map(lambda i: ("M", i))
    for set_name in set_names:
        pairs = draw(st.lists(st.tuples(owner_ids, member_ids),
                              max_size=12))
        snapshot.links[set_name] = pairs
    return snapshot


def assert_agrees(snapshot):
    for set_name in list(snapshot.links):
        for index in range(len(snapshot.rows["M"])):
            member_id = ("M", index)
            assert snapshot.owner_of(set_name, member_id) == \
                naive_owner_of(snapshot, set_name, member_id)
        owners = [None] + [("O", i) for i in range(len(snapshot.rows["O"]))]
        for owner_id in owners:
            assert snapshot.members_of(set_name, owner_id) == \
                naive_members_of(snapshot, set_name, owner_id)
    # Unknown sets answer empty, matching the reference.
    assert snapshot.owner_of("NO-SUCH-SET", ("M", 0)) is None
    assert snapshot.members_of("NO-SUCH-SET", None) == []


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_indexed_lookups_agree_with_linear_reference(snapshot):
    assert_agrees(snapshot)


@given(snapshots(), st.data())
@settings(max_examples=60, deadline=None)
def test_indexes_invalidate_under_mutation(snapshot, data):
    assert_agrees(snapshot)  # force index builds before mutating
    set_name = data.draw(st.sampled_from(sorted(snapshot.links)))
    action = data.draw(st.sampled_from(
        ["replace", "pop", "append_in_place", "rename"]))
    if action == "replace":
        pairs = snapshot.links[set_name]
        snapshot.links[set_name] = list(reversed(pairs))
    elif action == "pop":
        snapshot.links.pop(set_name)
    elif action == "append_in_place":
        pairs = snapshot.links_for_write(set_name)
        pairs.append((None, ("M", 0)))
    elif action == "rename":
        snapshot.rename_links_key(set_name, "RENAMED")
    assert_agrees(snapshot)


@given(snapshots())
@settings(max_examples=40, deadline=None)
def test_share_isolates_source_from_derived_writes(snapshot):
    baseline = snapshot.copy()
    derived = snapshot.share()
    for row in derived.rows_for_write("M"):
        row["V"] = "MUTATED"
    for set_name in list(derived.links):
        derived.links[set_name] = []
    assert snapshot.rows == baseline.rows
    assert snapshot.links == baseline.links
    assert_agrees(snapshot)


# ---------------------------------------------------------------------------
# Operator chains over a real workload
# ---------------------------------------------------------------------------


def test_operator_chain_preserves_source_snapshot():
    db = company.company_db(divisions=2, employees_per_division=8)
    snapshot = extract_snapshot(db)
    baseline = snapshot.copy()
    operator = Composite((
        company.figure_44_operator(),
        RenameField("EMP", "AGE", "EMP-AGE"),
        AddField("EMP", "TAG", "X(1)", default="T"),
    ))
    target_schema = operator.apply_schema(db.schema)
    translated = operator.translate(snapshot, db.schema, target_schema)
    # Structural sharing must not leak writes back into the source.
    assert snapshot.rows == baseline.rows
    assert snapshot.links == baseline.links
    assert "DEPT" in translated.rows
    assert all("DEPT-NAME" not in row for row in translated.rows["EMP"])


def test_interpose_translate_matches_pre_index_seed_output():
    db = company.company_db(divisions=3, employees_per_division=10)
    snapshot = extract_snapshot(db)
    operator = company.figure_44_operator()
    target_schema = operator.apply_schema(db.schema)
    indexed = operator.translate(snapshot.copy(), db.schema, target_schema)
    linear_source = snapshot.copy()
    linear_source.use_indexes = False
    linear = operator.translate(linear_source, db.schema, target_schema)
    assert indexed.rows == linear.rows
    assert indexed.links == linear.links


# ---------------------------------------------------------------------------
# O(n) access-path guarantee (ISSUE 1 acceptance criterion)
# ---------------------------------------------------------------------------


def test_hierarchical_load_10k_is_linear_in_link_lookups():
    """Loading a 10k-row, 3-level snapshot must do one index probe per
    non-root row and zero linear link scans: one O(links) index build
    per parent set, O(1) per lookup afterwards."""
    snapshot = build_snapshot(10_000)
    schema = perf_schema()
    db = load_hierarchical(schema, snapshot)
    split = size_split(10_000)
    non_root_rows = split["DEPT"] + split["EMP"]
    assert db.count("EMP") == split["EMP"]
    assert snapshot.stats.link_scans == 0
    assert snapshot.stats.index_probes == non_root_rows
    # One owner-index build per parent set (DIV-DEPT and DEPT-EMP).
    assert snapshot.stats.index_builds == 2


def test_linear_fallback_counts_scans_not_probes():
    snapshot = build_snapshot(300)
    snapshot.use_indexes = False
    schema = perf_schema()
    load_hierarchical(schema, snapshot)
    assert snapshot.stats.index_probes == 0
    split = size_split(300)
    assert snapshot.stats.link_scans == split["DEPT"] + split["EMP"]
