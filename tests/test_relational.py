"""Unit tests for the relational model: relations, algebra, SEQUEL."""

import pytest

from repro.errors import QueryError, UniquenessViolation
from repro.relational import (
    Relation,
    RelationalDatabase,
    difference,
    evaluate,
    join,
    parse_sequel,
    project,
    rename,
    select,
    sort,
    union,
)
from repro.schema import Schema, UniqueKey


@pytest.fixture
def emp_relation():
    return Relation("EMP", ["E#", "ENAME", "AGE"], [
        {"E#": "E1", "ENAME": "JONES", "AGE": 40},
        {"E#": "E2", "ENAME": "BAKER", "AGE": 28},
        {"E#": "E3", "ENAME": "ADAMS", "AGE": 35},
    ])


class TestRelation:
    def test_append_completes_missing_columns(self):
        relation = Relation("R", ["A", "B"])
        row = relation.append({"A": 1})
        assert row == {"A": 1, "B": None}

    def test_append_rejects_unknown_columns(self):
        relation = Relation("R", ["A"])
        with pytest.raises(QueryError):
            relation.append({"Z": 1})

    def test_update_and_remove(self, emp_relation):
        changed = emp_relation.update_where(
            lambda r: r["AGE"] > 30, {"AGE": 99})
        assert changed == 2
        removed = emp_relation.remove_where(lambda r: r["AGE"] == 99)
        assert removed == 2
        assert len(emp_relation) == 1

    def test_column_values(self, emp_relation):
        assert emp_relation.column_values("E#") == ["E1", "E2", "E3"]
        with pytest.raises(QueryError):
            emp_relation.column_values("NOPE")


class TestAlgebra:
    def test_select(self, emp_relation):
        result = select(emp_relation, lambda r: r["AGE"] > 30)
        assert [r["ENAME"] for r in result.rows()] == ["JONES", "ADAMS"]

    def test_project_dedups(self):
        relation = Relation("R", ["A", "B"], [
            {"A": 1, "B": "x"}, {"A": 1, "B": "y"},
        ])
        assert len(project(relation, ["A"])) == 1
        assert len(project(relation, ["A"], dedup=False)) == 2

    def test_project_unknown_column(self, emp_relation):
        with pytest.raises(QueryError):
            project(emp_relation, ["NOPE"])

    def test_join(self, emp_relation):
        dept = Relation("ED", ["E#", "D#"], [
            {"E#": "E1", "D#": "D1"},
            {"E#": "E3", "D#": "D2"},
        ])
        result = join(emp_relation, dept, [("E#", "E#")])
        assert len(result) == 2
        # colliding column prefixed
        assert "ED.E#" in result.columns

    def test_union_and_difference(self):
        left = Relation("L", ["A"], [{"A": 1}, {"A": 2}])
        right = Relation("R", ["A"], [{"A": 2}, {"A": 3}])
        assert sorted(r["A"] for r in union(left, right).rows()) == [1, 2, 3]
        assert [r["A"] for r in difference(left, right).rows()] == [1]

    def test_union_schema_mismatch(self):
        with pytest.raises(QueryError):
            union(Relation("L", ["A"]), Relation("R", ["B"]))

    def test_rename(self, emp_relation):
        result = rename(emp_relation, {"ENAME": "NAME"})
        assert "NAME" in result.columns
        assert result.rows()[0]["NAME"] == "JONES"

    def test_sort_counts_operation(self, emp_relation):
        result = sort(emp_relation, ["AGE"])
        assert [r["AGE"] for r in result.rows()] == [28, 35, 40]
        assert emp_relation.metrics.sort_operations == 1


class TestSequelParser:
    def test_simple(self):
        query = parse_sequel("SELECT A, B FROM T WHERE A = 1 AND B > 'x'")
        assert query.columns == ("A", "B")
        assert query.table == "T"
        assert len(query.where) == 2

    def test_star(self):
        query = parse_sequel("SELECT * FROM T")
        assert query.columns == ()

    def test_nested_in_without_parens(self):
        query = parse_sequel(
            "SELECT ENAME FROM EMP WHERE E# IN "
            "SELECT E# FROM ED WHERE D# = 'D2'")
        inner = query.where[0].query
        assert inner.table == "ED"

    def test_nested_in_with_parens(self):
        query = parse_sequel(
            "SELECT A FROM T WHERE A IN (SELECT A FROM U)")
        assert query.where[0].query.table == "U"

    def test_order_by(self):
        query = parse_sequel("SELECT A FROM T ORDER BY A, B")
        assert query.order_by == ("A", "B")

    def test_render_round_trips(self):
        text = ("SELECT ENAME FROM EMP WHERE E# IN "
                "(SELECT E# FROM ED WHERE D# = 'D2' AND Y = 3)")
        assert parse_sequel(parse_sequel(text).render()).render() == \
            parse_sequel(text).render()

    @pytest.mark.parametrize("bad", [
        "SELECT FROM T",
        "SELECT A T",
        "SELECT A FROM T WHERE",
        "SELECT A FROM T WHERE A ==",
        "SELECT A FROM T extra",
    ])
    def test_errors(self, bad):
        with pytest.raises(QueryError):
            parse_sequel(bad)


class TestRelationalDatabase:
    @pytest.fixture
    def db(self):
        schema = Schema("T")
        schema.define_record("EMP", {"E#": "X(4)", "ENAME": "X(10)",
                                     "AGE": "9(2)"}, calc_keys=["E#"])
        schema.add_constraint(UniqueKey("K", "EMP", ("E#",)))
        db = RelationalDatabase(schema)
        db.insert("EMP", {"E#": "E1", "ENAME": "JONES", "AGE": 40})
        db.insert("EMP", {"E#": "E2", "ENAME": "BAKER", "AGE": 28})
        return db

    def test_unique_key_enforced_on_insert(self, db):
        with pytest.raises(UniquenessViolation):
            db.insert("EMP", {"E#": "E1", "ENAME": "DUP"})

    def test_evaluate_query(self, db):
        result = evaluate(parse_sequel(
            "SELECT ENAME FROM EMP WHERE AGE > 30"), db)
        assert result.rows() == [{"ENAME": "JONES"}]

    def test_evaluate_with_order_by(self, db):
        result = evaluate(parse_sequel(
            "SELECT ENAME FROM EMP ORDER BY AGE"), db)
        assert [r["ENAME"] for r in result.rows()] == ["BAKER", "JONES"]

    def test_unknown_column_in_where(self, db):
        with pytest.raises(QueryError):
            evaluate(parse_sequel("SELECT ENAME FROM EMP WHERE NOPE = 1"),
                     db)

    def test_delete_and_update(self, db):
        assert db.update_where("EMP", lambda r: r["E#"] == "E2",
                               {"AGE": 29}) == 1
        assert db.delete_where("EMP", lambda r: r["AGE"] == 29) == 1
        assert db.count("EMP") == 1

    def test_fk_interpretation(self, florida_db):
        from repro.restructure import extract_snapshot, load_relational

        rdb = load_relational(florida_db.schema,
                              extract_snapshot(florida_db))
        # association rows carry E# and D# foreign keys (Figure 3.1a)
        row = rdb.relation("EMP-DEPT").rows()[0]
        assert "E#" in row and "D#" in row
        # owner_record follows the FK
        from repro.engine.storage import Record

        record = Record(1, "EMP-DEPT", row)
        owner = rdb.owner_record("D-ED", record.rid)
        assert owner is not None
        assert owner.type_name == "DEPT"


def test_paper_sequel_example_a(florida_db):
    """Section 4.1 template (A), verbatim."""
    from repro.restructure import extract_snapshot, load_relational
    from repro.workloads.florida import d2_three_years_sequel

    rdb = load_relational(florida_db.schema, extract_snapshot(florida_db))
    result = evaluate(parse_sequel(d2_three_years_sequel()), rdb)
    expected = set()
    for row in rdb.relation("EMP-DEPT").rows():
        if row["D#"] == "D2" and row["YEAR-OF-SERVICE"] == 3:
            for emp in rdb.relation("EMP").rows():
                if emp["E#"] == row["E#"]:
                    expected.add(emp["ENAME"])
    assert {r["ENAME"] for r in result.rows()} == expected
    assert expected, "the seeded instance must exercise the query"
