"""Property-based tests (hypothesis) for FIND ANY access paths.

``DMLSession.find_any`` has two paths: a CALC-index probe when the
record's full CALC key is supplied, and an exhaustive record-store scan
otherwise.  Both must locate the same record even when the
qualification mixes stored and VIRTUAL fields (the shape conversion
leaves behind), and the index path must never fall back to a
``store.scan()`` -- checked through the ``index_scans`` counter, which
counts one per scan.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.network import DMLSession, NetworkDatabase
from repro.workloads import company

DIVISIONS = ("MACHINERY", "CHEMICAL")
DEPARTMENTS = ("SALES", "ENG", "ADMIN")

employee_names = st.text(alphabet=string.ascii_uppercase,
                         min_size=1, max_size=8)

#: (name, dept, age, division) rows with unique names, so "the" match
#: is well-defined regardless of access path.
employee_rows = st.lists(
    st.tuples(employee_names,
              st.sampled_from(DEPARTMENTS),
              st.integers(min_value=18, max_value=65),
              st.sampled_from(DIVISIONS)),
    min_size=1, max_size=12,
    unique_by=lambda row: row[0],
)


def _build_db(rows) -> tuple[NetworkDatabase, DMLSession]:
    """A Figure 4.2 company instance with the generated employees;
    DIV-NAME is a VIRTUAL field on EMP (via DIV-EMP)."""
    db = NetworkDatabase(company.figure_42_schema())
    session = DMLSession(db)
    for index, division in enumerate(DIVISIONS):
        session.store("DIV", {"DIV-NAME": division,
                              "DIV-LOC": f"LOC-{index}"})
    for name, dept, age, division in rows:
        session.store("EMP", {"EMP-NAME": name, "DEPT-NAME": dept,
                              "AGE": age, "DIV-NAME": division})
    return db, session


def _scan_match(db: NetworkDatabase, values: dict) -> int | None:
    """The exhaustive-scan answer, computed without the DML layer."""
    for record in db.store("EMP").all_records():
        if all(db.read_field(record, field) == value
               for field, value in values.items()):
            return record.rid
    return None


@settings(max_examples=50, deadline=None)
@given(rows=employee_rows, data=st.data())
def test_calc_path_matches_scan_under_virtual_fields(rows, data):
    db, session = _build_db(rows)
    # Probe either a present employee or a certainly-absent name, with
    # a random subset of extra (possibly VIRTUAL) qualifying fields.
    name, dept, _age, division = data.draw(
        st.sampled_from(rows + [("ABSENT-0", "SALES", 30, "MACHINERY")]))
    values = {"EMP-NAME": name}
    if data.draw(st.booleans()):
        values["DIV-NAME"] = data.draw(st.sampled_from(DIVISIONS))
    if data.draw(st.booleans()):
        values["DEPT-NAME"] = data.draw(st.sampled_from(DEPARTMENTS))

    scans_before = db.metrics.index_scans
    found = session.find_any("EMP", **values)
    # The full CALC key (EMP-NAME) was supplied: the probe goes through
    # the CALC index and never scans the record store.
    assert db.metrics.index_scans == scans_before, (
        "CALC-index find_any fell back to a store scan"
    )
    expected_rid = _scan_match(db, values)
    assert (found.rid if found else None) == expected_rid

    del values["EMP-NAME"]
    if values:
        # Without the CALC key the fallback is an exhaustive scan --
        # same answer, and exactly one store scan.
        values.setdefault("DEPT-NAME", dept)
        scans_before = db.metrics.index_scans
        fallback = session.find_any("EMP", **values)
        assert db.metrics.index_scans == scans_before + 1
        assert (fallback.rid if fallback else None) == \
            _scan_match(db, values)
