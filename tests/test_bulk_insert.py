"""Bulk loading APIs (RecordStore.insert_many and friends).

Every bulk path must be observably equivalent to its incremental
counterpart -- same rids, same set/twin ordering, same constraint
errors -- with only the bookkeeping amortized.
"""

from __future__ import annotations

import pytest

from repro.engine.metrics import Metrics
from repro.engine.storage import RecordStore
from repro.errors import (
    IntegrityError,
    RecordNotFound,
    SchemaError,
    UniquenessViolation,
)
from repro.hierarchical.database import HierarchicalDatabase
from repro.network.database import NetworkDatabase
from repro.relational.database import RelationalDatabase
from repro.schema import Schema, UniqueKey


def chain_schema(*, order_keys=(), allow_duplicates=True) -> Schema:
    schema = Schema("BULK")
    schema.define_record("DEPT", {"DEPT-NAME": "X(10)"},
                         calc_keys=["DEPT-NAME"])
    schema.define_record("EMP", {"EMP-NAME": "X(10)", "AGE": "9(2)"},
                         calc_keys=["EMP-NAME"])
    schema.define_set("DEPT-EMP", "DEPT", "EMP",
                      order_keys=list(order_keys),
                      allow_duplicates=allow_duplicates)
    schema.validate()
    return schema


EMPLOYEES = [
    {"EMP-NAME": f"E{index}", "AGE": age}
    for index, age in enumerate([40, 25, 40, 31, 25, 58])
]


# ---------------------------------------------------------------------------
# RecordStore
# ---------------------------------------------------------------------------


def test_record_store_insert_many_matches_sequential():
    sequential = RecordStore("EMP", Metrics())
    bulk = RecordStore("EMP", Metrics())
    expected = [sequential.insert(row) for row in EMPLOYEES]
    actual = bulk.insert_many(EMPLOYEES)
    assert [r.rid for r in actual] == [r.rid for r in expected]
    assert [r.values for r in actual] == [r.values for r in expected]
    assert bulk.metrics.records_written == len(EMPLOYEES)
    # Later singleton inserts continue the same rid sequence.
    assert bulk.insert({"EMP-NAME": "LAST"}).rid == \
        sequential.insert({"EMP-NAME": "LAST"}).rid


# ---------------------------------------------------------------------------
# Network engine
# ---------------------------------------------------------------------------


def test_network_insert_records_matches_sequential_and_feeds_calc():
    schema = chain_schema()
    sequential = NetworkDatabase(schema)
    bulk = NetworkDatabase(schema)
    for row in EMPLOYEES:
        sequential.insert_record("EMP", row)
    records = bulk.insert_records("EMP", EMPLOYEES)
    assert [(r.rid, r.values) for r in records] == \
        [(r.rid, r.values) for r in sequential.instances("EMP")]
    # CALC index is maintained for the whole batch.
    index = bulk.calc_index("EMP")
    assert index.lookup(("E3",)) == [records[3].rid]


def test_network_connect_many_reproduces_incremental_set_order():
    schema = chain_schema(order_keys=["AGE"])
    sequential = NetworkDatabase(schema)
    bulk = NetworkDatabase(schema)
    rids = {}
    for key, db in (("seq", sequential), ("bulk", bulk)):
        owner = db.insert_record("DEPT", {"DEPT-NAME": "D1"})
        members = db.insert_records("EMP", EMPLOYEES)
        rids[key] = (owner.rid, [r.rid for r in members])
    owner_rid, member_rids = rids["seq"]
    for rid in member_rids:
        sequential.connect("DEPT-EMP", owner_rid, rid)
    bulk.connect_many("DEPT-EMP", *rids["bulk"])
    # Sorted by AGE; equal ages keep arrival order (insert-after-equals).
    expected = sequential.set_store("DEPT-EMP").members(owner_rid)
    assert expected == [member_rids[i] for i in (1, 4, 3, 0, 2, 5)]
    assert bulk.set_store("DEPT-EMP").members(rids["bulk"][0]) == expected


def test_network_connect_many_rejects_duplicate_keys_and_reconnect():
    schema = chain_schema(order_keys=["AGE"], allow_duplicates=False)
    db = NetworkDatabase(schema)
    owner = db.insert_record("DEPT", {"DEPT-NAME": "D1"})
    rids = [r.rid for r in db.insert_records("EMP", EMPLOYEES)]
    with pytest.raises(UniquenessViolation):
        db.connect_many("DEPT-EMP", owner.rid, [rids[0], rids[2]])  # AGE=40 twice
    db.connect_many("DEPT-EMP", owner.rid, [rids[0], rids[1]])
    with pytest.raises(IntegrityError):
        db.connect_many("DEPT-EMP", owner.rid, [rids[1]])  # already connected


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


def test_relational_insert_many_matches_sequential():
    schema = chain_schema()
    sequential = RelationalDatabase(schema)
    bulk = RelationalDatabase(schema)
    for row in EMPLOYEES:
        sequential.insert("EMP", row)
    bulk.insert_many("EMP", EMPLOYEES)
    assert bulk.relation("EMP").rows() == sequential.relation("EMP").rows()


def test_relational_insert_many_enforces_unique_keys():
    schema = chain_schema()
    schema.add_constraint(UniqueKey("U-EMP", "EMP", ("EMP-NAME",)))
    db = RelationalDatabase(schema)
    db.insert("EMP", {"EMP-NAME": "E0", "AGE": 40})
    # Conflict against an existing row...
    with pytest.raises(UniquenessViolation):
        db.insert_many("EMP", [{"EMP-NAME": "E0", "AGE": 9}])
    # ...and within the batch itself.
    with pytest.raises(UniquenessViolation):
        db.insert_many("EMP", [
            {"EMP-NAME": "E1", "AGE": 1},
            {"EMP-NAME": "E1", "AGE": 2},
        ])
    db.insert_many("EMP", [{"EMP-NAME": "E1", "AGE": 1}],
                   enforce_keys=False)
    assert len(db.relation("EMP")) == 2


# ---------------------------------------------------------------------------
# Hierarchical engine
# ---------------------------------------------------------------------------


def test_hierarchical_insert_segments_matches_sequential_twin_order():
    schema = chain_schema(order_keys=["AGE"])
    sequential = HierarchicalDatabase(schema)
    bulk = HierarchicalDatabase(schema)
    roots = {}
    for key, db in (("seq", sequential), ("bulk", bulk)):
        roots[key] = db.insert_segment("DEPT", {"DEPT-NAME": "D1"}).rid
    seq_rids = [
        sequential.insert_segment("EMP", row,
                                  parent=("DEPT", roots["seq"])).rid
        for row in EMPLOYEES
    ]
    bulk.insert_segments(
        "EMP", [(row, ("DEPT", roots["bulk"])) for row in EMPLOYEES])
    expected = sequential.children("DEPT", roots["seq"], "EMP")
    assert expected == [seq_rids[i] for i in (1, 4, 3, 0, 2, 5)]
    assert bulk.children("DEPT", roots["bulk"], "EMP") == expected
    assert bulk.preorder() == sequential.preorder()


def test_hierarchical_insert_segments_validates_before_storing():
    schema = chain_schema()
    db = HierarchicalDatabase(schema)
    root = db.insert_segment("DEPT", {"DEPT-NAME": "D1"}).rid
    with pytest.raises(SchemaError):
        db.insert_segments("EMP", [
            ({"EMP-NAME": "OK", "AGE": 1}, ("DEPT", root)),
            ({"EMP-NAME": "BAD", "AGE": 2}, None),  # missing parent
        ])
    with pytest.raises(RecordNotFound):
        db.insert_segments("EMP", [
            ({"EMP-NAME": "ORPHAN", "AGE": 3}, ("DEPT", 99)),
        ])
    with pytest.raises(SchemaError):
        db.insert_segments("DEPT", [({"DEPT-NAME": "D2"}, ("DEPT", root))])
    # All-or-nothing: the failing batches stored no segments.
    assert db.count("EMP") == 0
