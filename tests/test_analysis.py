"""Unit tests for dataflow, pathology detection, and procedural
constraint detection (Sections 3.2 and 5.3)."""

from repro.analysis import (
    constant_value,
    detect_order_dependence,
    detect_pathologies,
    detect_process_first,
    detect_procedural_constraints,
    detect_status_code_dependence,
    detect_verb_variability,
    input_tainted_variables,
    is_runtime_constant,
)
from repro.programs import ast
from repro.programs import builder as b
from repro.schema import CardinalityLimit, ExistenceConstraint
from repro.workloads.corpus import CorpusSpec, generate_corpus


class TestDataflow:
    def test_single_toplevel_literal_is_constant(self):
        program = b.program("T", "network", "S", [
            b.assign("X", 5),
            b.display(b.v("X")),
        ])
        known, value = constant_value(program, "X")
        assert known and value == 5

    def test_reassignment_defeats_constancy(self):
        program = b.program("T", "network", "S", [
            b.assign("X", 5),
            b.assign("X", 6),
        ])
        assert constant_value(program, "X") == (False, None)

    def test_loop_assignment_defeats_constancy(self):
        program = b.program("T", "network", "S", [
            b.while_(b.eq(1, 1), [b.assign("X", 5)]),
        ])
        assert constant_value(program, "X") == (False, None)

    def test_terminal_input_defeats_constancy(self):
        program = b.program("T", "network", "S", [
            b.accept("X"),
        ])
        assert constant_value(program, "X") == (False, None)

    def test_expression_constancy(self):
        program = b.program("T", "network", "S", [
            b.assign("X", 5),
            b.accept("Y"),
        ])
        assert is_runtime_constant(program, b.add(b.v("X"), 1))
        assert not is_runtime_constant(program, b.v("Y"))
        assert is_runtime_constant(program, b.c("STORE"))

    def test_taint_propagates_through_assignment(self):
        program = b.program("T", "network", "S", [
            b.accept("RAW"),
            b.assign("DERIVED", b.add(b.v("RAW"), 1)),
            b.assign("CLEAN", 5),
        ])
        tainted = input_tainted_variables(program)
        assert "RAW" in tainted
        assert "DERIVED" in tainted
        assert "CLEAN" not in tainted


class TestVerbVariability:
    def test_variable_verb_flagged(self):
        program = b.program("T", "network", "S", [
            b.accept("V"),
            b.generic_call(b.v("V"), "EMP"),
        ])
        findings = detect_verb_variability(program)
        assert len(findings) == 1
        assert findings[0].blocking

    def test_constant_verb_clean(self):
        program = b.program("T", "network", "S", [
            b.generic_call("STORE", "EMP"),
        ])
        assert detect_verb_variability(program) == []

    def test_provably_constant_variable_clean(self):
        program = b.program("T", "network", "S", [
            b.assign("V", "STORE"),
            b.generic_call(b.v("V"), "EMP"),
        ])
        assert detect_verb_variability(program) == []


class TestOrderDependence:
    def test_output_in_scan_flagged(self):
        program = b.program("T", "network", "S", [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ])
        findings = detect_order_dependence(program)
        assert findings
        assert "DIV-EMP" in findings[0].detail
        assert not findings[0].blocking

    def test_accumulation_without_output_clean(self):
        program = b.program("T", "network", "S", [
            b.assign("N", 0),
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.assign("N", b.add(b.v("N"), 1)),
            ]),
            b.display(b.v("N")),
        ])
        assert detect_order_dependence(program) == []


class TestProcessFirst:
    def test_find_first_without_loop_flagged(self):
        program = b.program("T", "network", "S", [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.process_first("EMP", "DIV-EMP", [b.display("X")]),
        ])
        findings = detect_process_first(program)
        assert len(findings) == 1

    def test_scan_template_clean(self):
        program = b.program("T", "network", "S", [
            b.find_any("DIV", **{"DIV-NAME": "X"}),
            *b.scan_set("EMP", "DIV-EMP", [b.display("X")]),
        ])
        assert detect_process_first(program) == []


class TestStatusCode:
    def test_specific_code_flagged(self):
        program = b.program("T", "network", "S", [
            b.find_first("EMP", "DIV-EMP"),
            b.if_(ast.status_is("0307"), [b.display("END")]),
        ])
        findings = detect_status_code_dependence(program)
        assert len(findings) == 1
        assert "0307" in findings[0].detail

    def test_ok_code_is_benign(self):
        program = b.program("T", "network", "S", [
            b.find_first("EMP", "DIV-EMP"),
            b.while_(ast.status_ok(), [b.find_next("EMP", "DIV-EMP")]),
        ])
        assert detect_status_code_dependence(program) == []


class TestCorpusGroundTruth:
    def test_detectors_match_labels(self):
        """E6 in miniature: precision/recall on a labelled corpus."""
        corpus = generate_corpus(CorpusSpec(seed=3, size=60,
                                            pathology_rate=0.4))
        for item in corpus:
            findings = detect_pathologies(item.program)
            detected = {f.kind for f in findings}
            assert item.pathologies <= detected, (
                f"{item.program.name}: expected {item.pathologies}, "
                f"got {detected}"
            )

    def test_no_blocking_findings_in_clean_programs(self):
        corpus = generate_corpus(CorpusSpec(seed=5, size=40,
                                            pathology_rate=0.0))
        for item in corpus:
            findings = detect_pathologies(item.program)
            assert not any(f.blocking for f in findings)


class TestProceduralConstraints:
    def test_existence_pattern_detected(self, company_schema):
        program = b.program("T", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            b.if_(ast.status_ok(), [
                b.store("EMP", **{"EMP-NAME": "X", "AGE": 1,
                                  "DEPT-NAME": "SALES"}),
            ]),
        ])
        detections = detect_procedural_constraints(program, company_schema)
        assert any(
            isinstance(d.constraint, ExistenceConstraint)
            and d.constraint.set_name == "DIV-EMP"
            for d in detections
        )

    def test_negated_guard_also_detected(self, company_schema):
        program = b.program("T", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            b.if_(ast.Bin("<>", ast.Var("DB-STATUS"), ast.Const("0000")),
                  [b.display("NO DIV")],
                  [b.store("EMP", **{"EMP-NAME": "X", "AGE": 1,
                                     "DEPT-NAME": "SALES"})]),
        ])
        detections = detect_procedural_constraints(program, company_schema)
        assert detections

    def test_unguarded_store_not_flagged(self, company_schema):
        program = b.program("T", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            b.store("EMP", **{"EMP-NAME": "X", "AGE": 1,
                              "DEPT-NAME": "SALES"}),
        ])
        assert detect_procedural_constraints(program, company_schema) == []

    def test_cardinality_pattern_detected(self, school_db):
        """The paper's twice-per-year rule, enforced procedurally."""
        schema = school_db.schema
        program = b.program("T", "network", "SCHOOL", [
            b.find_any("COURSE", **{"CNO": "C000"}),
            b.assign("COUNT", 0),
            *b.scan_set("OFFERING", "COURSE-OFF", [
                b.assign("COUNT", b.add(b.v("COUNT"), 1)),
            ]),
            b.if_(b.lt(b.v("COUNT"), 2), [
                b.store("OFFERING", **{"SECTION": 9, "ENROLLMENT": 0,
                                       "CNO": "C000", "S": "F75"}),
            ]),
        ])
        detections = detect_procedural_constraints(program, schema)
        limits = [d for d in detections
                  if isinstance(d.constraint, CardinalityLimit)]
        assert len(limits) == 1
        assert limits[0].constraint.set_name == "COURSE-OFF"
        assert limits[0].constraint.limit == 2


class TestRelationalOrderDependence:
    def test_unordered_for_each_with_output_flagged(self):
        program = b.program("T", "relational", "S", [
            b.query("SELECT ENAME FROM EMP", "$R"),
            b.for_each_row("ROW", "$R", [
                b.display(b.v("ROW.ENAME")),
            ]),
        ])
        findings = detect_order_dependence(program)
        assert findings
        assert "unordered query result" in findings[0].detail

    def test_ordered_query_clean(self):
        program = b.program("T", "relational", "S", [
            b.query("SELECT ENAME FROM EMP ORDER BY ENAME", "$R"),
            b.for_each_row("ROW", "$R", [
                b.display(b.v("ROW.ENAME")),
            ]),
        ])
        assert detect_order_dependence(program) == []

    def test_accumulation_clean(self):
        program = b.program("T", "relational", "S", [
            b.query("SELECT AGE FROM EMP", "$R"),
            b.assign("N", 0),
            b.for_each_row("ROW", "$R", [
                b.assign("N", b.add(b.v("N"), 1)),
            ]),
            b.display(b.v("N")),
        ])
        assert detect_order_dependence(program) == []
