"""Soak test: corpus x operators x instances, no undeclared divergence.

Every converted program must be strictly I/O-equivalent, or diverge
only in presentation order while carrying a conversion warning that
says so -- the discipline behind the Section 5.2 levels.
"""

import pytest

from repro.core import ConversionSupervisor
from repro.core.equivalence import check_equivalence
from repro.programs.interpreter import ProgramInputs
from repro.restructure import Composite, RenameField, restructure_database
from repro.workloads import company
from repro.workloads.corpus import CorpusSpec, generate_corpus


@pytest.mark.parametrize("operator_name,operator", [
    ("interpose", company.figure_44_operator()),
    ("interpose+rename", Composite((
        company.figure_44_operator(),
        RenameField("EMP", "AGE", "YEARS"),
    ))),
])
def test_no_undeclared_divergence(operator_name, operator):
    schema = company.figure_42_schema()
    corpus = generate_corpus(CorpusSpec(seed=11, size=30,
                                        pathology_rate=0.3))
    pins = {item.program.name: {0: "STORE"} for item in corpus
            if "verb-variability" in item.pathologies}
    supervisor = ConversionSupervisor(schema, operator, verb_pins=pins)
    undeclared = []
    for item in corpus:
        report = supervisor.convert_program(item.program)
        if report.target_program is None:
            continue
        source_db = company.company_db(seed=1)
        _ts, target_db = restructure_database(
            company.company_db(seed=1), operator)
        inputs = ProgramInputs(terminal=list(item.terminal_inputs))
        result = check_equivalence(item.program, source_db,
                                   report.target_program, target_db,
                                   inputs=inputs, consistent=False)
        if result.equivalent:
            continue
        order_only = sorted(result.source_trace.terminal_lines()) == \
            sorted(result.target_trace.terminal_lines())
        if not (order_only and report.warnings):
            undeclared.append((item.program.name, result.divergence))
    assert undeclared == []


class TestProcessFirstStrict:
    """The min-tracking rewrite preserves 'process first' exactly when
    the old set's order key is the member's CALC key."""

    def make_program(self):
        from repro.programs import builder as b

        return b.program("SENIOR", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.process_first("EMP", "DIV-EMP", [
                b.display("SENIOR:", b.field("EMP", "EMP-NAME")),
            ]),
        ])

    def test_strictly_equivalent(self):
        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        supervisor = ConversionSupervisor(schema, operator)
        report = supervisor.convert_program(self.make_program())
        assert report.target_program is not None
        assert any("preserved exactly" in note for note in report.notes)
        assert not report.warnings
        for seed in (1, 42, 99):
            source_db = company.company_db(seed=seed)
            _ts, target_db = restructure_database(
                company.company_db(seed=seed), operator)
            result = check_equivalence(self.make_program(), source_db,
                                       report.target_program, target_db,
                                       consistent=False)
            assert result.equivalent, (seed, result.divergence)

    def test_falls_back_when_not_locatable(self):
        """Multi-key ordering: the warned first-of-first-group form."""
        from repro.restructure import ChangeSetOrder, Composite as Comp

        schema = company.figure_42_schema()
        operator = Comp((
            ChangeSetOrder("DIV-EMP", ("AGE", "EMP-NAME"),
                           allow_duplicates=True),
            company.figure_44_operator(),
        ))
        supervisor = ConversionSupervisor(schema, operator)
        report = supervisor.convert_program(self.make_program())
        assert report.target_program is not None
        assert any("may be a different record" in warning
                   for warning in report.warnings)

    def test_empty_occurrence_handled(self):
        from repro.network import DMLSession, NetworkDatabase
        from repro.programs.interpreter import run_program

        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        supervisor = ConversionSupervisor(schema, operator)
        report = supervisor.convert_program(self.make_program())
        source_db = NetworkDatabase(schema)
        DMLSession(source_db).store("DIV", {"DIV-NAME": "MACHINERY"})
        _ts, target_db = restructure_database(
            NetworkDatabase(schema), operator)
        DMLSession(target_db).store("DIV", {"DIV-NAME": "MACHINERY"})
        source_trace = run_program(self.make_program(), source_db,
                                   consistent=False)
        target_trace = run_program(report.target_program, target_db,
                                   consistent=False)
        assert source_trace == target_trace == \
            run_program(self.make_program(), source_db,
                        consistent=False)
