"""Unit tests for declarative constraints against live databases."""

import pytest

from repro.errors import SchemaError
from repro.network import DMLSession, NetworkDatabase
from repro.schema import (
    CardinalityLimit,
    DomainConstraint,
    ExistenceConstraint,
    NotNull,
    UniqueKey,
)
from repro.schema.constraints import check_all


@pytest.fixture
def db(small_schema):
    small_schema = small_schema.copy()
    return NetworkDatabase(small_schema)


def _store(db, record, values):
    session = DMLSession(db)
    return session.store(record, values)


class TestUniqueKey:
    def test_no_violation_when_distinct(self, db):
        db.schema.add_constraint(UniqueKey("U", "OWNER", ("KEY",)))
        _store(db, "OWNER", {"KEY": "A", "NAME": "X"})
        _store(db, "OWNER", {"KEY": "B", "NAME": "Y"})
        assert db.check_constraints() == []

    def test_duplicate_detected(self, db):
        db.schema.add_constraint(UniqueKey("U", "OWNER", ("NAME",)))
        _store(db, "OWNER", {"KEY": "A", "NAME": "SAME"})
        _store(db, "OWNER", {"KEY": "B", "NAME": "SAME"})
        violations = db.check_constraints()
        assert len(violations) == 1
        assert "duplicate key" in violations[0].message

    def test_null_keys_exempt(self, db):
        db.schema.add_constraint(UniqueKey("U", "OWNER", ("NAME",)))
        _store(db, "OWNER", {"KEY": "A"})
        _store(db, "OWNER", {"KEY": "B"})
        assert db.check_constraints() == []

    def test_validates_against_schema(self, db):
        bad = UniqueKey("U", "OWNER", ("NOPE",))
        with pytest.raises(Exception):
            bad.validate_against(db.schema)


class TestNotNull:
    def test_detects_null(self, db):
        db.schema.add_constraint(NotNull("N", "OWNER", "NAME"))
        _store(db, "OWNER", {"KEY": "A"})
        violations = db.check_constraints()
        assert len(violations) == 1
        assert "null" in violations[0].message

    def test_passes_when_set(self, db):
        db.schema.add_constraint(NotNull("N", "OWNER", "NAME"))
        _store(db, "OWNER", {"KEY": "A", "NAME": "X"})
        assert db.check_constraints() == []


class TestExistence:
    def test_unconnected_member_flagged(self, db):
        db.schema.add_constraint(ExistenceConstraint("E", "OWNS"))
        # Store an item with no owner currency: stays unconnected
        # because OWNS is OPTIONAL.
        session = DMLSession(db)
        session.store("ITEM", {"SEQ": 1, "LABEL": "ORPHAN"})
        violations = db.check_constraints()
        assert any("no owner" in v.message for v in violations)

    def test_connected_member_passes(self, db):
        db.schema.add_constraint(ExistenceConstraint("E", "OWNS"))
        session = DMLSession(db)
        session.store("OWNER", {"KEY": "A"})
        session.store("ITEM", {"SEQ": 1})
        assert db.check_constraints() == []

    def test_system_set_rejected(self, db):
        constraint = ExistenceConstraint("E", "ALL-OWNER")
        with pytest.raises(SchemaError):
            constraint.validate_against(db.schema)


class TestCardinalityLimit:
    def test_over_limit_flagged(self, db):
        db.schema.add_constraint(CardinalityLimit("L", "OWNS", 2))
        session = DMLSession(db)
        session.store("OWNER", {"KEY": "A"})
        for seq in (1, 2, 3):
            session.store("ITEM", {"SEQ": seq})
        violations = db.check_constraints()
        assert len(violations) == 1
        assert "limit 2" in violations[0].message

    def test_per_group_counting(self, db):
        db.schema.add_constraint(
            CardinalityLimit("L", "OWNS", 1, ("LABEL",)))
        session = DMLSession(db)
        session.store("OWNER", {"KEY": "A"})
        session.store("ITEM", {"SEQ": 1, "LABEL": "X"})
        session.store("ITEM", {"SEQ": 2, "LABEL": "Y"})
        assert db.check_constraints() == []
        session.store("ITEM", {"SEQ": 3, "LABEL": "X"})
        assert len(db.check_constraints()) == 1

    def test_per_owner_occurrence(self, db):
        db.schema.add_constraint(CardinalityLimit("L", "OWNS", 1))
        session = DMLSession(db)
        session.store("OWNER", {"KEY": "A"})
        session.store("ITEM", {"SEQ": 1})
        session.store("OWNER", {"KEY": "B"})
        session.store("ITEM", {"SEQ": 1})
        # One item per owner: fine even though two items total.
        assert db.check_constraints() == []


class TestDomain:
    def test_range(self, db):
        db.schema.add_constraint(
            DomainConstraint("D", "ITEM", "SEQ", low=1, high=10))
        session = DMLSession(db)
        session.store("OWNER", {"KEY": "A"})
        session.store("ITEM", {"SEQ": 5})
        assert db.check_constraints() == []
        session.store("ITEM", {"SEQ": 11})
        assert len(db.check_constraints()) == 1

    def test_allowed_values(self, db):
        db.schema.add_constraint(
            DomainConstraint("D", "OWNER", "NAME", allowed=("X", "Y")))
        _store(db, "OWNER", {"KEY": "A", "NAME": "Z"})
        assert len(db.check_constraints()) == 1

    def test_null_passes(self, db):
        db.schema.add_constraint(
            DomainConstraint("D", "OWNER", "NAME", allowed=("X",)))
        _store(db, "OWNER", {"KEY": "A"})
        assert db.check_constraints() == []


def test_check_all_covers_every_declared_constraint(school_db):
    # the populated school database is consistent by construction
    assert check_all(school_db) == []


def test_school_cardinality_enforced_via_virtual_year(school_db):
    """The paper's 'twice per school year' rule, caught declaratively."""
    session = DMLSession(school_db)
    session.find_any("COURSE", **{"CNO": "C000"})
    # Offer C000 twice more in the same year: must exceed the limit.
    semester = next(iter(school_db.instances("SEMESTER")))
    year_semesters = [
        r for r in school_db.instances("SEMESTER")
        if r["YEAR"] == semester["YEAR"]
    ]
    for index, sem in enumerate((year_semesters * 3)[:3]):
        session.find_any("COURSE", **{"CNO": "C000"})
        session.store("OFFERING", {
            "SECTION": 90 + index, "ENROLLMENT": 1,
            "CNO": "C000", "S": sem["S"],
        })
    violations = school_db.check_constraints()
    assert any(v.constraint.name == "TWICE-PER-YEAR" for v in violations)
