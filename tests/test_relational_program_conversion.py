"""Conversion of *relational* programs (AQuery rewrite rules executed
end to end, not just at text level)."""

import pytest

from repro.core import ConversionSupervisor, check_equivalence
from repro.options import ConversionOptions
from repro.programs import builder as b
from repro.restructure import (
    Composite,
    RenameField,
    RenameRecord,
    restructure_database,
)
from repro.workloads import florida


def d2_program():
    return b.program("D2-REPORT", "relational", "FLORIDA", [
        b.query(
            "SELECT ENAME FROM EMP WHERE E# IN "
            "SELECT E# FROM EMP-DEPT WHERE D# = 'D2' "
            "AND YEAR-OF-SERVICE > ?THRESHOLD",
            "$ROWS", ["THRESHOLD"],
        ),
        b.for_each_row("ROW", "$ROWS", [
            b.display(b.v("ROW.ENAME")),
        ]),
        b.display("DONE"),
    ])


def crud_program():
    return b.program("CRUD", "relational", "FLORIDA", [
        b.rel_insert("EMP", **{"E#": "E999", "ENAME": "TEMP", "AGE": 30}),
        b.rel_update("EMP", {"E#": "E999"}, {"AGE": 31}),
        b.query("SELECT AGE FROM EMP WHERE E# = 'E999'", "$R"),
        b.for_each_row("ROW", "$R", [b.display(b.v("ROW.AGE"))]),
        b.rel_delete("EMP", **{"E#": "E999"}),
        b.display(b.v("DB-STATUS")),
    ])


def make_dbs(operator, seed=11):
    source_network = florida.florida_network_db(seed=seed)
    from repro.restructure import extract_snapshot, load_relational

    source = load_relational(source_network.schema,
                             extract_snapshot(source_network))
    target_network = florida.florida_network_db(seed=seed)
    target_schema, translated = restructure_database(target_network,
                                                     operator)
    target = load_relational(target_schema,
                             extract_snapshot(translated))
    return source, target


@pytest.mark.parametrize("factory", [d2_program, crud_program])
def test_rename_record_conversion(factory):
    schema = florida.florida_schema()
    operator = RenameRecord("EMP", "WORKER")
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(
        factory(), options=ConversionOptions(target_model="relational"))
    assert report.target_program is not None, report.failure
    source, target = make_dbs(operator)
    from repro.programs.interpreter import ProgramInputs

    inputs = ProgramInputs(terminal=[])
    interpreter_env = {"THRESHOLD": 10}
    # bind the ?THRESHOLD parameter by prepending an assignment
    source_program = factory().with_statements(
        (b.assign("THRESHOLD", 10),) + factory().statements)
    target_program = report.target_program.with_statements(
        (b.assign("THRESHOLD", 10),) + report.target_program.statements)
    result = check_equivalence(source_program, source, target_program,
                               target, inputs=inputs, consistent=False)
    assert result.equivalent, result.divergence
    del interpreter_env


def test_rename_field_rewrites_query_text():
    schema = florida.florida_schema()
    operator = Composite((
        RenameField("EMP", "ENAME", "FULL-NAME"),
        RenameField("EMP-DEPT", "YEAR-OF-SERVICE", "TENURE"),
    ))
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(
        d2_program(),
        options=ConversionOptions(target_model="relational"))
    assert report.target_program is not None, report.failure
    from repro.programs import ast

    queries = [s for s in ast.walk_program(report.target_program)
               if isinstance(s, ast.RelQuery)]
    assert "FULL-NAME" in queries[0].sequel
    assert "TENURE" in queries[0].sequel
    assert "ENAME" not in queries[0].sequel


def test_rename_field_conversion_runs():
    schema = florida.florida_schema()
    operator = RenameField("EMP", "ENAME", "FULL-NAME")
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(
        d2_program(),
        options=ConversionOptions(target_model="relational"))
    source, target = make_dbs(operator)
    source_program = d2_program().with_statements(
        (b.assign("THRESHOLD", 5),) + d2_program().statements)
    target_program = report.target_program.with_statements(
        (b.assign("THRESHOLD", 5),) + report.target_program.statements)
    from repro.programs.interpreter import run_program

    source_trace = run_program(source_program, source, consistent=False)
    target_trace = run_program(target_program, target, consistent=False)
    # ROW.ENAME becomes ROW.FULL-NAME in the converted loop body
    assert source_trace == target_trace
