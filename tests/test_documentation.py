"""Documentation gate: every public item carries a doc comment."""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__ for module in _public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_has_a_docstring():
    undocumented = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) and obj.__module__ == module.__name__:
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_every_public_function_has_a_docstring():
    undocumented = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj) and \
                    obj.__module__ == module.__name__:
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_design_and_experiments_exist():
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        text = (root / name).read_text()
        assert len(text) > 1000, f"{name} looks incomplete"
