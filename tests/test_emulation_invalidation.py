"""Targeted emulation-cache invalidation.

The emulator caches materialized occurrences of restructured-away sets
so FIND NEXT chains stay linear.  Mutations used to clear the whole
cache; now invalidation is per-(set, owner) and keyed off the verb:
STORE/ERASE only of affected record types, MODIFY only on a
reconnection or an old-order-key update.  These tests pin down both
directions -- chains survive unrelated mutations, and every mutation
that *can* change an emulated occurrence still drops it.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer_db import ConversionAnalyzer
from repro.restructure import restructure_database
from repro.strategies.emulation import EmulatedDMLSession
from repro.workloads import company


@pytest.fixture
def session():
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    source_db = company.company_db(seed=1979, employees_per_division=6)
    _target_schema, target_db = restructure_database(source_db, operator)
    return EmulatedDMLSession(target_db, catalog)


def _start_chain(session) -> None:
    """Position on MACHINERY and cache the emulated DIV-EMP occurrence."""
    assert session.find_any("DIV", **{"DIV-NAME": "MACHINERY"}) is not None
    assert session.find_first("EMP", "DIV-EMP") is not None
    assert "DIV-EMP" in session._occurrences


def _emp_name_in(session, division: str) -> str:
    db = session.db
    for record in db.store("EMP").all_records():
        if db.read_field(record, "DIV-NAME") == division:
            return record.values["EMP-NAME"]
    raise AssertionError(f"no EMP in {division}")


def test_chain_survives_unrelated_record_modify(session):
    _start_chain(session)
    # Modifying the *owner* (DIV is not a member of any emulated set)
    # leaves the cached occurrence in place, and the chain continues
    # without re-materializing.
    assert session.find_any("DIV", **{"DIV-NAME": "MACHINERY"}) is not None
    session.modify({"DIV-LOC": "ELSEWHERE"})
    assert "DIV-EMP" in session._occurrences
    mappings_before = session.db.metrics.emulation_mappings
    assert session.find_next("EMP", "DIV-EMP") is not None
    assert session.db.metrics.emulation_mappings == mappings_before


def test_chain_survives_non_key_member_modify(session):
    _start_chain(session)
    # AGE is neither virtual nor an old order key of DIV-EMP
    # (SET KEYS ARE (EMP-NAME)): the membership and the emulated sort
    # order are both unchanged.
    session.modify({"AGE": 64})
    assert "DIV-EMP" in session._occurrences


def test_order_key_modify_invalidates(session):
    _start_chain(session)
    session.modify({"EMP-NAME": "AARDVARK"})
    assert "DIV-EMP" not in session._occurrences


def test_reconnection_invalidates(session):
    _start_chain(session)
    # DEPT-NAME became VIRTUAL under the interposed DEPT: updating it
    # reconnects the member, which can change the occurrence.
    session.modify({"DEPT-NAME": "STAFF"})
    assert "DIV-EMP" not in session._occurrences


def test_store_of_member_invalidates_but_owner_store_does_not(session):
    _start_chain(session)
    session.store("DIV", {"DIV-NAME": "TEXTILE", "DIV-LOC": "MACON"})
    assert "DIV-EMP" in session._occurrences
    assert session.find_any("DIV", **{"DIV-NAME": "MACHINERY"}) is not None
    session.store("EMP", {"EMP-NAME": "NEWHIRE", "DEPT-NAME": "SALES",
                          "AGE": 30, "DIV-NAME": "MACHINERY"})
    assert "DIV-EMP" not in session._occurrences


def test_erase_outside_occurrence_keeps_cache(session):
    other = _emp_name_in(session, "CHEMICAL")
    _start_chain(session)
    assert session.find_any("EMP", **{"EMP-NAME": other}) is not None
    session.erase()
    # The erased EMP belongs to CHEMICAL's occurrence, not the cached
    # MACHINERY one.
    assert "DIV-EMP" in session._occurrences


def test_erase_of_cached_member_invalidates(session):
    doomed = _emp_name_in(session, "MACHINERY")
    _start_chain(session)
    assert session.find_any("EMP", **{"EMP-NAME": doomed}) is not None
    session.erase()
    assert "DIV-EMP" not in session._occurrences


def test_find_any_identity_mapping_is_not_counted(session):
    # Nothing about EMP is renamed by the interposition: FIND ANY
    # delegates straight to the native path and must not charge an
    # emulation mapping (it used to double count here).
    name = _emp_name_in(session, "MACHINERY")
    before = session.db.metrics.emulation_mappings
    assert session.find_any("EMP", **{"EMP-NAME": name}) is not None
    assert session.db.metrics.emulation_mappings == before
