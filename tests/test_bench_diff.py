"""Tests for the benchmark diff gate (:mod:`repro.perf.diff`) and the
atomic JSON writer the reports go through.

The CI contract under test: config/shape changes are errors (exit 1),
timing movement only warns (exit 0), and report enrichment is a note.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.jsonio import write_json_atomic
from repro.perf.diff import diff_reports, render_markdown

BASE_REPORT = {
    "suite": "translate",
    "seed": 1234,
    "sizes": [
        {
            "rows": 500,
            "extract_seconds": 0.05,
            "translate_seconds": 0.08,
            "load_seconds": 0.04,
            "traces_match": True,
        },
    ],
    "trace_summary": [{"name": "bench.extract", "calls": 1}],
}


def variant(**size_overrides):
    report = json.loads(json.dumps(BASE_REPORT))
    report["sizes"][0].update(size_overrides)
    return report


# ---------------------------------------------------------------------------
# Diff semantics
# ---------------------------------------------------------------------------


def test_identical_reports_are_clean():
    diff = diff_reports(BASE_REPORT, json.loads(json.dumps(BASE_REPORT)))
    assert diff.ok
    assert diff.errors == [] and diff.warnings == [] and diff.notes == []
    assert all(status == "ok" for *_, status in diff.rows)


def test_config_change_is_an_error():
    diff = diff_reports(BASE_REPORT, variant(rows=800))
    assert not diff.ok
    assert any("configuration changed" in error for error in diff.errors)


def test_top_level_config_change_is_an_error():
    changed = json.loads(json.dumps(BASE_REPORT))
    changed["seed"] = 99
    diff = diff_reports(BASE_REPORT, changed)
    assert any("seed" in error for error in diff.errors)


def test_removed_key_is_an_error_added_key_is_a_note():
    removed = json.loads(json.dumps(BASE_REPORT))
    del removed["sizes"][0]["load_seconds"]
    diff = diff_reports(BASE_REPORT, removed)
    assert any("missing from the new" in error for error in diff.errors)

    added = variant(store_seconds=0.01)
    diff = diff_reports(BASE_REPORT, added)
    assert diff.ok
    assert any("new measurement" in note for note in diff.notes)


def test_list_length_change_is_an_error():
    longer = json.loads(json.dumps(BASE_REPORT))
    longer["sizes"].append(dict(longer["sizes"][0]))
    diff = diff_reports(BASE_REPORT, longer)
    assert any("list length changed" in error for error in diff.errors)


def test_type_change_is_an_error():
    diff = diff_reports(BASE_REPORT, variant(traces_match="yes"))
    assert not diff.ok


def test_timing_regression_warns_but_stays_ok():
    diff = diff_reports(BASE_REPORT, variant(translate_seconds=0.2))
    assert diff.ok
    assert any("translate_seconds" in warning for warning in diff.warnings)
    assert any(status == "slower" for *_, status in diff.rows)


def test_timing_below_floor_never_warns():
    tiny_old = variant(translate_seconds=0.001)
    tiny_new = variant(translate_seconds=0.004)  # 4x, but sub-floor
    diff = diff_reports(tiny_old, tiny_new)
    assert diff.warnings == []


def test_timing_improvement_is_not_flagged():
    diff = diff_reports(BASE_REPORT, variant(translate_seconds=0.01))
    assert diff.ok and diff.warnings == []


def test_speedup_and_cost_thresholds():
    old = {"suite": "programs", "speedup": 2.0, "overhead_vs_native": 100}
    slower = {"suite": "programs", "speedup": 1.0,
              "overhead_vs_native": 100}
    diff = diff_reports(old, slower)
    assert diff.ok and any("speedup fell" in w for w in diff.warnings)

    costlier = {"suite": "programs", "speedup": 2.0,
                "overhead_vs_native": 150}
    diff = diff_reports(old, costlier)
    assert diff.ok and any("cost grew" in w for w in diff.warnings)


def test_bool_regression_warns_and_recovery_notes():
    diff = diff_reports(BASE_REPORT, variant(traces_match=False))
    assert diff.ok
    assert any("True -> False" in warning for warning in diff.warnings)

    recovered = variant(traces_match=False)
    diff = diff_reports(recovered, BASE_REPORT)
    assert diff.warnings == [] and any("now True" in n for n in diff.notes)


def test_trace_summary_subtree_is_skipped():
    changed = json.loads(json.dumps(BASE_REPORT))
    changed["trace_summary"] = [{"name": "totally", "different": "shape"},
                                {"and": "longer"}]
    diff = diff_reports(BASE_REPORT, changed)
    assert diff.ok and diff.warnings == [] and diff.notes == []


def test_plain_counters_carry_no_verdict():
    old = {"suite": "programs", "metrics": {"engine.records_read": 100}}
    new = {"suite": "programs", "metrics": {"engine.records_read": 900}}
    diff = diff_reports(old, new)
    assert diff.ok and diff.warnings == []


def test_bench_format_mismatch_is_a_note_not_an_error():
    """A report-shape version bump makes old and new structurally
    incomparable by design: the diff must say so and pass (exit 0), so
    the first CI run after a harness migration does not fail against
    the stale artifact."""
    old = json.loads(json.dumps(BASE_REPORT))  # format 1 (implicit)
    new = json.loads(json.dumps(BASE_REPORT))
    new["bench_format"] = 2
    new["sizes"] = []  # wildly different shape: must not be compared
    diff = diff_reports(old, new)
    assert diff.ok
    assert diff.errors == [] and diff.warnings == [] and diff.rows == []
    assert any("bench_format changed 1 -> 2" in note
               for note in diff.notes)


def test_same_bench_format_compares_fully():
    old = json.loads(json.dumps(BASE_REPORT))
    old["bench_format"] = 2
    new = variant(translate_seconds=0.2)
    new["bench_format"] = 2
    diff = diff_reports(old, new)
    assert diff.ok
    assert any("translate_seconds" in warning for warning in diff.warnings)


def test_chunk_size_is_a_config_key():
    old = {"suite": "programs", "chunk_size": 64}
    new = {"suite": "programs", "chunk_size": 16}
    diff = diff_reports(old, new)
    assert not diff.ok
    assert any("chunk_size" in error for error in diff.errors)


def test_render_markdown_sections():
    diff = diff_reports(BASE_REPORT, variant(rows=800,
                                             translate_seconds=0.2))
    rendered = render_markdown(diff)
    assert "### Benchmark diff" in rendered
    assert "**Errors (reports not comparable):**" in rendered
    assert "**Regressions (warn-only):**" in rendered
    assert "| measurement |" in rendered


def test_render_markdown_empty():
    empty = diff_reports({"suite": "x"}, {"suite": "x"})
    assert "No measurements compared." in render_markdown(empty)


# ---------------------------------------------------------------------------
# CLI and the atomic writer
# ---------------------------------------------------------------------------


def test_cli_diff_exit_codes(tmp_path, capsys):
    old = tmp_path / "old.json"
    same = tmp_path / "same.json"
    warn = tmp_path / "warn.json"
    bad = tmp_path / "bad.json"
    write_json_atomic(BASE_REPORT, old)
    write_json_atomic(BASE_REPORT, same)
    write_json_atomic(variant(translate_seconds=0.5), warn)
    write_json_atomic(variant(rows=999), bad)

    assert main(["bench", "--diff", str(old), str(same)]) == 0
    assert main(["bench", "--diff", str(old), str(warn)]) == 0
    out = capsys.readouterr().out
    assert "Regressions (warn-only)" in out
    assert main(["bench", "--diff", str(old), str(bad)]) == 1
    assert "configuration changed" in capsys.readouterr().out


def test_write_json_atomic_creates_parents_and_trailing_newline(tmp_path):
    target = tmp_path / "deep" / "nested" / "report.json"
    written = write_json_atomic({"a": 1}, target)
    assert written == target
    text = target.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == {"a": 1}
    # No leftover temp file from the replace dance.
    assert list(target.parent.iterdir()) == [target]


def test_write_json_atomic_overwrites(tmp_path):
    target = tmp_path / "report.json"
    write_json_atomic({"v": 1}, target)
    write_json_atomic({"v": 2}, target)
    assert json.loads(target.read_text()) == {"v": 2}
