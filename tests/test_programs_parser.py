"""Tests for the pseudo-COBOL program text parser."""

import pytest

from repro.programs import ast
from repro.programs import builder as b
from repro.programs.ast import render_program
from repro.programs.parser import (
    ProgramSyntaxError,
    parse_expression,
    parse_program,
    roundtrips,
)
from repro.workloads.corpus import CorpusSpec, generate_corpus


class TestExpressionParsing:
    @pytest.mark.parametrize("expr", [
        b.c(5),
        b.c("HELLO WORLD"),
        b.c(""),
        b.v("DB-STATUS"),
        b.v("EMP.EMP-NAME"),
        b.eq(b.v("A"), 1),
        b.and_(b.gt(b.v("A"), 1), b.ne(b.v("B"), "x")),
        b.add(b.add(1, 2), b.v("N")),
        ast.Const(True),
        ast.Const(None),
    ])
    def test_round_trip(self, expr):
        assert parse_expression(expr.render()) == expr

    def test_nested_parens(self):
        expr = parse_expression("((A + 1) * (B - 2))")
        assert expr == ast.Bin("*", ast.Bin("+", ast.Var("A"),
                                            ast.Const(1)),
                               ast.Bin("-", ast.Var("B"), ast.Const(2)))

    def test_string_with_comma_and_paren(self):
        expr = parse_expression("'a, (b)'")
        assert expr == ast.Const("a, (b)")

    @pytest.mark.parametrize("bad", ["(A >", "(A ?? B)", "(A > 1) extra"])
    def test_errors(self, bad):
        with pytest.raises(ProgramSyntaxError):
            parse_expression(bad)


class TestStatementParsing:
    def parse_single(self, text: str) -> ast.Stmt:
        program = parse_program(
            f"PROGRAM T (network / S).\n  {text}\n"
        )
        assert len(program.statements) == 1
        return program.statements[0]

    def test_header_fields(self):
        program = parse_program("PROGRAM MY-PROG (relational / SCH-1).\n")
        assert program.name == "MY-PROG"
        assert program.model == "relational"
        assert program.schema_name == "SCH-1"

    def test_bad_header(self):
        with pytest.raises(ProgramSyntaxError):
            parse_program("PROGRAMME X.\n")

    @pytest.mark.parametrize("stmt", [
        b.assign("X", 5),
        b.display("A", b.v("X")),
        b.accept("X"),
        b.accept("X", prompt="WHO?"),
        b.read_file("F", "LINE"),
        b.write_file("OUT", b.v("A"), "literal"),
        ast.BindFirstRow("ROW", "$ROWS-1"),
        b.find_any("EMP", **{"EMP-NAME": "X", "AGE": 3}),
        b.find_any("EMP"),
        b.find_first("EMP", "DIV-EMP"),
        b.find_next("EMP", "DIV-EMP"),
        b.find_next_using("EMP", "DIV-EMP", **{"AGE": 30}),
        b.find_owner("DIV-EMP"),
        b.get("EMP"),
        b.store("EMP", **{"EMP-NAME": "A"}),
        b.modify("EMP", **{"AGE": b.add(b.field("EMP", "AGE"), 1)}),
        b.erase("EMP"),
        b.erase("EMP", all_members=True),
        b.connect("EMP", "DIV-EMP"),
        b.disconnect("EMP", "DIV-EMP"),
        ast.NetReconnect("EMP", "DEPT-EMP", "DEPT-NAME",
                         ast.Const("SALES"), ensure_owner=True),
        b.generic_call(b.v("VERB"), "EMP", **{"AGE": 1}),
        b.generic_call("STORE", "EMP"),
        b.query("SELECT A FROM T WHERE B = ?X", "$R", ["X"]),
        b.query("SELECT A FROM T", "$R"),
        b.rel_insert("EMP", **{"E#": "E1"}),
        b.rel_delete("EMP", **{"E#": "E1", "AGE": 2}),
        b.rel_update("EMP", {"E#": "E1"}, {"AGE": 3}),
        b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
        b.gn(),
        b.gnp(b.ssa("OFFERING")),
        b.isrt("OFFERING", {"S": "F78"}, b.ssa("COURSE", "CNO", "=", "C1")),
        b.isrt("COURSE", {"CNO": "C9"}),
        b.dlet(),
        b.repl(**{"S": "S79"}),
        ast.HierPositionParent(),
    ])
    def test_leaf_round_trip(self, stmt):
        assert self.parse_single(stmt.render() + ".") == stmt

    def test_if_else_round_trip(self):
        program = b.program("T", "network", "S", [
            b.if_(b.gt(b.v("A"), 1), [b.display("BIG")],
                  [b.display("SMALL")]),
        ])
        assert roundtrips(program)

    def test_nested_compound_round_trip(self):
        program = b.program("T", "network", "S", [
            b.while_(b.lt(b.v("I"), 3), [
                b.if_(b.eq(b.v("I"), 1), [
                    b.for_each_row("R", "$ROWS", [
                        b.display(b.v("R.A")),
                    ]),
                ]),
                b.assign("I", b.add(b.v("I"), 1)),
            ]),
        ])
        assert roundtrips(program)

    def test_procedures_round_trip(self):
        program = b.program("T", "network", "S", [
            b.call("SHOW", "K1", 2),
        ], procedures=[
            b.procedure("SHOW", ("KEY", "N"), [
                b.display(b.v("KEY"), b.v("N")),
            ]),
        ])
        assert roundtrips(program)

    def test_unrecognized_statement(self):
        with pytest.raises(ProgramSyntaxError):
            parse_program("PROGRAM T (network / S).\n  FROBNICATE X.\n")

    def test_missing_period(self):
        with pytest.raises(ProgramSyntaxError):
            parse_program("PROGRAM T (network / S).\n  GET EMP\n")

    def test_unterminated_if(self):
        with pytest.raises(ProgramSyntaxError):
            parse_program(
                "PROGRAM T (network / S).\n  IF (A = 1)\n    GET EMP.\n"
            )


class TestCorpusRoundTrip:
    def test_entire_corpus_round_trips(self):
        corpus = generate_corpus(CorpusSpec(seed=23, size=60,
                                            pathology_rate=0.4))
        for item in corpus:
            assert roundtrips(item.program), item.program.name

    def test_parsed_program_runs_identically(self, company_db):
        from repro.programs.interpreter import run_program
        from repro.workloads import company

        corpus = generate_corpus(CorpusSpec(seed=29, size=10,
                                            pathology_rate=0.0))
        for item in corpus:
            parsed = parse_program(render_program(item.program))
            trace_original = run_program(
                item.program, company.company_db(seed=5),
                consistent=False)
            trace_parsed = run_program(
                parsed, company.company_db(seed=5), consistent=False)
            assert trace_original == trace_parsed


def test_hand_written_source_text(company_db):
    """The analyzer path the paper describes: read source text, analyze,
    convert."""
    from repro.core import ConversionSupervisor
    from repro.workloads import company

    source_text = """
PROGRAM HAND-WRITTEN (network / COMPANY-NAME).
  FIND ANY DIV USING DIV-NAME='MACHINERY'.
  FIND FIRST EMP WITHIN DIV-EMP.
  PERFORM WHILE (DB-STATUS = '0000')
    GET EMP.
    IF (EMP.AGE > 45)
      DISPLAY EMP.EMP-NAME.
    END-IF
    FIND NEXT EMP WITHIN DIV-EMP.
  END-PERFORM
  DISPLAY 'DONE'.
"""
    program = parse_program(source_text)
    supervisor = ConversionSupervisor(company.figure_42_schema(),
                                      company.figure_44_operator())
    report = supervisor.convert_program(program)
    assert report.target_program is not None
