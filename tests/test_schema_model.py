"""Unit tests for the common schema model."""

import pytest

from repro.errors import (
    SchemaError,
    UnknownField,
    UnknownRecordType,
    UnknownSetType,
)
from repro.schema import (
    Field,
    Insertion,
    RecordType,
    Retention,
    Schema,
    SetType,
    parse_pic,
)


def make_schema() -> Schema:
    schema = Schema("T")
    schema.define_record("A", {"K": "X(4)", "N": "X(8)"}, calc_keys=["K"])
    schema.define_record("B", {"V": "9(3)"})
    schema.define_set("ALL-A", "SYSTEM", "A", order_keys=["K"])
    schema.define_set("A-B", "A", "B", order_keys=["V"])
    return schema


def test_record_lookup_and_errors():
    schema = make_schema()
    assert schema.record("A").name == "A"
    with pytest.raises(UnknownRecordType):
        schema.record("Z")
    with pytest.raises(UnknownSetType):
        schema.set_type("NOPE")
    with pytest.raises(UnknownField):
        schema.record("A").field("MISSING")


def test_duplicate_names_rejected():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.define_record("A", {"X": "X(1)"})
    with pytest.raises(SchemaError):
        schema.define_set("A-B", "A", "B")


def test_duplicate_field_rejected():
    with pytest.raises(SchemaError):
        RecordType("R", (Field("F", parse_pic("X(1)")),
                         Field("F", parse_pic("X(2)"))))


def test_calc_key_must_be_field():
    with pytest.raises(SchemaError):
        RecordType("R", (Field("F", parse_pic("X(1)")),),
                   calc_keys=("NOPE",))


def test_set_owner_member_must_differ():
    with pytest.raises(SchemaError):
        SetType("S", "A", "A")


def test_set_order_key_must_exist_on_member():
    schema = make_schema()
    with pytest.raises(UnknownField):
        schema.define_set("BAD", "A", "B", order_keys=["NOPE"])


def test_virtual_field_requires_both_clauses():
    with pytest.raises(SchemaError):
        Field("F", parse_pic("X(1)"), virtual_via="S")


def test_virtual_field_validation(small_schema):
    # virtual field must be on the member of its via set
    bad = small_schema.copy()
    owner = bad.records["OWNER"]
    bad.records["OWNER"] = owner.with_fields(owner.fields + (
        Field("X", parse_pic("X(4)"), virtual_via="OWNS",
              virtual_using="SEQ"),
    ))
    with pytest.raises(SchemaError):
        bad.validate()


def test_stored_field_names_exclude_virtual():
    record = RecordType("R", (
        Field("A", parse_pic("X(1)")),
        Field("B", parse_pic("X(1)"), virtual_via="S", virtual_using="A"),
    ))
    assert record.stored_field_names() == ["A"]
    assert record.field_names() == ["A", "B"]


def test_validate_values_rejects_virtual_and_unknown():
    record = RecordType("R", (
        Field("A", parse_pic("X(1)")),
        Field("B", parse_pic("X(1)"), virtual_via="S", virtual_using="A"),
    ))
    with pytest.raises(SchemaError):
        record.validate_values({"B": "x"})
    with pytest.raises(UnknownField):
        record.validate_values({"C": "x"})
    assert record.validate_values({"A": "x"}) == {"A": "x"}


def test_sets_queries():
    schema = make_schema()
    assert [s.name for s in schema.sets_owned_by("A")] == ["A-B"]
    assert [s.name for s in schema.sets_with_member("B")] == ["A-B"]
    assert [s.name for s in schema.system_sets()] == ["ALL-A"]
    assert [s.name for s in schema.sets_between("A", "B")] == ["A-B"]


def test_is_hierarchical():
    schema = make_schema()
    assert schema.is_hierarchical()
    schema.define_record("C", {"X": "X(1)"})
    schema.define_set("A-B2", "C", "B")  # B now has two parents
    assert not schema.is_hierarchical()


def test_copy_is_independent():
    schema = make_schema()
    clone = schema.copy("CLONE")
    clone.define_record("NEW", {"X": "X(1)"})
    assert "NEW" not in schema.records
    assert clone.name == "CLONE"


def test_membership_defaults():
    schema = make_schema()
    set_type = schema.set_type("A-B")
    assert set_type.insertion is Insertion.AUTOMATIC
    assert set_type.retention is Retention.OPTIONAL
