"""Tests for the restructuring specification language."""

import pytest

from repro.errors import DDLSyntaxError
from repro.restructure import (
    AddField,
    ChangeMembership,
    ChangeSetOrder,
    Composite,
    DropConstraint,
    DropField,
    ExtractFields,
    InlineFields,
    InterposeRecord,
    MaterializeField,
    MergeRecords,
    RenameField,
    RenameRecord,
    RenameSet,
    SwapSiblingOrder,
    VirtualizeField,
    restructure_database,
)
from repro.restructure.spec import format_spec, parse_spec
from repro.schema.model import Insertion, Retention
from repro.workloads import company


class TestParsing:
    @pytest.mark.parametrize("text,expected", [
        ("RENAME RECORD EMP TO WORKER.",
         RenameRecord("EMP", "WORKER")),
        ("RENAME FIELD EMP.AGE TO YEARS.",
         RenameField("EMP", "AGE", "YEARS")),
        ("RENAME SET DIV-EMP TO STAFF.",
         RenameSet("DIV-EMP", "STAFF")),
        ("ADD FIELD EMP.GRADE PIC 9(2) DEFAULT 1.",
         AddField("EMP", "GRADE", "9(2)", 1)),
        ("ADD FIELD EMP.NOTE PIC X(10) DEFAULT 'NONE'.",
         AddField("EMP", "NOTE", "X(10)", "NONE")),
        ("ADD FIELD EMP.NOTE PIC X(10).",
         AddField("EMP", "NOTE", "X(10)", None)),
        ("DROP FIELD EMP.AGE FORCE.",
         DropField("EMP", "AGE", force=True)),
        ("DROP FIELD EMP.AGE.",
         DropField("EMP", "AGE", force=False)),
        ("REORDER SET DIV-EMP BY (AGE) DUPLICATES ALLOWED.",
         ChangeSetOrder("DIV-EMP", ("AGE",), allow_duplicates=True)),
        ("REORDER SET DIV-EMP BY (AGE, EMP-NAME).",
         ChangeSetOrder("DIV-EMP", ("AGE", "EMP-NAME"))),
        ("MEMBERSHIP DIV-EMP MANUAL OPTIONAL.",
         ChangeMembership("DIV-EMP", Insertion.MANUAL,
                          Retention.OPTIONAL)),
        ("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP AS DIV-DEPT, DEPT-EMP.",
         InterposeRecord("DIV-EMP", "DEPT", ("DEPT-NAME",),
                         "DIV-DEPT", "DEPT-EMP")),
        ("MERGE DEPT BETWEEN DIV-DEPT, DEPT-EMP AS DIV-EMP "
         "INHERIT (DEPT-NAME).",
         MergeRecords("DEPT", "DIV-DEPT", "DEPT-EMP", "DIV-EMP",
                      ("DEPT-NAME",))),
        ("VIRTUALIZE M.CITY VIA OM.",
         VirtualizeField("M", "CITY", "OM")),
        ("VIRTUALIZE M.CITY VIA OM USING TOWN FORCE.",
         VirtualizeField("M", "CITY", "OM", using_field="TOWN",
                         force=True)),
        ("MATERIALIZE M.CITY.",
         MaterializeField("M", "CITY")),
        ("EXTRACT EMP (AGE) INTO EMP-DETAIL VIA EMP-DATA.",
         ExtractFields("EMP", ("AGE",), "EMP-DETAIL", "EMP-DATA")),
        ("INLINE EMP-DETAIL INTO EMP (AGE) VIA EMP-DATA.",
         InlineFields("EMP", ("AGE",), "EMP-DETAIL", "EMP-DATA")),
        ("SIBLINGS COURSE (C-TXT, C-OFF).",
         SwapSiblingOrder("COURSE", ("C-TXT", "C-OFF"))),
        ("DROP CONSTRAINT COURSE-LIMIT.",
         DropConstraint("COURSE-LIMIT")),
    ])
    def test_single_statements(self, text, expected):
        assert parse_spec(text) == expected

    def test_multiple_statements_compose(self):
        spec = """
        RENAME RECORD EMP TO WORKER.  *> first
        RENAME FIELD WORKER.AGE TO YEARS.
        """
        operator = parse_spec(spec)
        assert isinstance(operator, Composite)
        assert len(operator.operators) == 2

    @pytest.mark.parametrize("bad", [
        "RENAME RECORD EMP TO WORKER",   # no period
        "FROBNICATE EMP.",
        "",
        "RENAME RECORD EMP.",
    ])
    def test_errors(self, bad):
        with pytest.raises(DDLSyntaxError):
            parse_spec(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("operator", [
        RenameRecord("EMP", "WORKER"),
        RenameField("EMP", "AGE", "YEARS"),
        RenameSet("DIV-EMP", "STAFF"),
        AddField("EMP", "GRADE", "9(2)", 1),
        AddField("EMP", "NOTE", "X(10)", "NONE"),
        DropField("EMP", "AGE", force=True),
        ChangeSetOrder("DIV-EMP", ("AGE",), allow_duplicates=True),
        ChangeSetOrder("DIV-EMP", ("AGE",), allow_duplicates=False),
        ChangeMembership("DIV-EMP", Insertion.MANUAL, Retention.OPTIONAL),
        InterposeRecord("DIV-EMP", "DEPT", ("DEPT-NAME",),
                        "DIV-DEPT", "DEPT-EMP"),
        MergeRecords("DEPT", "DIV-DEPT", "DEPT-EMP", "DIV-EMP",
                     ("DEPT-NAME",)),
        VirtualizeField("M", "CITY", "OM"),
        VirtualizeField("M", "CITY", "OM", using_field="TOWN",
                        force=True),
        MaterializeField("M", "CITY"),
        ExtractFields("EMP", ("AGE",), "EMP-DETAIL", "EMP-DATA"),
        InlineFields("EMP", ("AGE",), "EMP-DETAIL", "EMP-DATA"),
        SwapSiblingOrder("COURSE", ("C-TXT", "C-OFF")),
        DropConstraint("X"),
    ])
    def test_format_parse_round_trip(self, operator):
        assert parse_spec(format_spec(operator)) == operator

    def test_composite_round_trip(self):
        operator = Composite((
            RenameRecord("EMP", "WORKER"),
            AddField("WORKER", "GRADE", "9(2)", 1),
        ))
        assert parse_spec(format_spec(operator)) == operator


def test_figure_44_spec_end_to_end(company_db):
    """The paper's restructuring, written as a spec file, drives the
    whole data translation."""
    operator = parse_spec(
        "INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP AS DIV-DEPT, DEPT-EMP."
    )
    assert operator == company.figure_44_operator()
    target_schema, target_db = restructure_database(company_db, operator)
    assert "DEPT" in target_schema.records
    target_db.verify_consistent()
