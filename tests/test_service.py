"""Tests for the conversion service: progress callbacks, the span
stream, the SSE wire format, the job manager, the HTTP surface, and
the graceful-shutdown / resume byte-identity contract."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.cli import main
from repro.observe.stream import StreamingTracer, span_event
from repro.options import ConversionOptions
from repro.programs.interpreter import ProgramInputs
from repro.programs.parser import parse_program
from repro.service import jobs as jobs_mod
from repro.service.jobs import (
    JobManager,
    QueueFullError,
    SubmissionError,
    pool_key,
    validate_submission,
)
from repro.service.server import ConversionService
from repro.service.sse import format_event, parse_events
from repro.workloads.company import FIGURE_4_3_DDL

FIG44_SPEC = ("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP "
              "AS DIV-DEPT, DEPT-EMP.\n")

PROGRAM_TEMPLATE = """\
PROGRAM {name} (network / COMPANY-NAME).
  FIND ANY DIV USING DIV-NAME='MACHINERY'.
  FIND FIRST EMP WITHIN DIV-EMP.
  PERFORM WHILE (DB-STATUS = '0000')
    GET EMP.
    IF (EMP.AGE > {age})
      DISPLAY EMP.EMP-NAME.
    END-IF
    FIND NEXT EMP WITHIN DIV-EMP.
  END-PERFORM
"""


def corpus(size=3):
    return [PROGRAM_TEMPLATE.format(name=f"REPORT{i}", age=40 + i)
            for i in range(size)]


def submission(size=3, **extra):
    payload = {"ddl": FIGURE_4_3_DDL, "spec": FIG44_SPEC,
               "programs": corpus(size)}
    payload.update(extra)
    return payload


def wait_terminal(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    with job.cond:
        while not job.terminal:
            assert time.monotonic() < deadline, (
                f"job {job.id} still {job.state} after {timeout}s")
            job.cond.wait(timeout=0.2)
    return job.state


def cli_reference_run(tmp_path, size=3):
    """The shell-side of the byte-identity contract: the same batch via
    ``repro convert``, returning (report_bytes, checkpoint_bytes)."""
    ref = tmp_path / "cli-ref"
    ref.mkdir()
    ddl = ref / "company.ddl"
    ddl.write_text(FIGURE_4_3_DDL)
    spec = ref / "fig44.spec"
    spec.write_text(FIG44_SPEC)
    program_args = []
    for i, text in enumerate(corpus(size)):
        path = ref / f"p{i}.cob"
        path.write_text(text)
        program_args += ["--program", str(path)]
    checkpoint = ref / "checkpoint.json"
    report = ref / "report.json"
    code = main(["convert", "--ddl", str(ddl), "--spec", str(spec),
                 *program_args, "--jobs", "1",
                 "--checkpoint", str(checkpoint),
                 "--report-json", str(report)])
    assert code == 0
    return report.read_bytes(), checkpoint.read_bytes()


# -- progress callbacks (batch layer) ---------------------------------


def build_cascade(options=None):
    return api.build_cascade(FIGURE_4_3_DDL, FIG44_SPEC, options=options)


def test_serial_progress_callback_order(tmp_path):
    calls = []

    def progress(report, done, total, resumed):
        calls.append((report.program_name, done, total, resumed))

    programs = [parse_program(text) for text in corpus(3)]
    options = ConversionOptions(inputs=ProgramInputs(terminal=[]))
    api.convert_batch(build_cascade(options), programs, options,
                      progress=progress)
    assert calls == [("REPORT0", 1, 3, False), ("REPORT1", 2, 3, False),
                     ("REPORT2", 3, 3, False)]


def test_progress_interrupt_is_resumable(tmp_path):
    """Raising from the progress callback is the graceful-interrupt
    path: the journal holds everything already reported, and a resumed
    run reports the survivors with ``resumed=True``."""
    checkpoint = tmp_path / "ck.json"
    options = ConversionOptions(inputs=ProgramInputs(terminal=[]),
                                checkpoint=checkpoint)
    programs = [parse_program(text) for text in corpus(3)]

    first = []

    def interrupt_after_one(report, done, total, resumed):
        first.append((report.program_name, resumed))
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        api.convert_batch(build_cascade(options), programs, options,
                          progress=interrupt_after_one)
    assert first == [("REPORT0", False)]
    assert checkpoint.exists()

    second = []
    resumed_options = options.replace(resume=True)
    api.convert_batch(
        build_cascade(resumed_options), programs, resumed_options,
        progress=lambda r, d, t, res: second.append((r.program_name, res)))
    assert second == [("REPORT0", True), ("REPORT1", False),
                      ("REPORT2", False)]


# -- the span stream ---------------------------------------------------


def test_streaming_tracer_reports_closed_spans():
    seen = []
    tracer = StreamingTracer(seen.append, prefixes=("batch.",))
    with tracer:
        with tracer.span("batch.program", program="P1"):
            with tracer.span("other.inner"):
                pass
    assert [span.name for span in seen] == ["batch.program"]
    span = seen[0]
    assert span.end is not None
    event = span_event(span)
    assert event["name"] == "batch.program"
    assert event["program"] == "P1"
    assert event["seconds"] >= 0


def test_streaming_tracer_reports_spans_closed_by_exception():
    seen = []
    tracer = StreamingTracer(seen.append)
    with pytest.raises(RuntimeError):
        with tracer, tracer.span("batch.program"):
            raise RuntimeError("boom")
    assert [span.name for span in seen] == ["batch.program"]
    assert seen[0].end is not None


# -- the SSE wire format ----------------------------------------------


def test_sse_round_trip():
    wire = b"".join([
        format_event("job", {"state": "queued"}, event_id=0),
        b": keep-alive\n\n",
        format_event("program", {"program": "P1", "done": 1}, event_id=1),
    ])
    events = list(parse_events(wire.splitlines(keepends=True)))
    assert events == [("job", {"state": "queued"}),
                      ("program", {"program": "P1", "done": 1})]


def test_sse_format_is_byte_stable():
    one = format_event("program", {"b": 1, "a": 2}, event_id=7)
    two = format_event("program", {"a": 2, "b": 1}, event_id=7)
    assert one == two
    assert one == b'id: 7\nevent: program\ndata: {"a":2,"b":1}\n\n'


# -- submission validation --------------------------------------------


@pytest.mark.parametrize("mutate, message", [
    (lambda p: p.pop("ddl"), "'ddl'"),
    (lambda p: p.update(programs=[]), "'programs'"),
    (lambda p: p.update(programs=["PROGRAM"]), "unparseable"),
    (lambda p: p.update(ddl="SCHEMA NAME COMPANY."), "unparseable"),
    (lambda p: p.update(options={"bogus": 1}), "unknown option"),
    (lambda p: p.update(options={"jobs": "two"}), "'jobs'"),
    (lambda p: p.update(options={"strategy_order": "random"}),
     "strategy_order"),
    (lambda p: p.update(programs=corpus(2) + [corpus(2)[0]]),
     "duplicate"),
])
def test_validate_submission_rejects(mutate, message):
    payload = submission()
    mutate(payload)
    with pytest.raises(SubmissionError, match=message):
        validate_submission(payload)


def test_validate_submission_normalizes():
    normalized = validate_submission(submission(2, inputs=["STORE"]))
    assert normalized["program_names"] == ["REPORT0", "REPORT1"]
    assert normalized["inputs"] == ["STORE"]


def test_pool_key_ignores_service_side_fields():
    a, b = submission(2), submission(5)
    assert pool_key(a) == pool_key(b)  # program list is not in the seed
    assert pool_key(a) != pool_key(
        submission(2, options={"strategy_order": "fixed"}))


# -- the job manager ---------------------------------------------------


def test_job_manager_runs_job_to_byte_identical_artifacts(tmp_path):
    manager = JobManager(tmp_path / "spool")
    try:
        job = manager.submit(submission())
        assert wait_terminal(job) == jobs_mod.STATE_COMPLETED
        assert job.counts == {"converted-with-warnings": 3}
        events = [name for _, name, _ in job.events]
        assert events.count("program") == 3
        report_bytes, checkpoint_bytes = cli_reference_run(tmp_path)
        assert job.report_path.read_bytes() == report_bytes
        assert job.checkpoint_path.read_bytes() == checkpoint_bytes
    finally:
        manager.stop()


def test_job_manager_queue_limit(tmp_path, monkeypatch):
    gate = threading.Event()
    entered = threading.Event()

    def block(job, report):
        entered.set()
        gate.wait(timeout=30.0)

    monkeypatch.setattr(jobs_mod, "_after_program", block)
    manager = JobManager(tmp_path / "spool", queue_limit=1)
    try:
        running = manager.submit(submission(2))
        assert entered.wait(timeout=30.0)
        manager.submit(submission(2))  # fills the single queue slot
        with pytest.raises(QueueFullError):
            manager.submit(submission(2))
        gate.set()
        assert wait_terminal(running) == jobs_mod.STATE_COMPLETED
    finally:
        gate.set()
        manager.stop()


def test_job_manager_warm_pool_is_shared_across_jobs(tmp_path):
    manager = JobManager(tmp_path / "spool")
    try:
        options = {"jobs": 2, "parallel_threshold": 2, "chunk_size": 1}
        first = manager.submit(submission(4, options=options))
        assert wait_terminal(first) == jobs_mod.STATE_COMPLETED
        assert manager._pool is not None
        pool = manager._pool[1]
        second = manager.submit(submission(4, options=options))
        assert wait_terminal(second) == jobs_mod.STATE_COMPLETED
        assert manager._pool is not None
        assert manager._pool[1] is pool  # same warm pool, no respawn
        assert second.counts == {"converted-with-warnings": 4}
        assert [n for _, n, _ in second.events].count("program") == 4
    finally:
        manager.stop()


def test_resume_rejects_running_or_completed(tmp_path):
    manager = JobManager(tmp_path / "spool")
    try:
        job = manager.submit(submission(2))
        wait_terminal(job)
        with pytest.raises(SubmissionError, match="completed"):
            manager.resume_job(job.id)
        with pytest.raises(KeyError):
            manager.resume_job("job-999999")
    finally:
        manager.stop()


# -- the HTTP surface --------------------------------------------------


@pytest.fixture
def service(tmp_path):
    svc = ConversionService(tmp_path / "spool", port=0)
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


def url(service, path):
    host, port = service.address
    return f"http://{host}:{port}{path}"


def post_json(service, path, payload):
    request = urllib.request.Request(
        url(service, path), data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def get_json(service, path):
    with urllib.request.urlopen(url(service, path)) as response:
        return response.status, json.loads(response.read())


def get_bytes(service, path):
    with urllib.request.urlopen(url(service, path)) as response:
        return response.read()


def test_http_end_to_end(service, tmp_path):
    status, job = post_json(service, "/jobs", submission())
    assert status == 202
    assert job["state"] in ("queued", "running", "completed")

    events = []
    with urllib.request.urlopen(
            url(service, job["links"]["events"])) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        events = list(parse_events(response))

    # At least one event per program, and a terminal job event.
    programs = [data["program"] for name, data in events
                if name == "program"]
    assert programs == ["REPORT0", "REPORT1", "REPORT2"]
    assert events[-1][0] == "job"
    assert events[-1][1]["state"] == "completed"
    assert any(name == "span" for name, _ in events)

    status, snap = get_json(service, job["links"]["self"])
    assert snap["state"] == "completed"
    assert snap["done"] == snap["total"] == 3

    report_bytes, checkpoint_bytes = cli_reference_run(tmp_path)
    assert get_bytes(service, job["links"]["report"]) == report_bytes
    assert get_bytes(service, job["links"]["checkpoint"]) == \
        checkpoint_bytes

    status, health = get_json(service, "/healthz")
    assert health["status"] == "ok"
    assert health["jobs"] == 1

    status, listing = get_json(service, "/jobs")
    assert [entry["id"] for entry in listing["jobs"]] == [job["id"]]


def test_http_sse_replay_with_last_event_id(service):
    _, job = post_json(service, "/jobs", submission(2))
    with urllib.request.urlopen(
            url(service, job["links"]["events"])) as response:
        full = list(parse_events(response))
    request = urllib.request.Request(
        url(service, job["links"]["events"]),
        headers={"Last-Event-ID": "1"})
    with urllib.request.urlopen(request) as response:
        tail = list(parse_events(response))
    assert tail == full[2:]


def test_http_errors(service):
    with pytest.raises(urllib.error.HTTPError) as err:
        post_json(service, "/jobs", {"ddl": "x"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        get_json(service, "/jobs/job-999999")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        get_json(service, "/nope")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        post_json(service, "/jobs", {"resume": "job-999999"})
    assert err.value.code == 404


def test_http_report_404_before_completion(service, monkeypatch):
    gate = threading.Event()
    entered = threading.Event()

    def block(job, report):
        entered.set()
        gate.wait(timeout=30.0)

    monkeypatch.setattr(jobs_mod, "_after_program", block)
    try:
        _, job = post_json(service, "/jobs", submission(2))
        assert entered.wait(timeout=30.0)
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(service, job["links"]["report"])
        assert err.value.code == 404
    finally:
        gate.set()


# -- graceful shutdown and resume -------------------------------------


def test_shutdown_mid_batch_then_resume_is_byte_identical(
        tmp_path, monkeypatch):
    """The acceptance contract: SIGTERM mid-batch leaves a resumable
    checkpoint, and a restarted server resumes the job to a report
    byte-identical to an uninterrupted run."""
    spool = tmp_path / "spool"
    first_program = threading.Event()
    release = threading.Event()

    def gate(job, report):
        first_program.set()
        release.wait(timeout=30.0)

    monkeypatch.setattr(jobs_mod, "_after_program", gate)
    service = ConversionService(spool, port=0).start()
    _, job = post_json(service, "/jobs", submission())
    assert first_program.wait(timeout=30.0)

    # The drain: stop() interrupts the batch at the next program
    # boundary -- exactly what the SIGTERM handler triggers.
    stopper = threading.Thread(target=service.stop)
    stopper.start()
    time.sleep(0.2)  # let stop() raise the flag before releasing
    release.set()
    stopper.join(timeout=60.0)
    assert not stopper.is_alive()

    monkeypatch.setattr(jobs_mod, "_after_program", lambda j, r: None)
    restarted = ConversionService(spool, port=0).start()
    try:
        _, snap = get_json(restarted, f"/jobs/{job['id']}")
        assert snap["state"] == "interrupted"
        checkpoint = json.loads(
            get_bytes(restarted, snap["links"]["checkpoint"]))
        assert len(checkpoint["completed"]) >= 1  # progress survived

        status, resumed = post_json(restarted, "/jobs",
                                    {"resume": job["id"]})
        assert status == 202
        with urllib.request.urlopen(
                url(restarted, resumed["links"]["events"])) as response:
            events = list(parse_events(response))
        recovered = [data for name, data in events
                     if name == "program" and data.get("resumed")]
        assert recovered  # journaled programs came back from the log

        _, final = get_json(restarted, f"/jobs/{job['id']}")
        assert final["state"] == "completed"
        report_bytes, checkpoint_bytes = cli_reference_run(tmp_path)
        assert get_bytes(restarted,
                         final["links"]["report"]) == report_bytes
        assert get_bytes(restarted,
                         final["links"]["checkpoint"]) == checkpoint_bytes
    finally:
        restarted.stop()


def test_stop_parks_queued_jobs_resumably(tmp_path, monkeypatch):
    gate = threading.Event()
    entered = threading.Event()

    def block(job, report):
        entered.set()
        gate.wait(timeout=30.0)

    monkeypatch.setattr(jobs_mod, "_after_program", block)
    manager = JobManager(tmp_path / "spool", queue_limit=4)
    running = manager.submit(submission(2))
    assert entered.wait(timeout=30.0)
    queued = manager.submit(submission(2))

    stopper = threading.Thread(target=manager.stop)
    stopper.start()
    time.sleep(0.2)
    gate.set()
    stopper.join(timeout=60.0)
    assert not stopper.is_alive()

    assert running.state == jobs_mod.STATE_INTERRUPTED
    assert queued.state == jobs_mod.STATE_INTERRUPTED
    assert "resume" in (queued.error or "")
