"""Unit tests for hash and sorted indexes."""

import pytest

from repro.engine import HashIndex, Metrics, SortedIndex
from repro.errors import DuplicateKey


class TestHashIndex:
    def test_lookup_returns_insertion_order(self):
        index = HashIndex("t")
        index.insert("A", 1)
        index.insert("A", 2)
        assert index.lookup("A") == [1, 2]

    def test_lookup_missing_is_empty(self):
        index = HashIndex("t")
        assert index.lookup("NOPE") == []

    def test_unique_rejects_duplicates(self):
        index = HashIndex("t", unique=True)
        index.insert("A", 1)
        with pytest.raises(DuplicateKey):
            index.insert("A", 2)

    def test_remove(self):
        index = HashIndex("t")
        index.insert("A", 1)
        index.insert("A", 2)
        index.remove("A", 1)
        assert index.lookup("A") == [2]
        index.remove("A", 2)
        assert index.lookup("A") == []
        assert "A" not in index.keys()

    def test_remove_absent_is_noop(self):
        index = HashIndex("t")
        index.remove("A", 1)  # no error

    def test_contains_and_len(self):
        index = HashIndex("t")
        index.insert(("A", 1), 1)
        assert index.contains(("A", 1))
        assert not index.contains(("A", 2))
        assert len(index) == 1

    def test_probes_are_counted(self):
        metrics = Metrics()
        index = HashIndex("t", metrics=metrics)
        index.insert("A", 1)
        index.lookup("A")
        index.contains("B")
        assert metrics.index_probes == 2


class TestSortedIndex:
    def test_scan_in_key_order(self):
        index = SortedIndex("t")
        for key, rid in [("B", 1), ("A", 2), ("C", 3)]:
            index.insert(key, rid)
        assert list(index.scan()) == [2, 1, 3]

    def test_equal_keys_keep_arrival_order(self):
        index = SortedIndex("t")
        index.insert("A", 10)
        index.insert("A", 5)
        index.insert("A", 7)
        assert index.lookup("A") == [10, 5, 7]

    def test_mixed_types_do_not_crash(self):
        index = SortedIndex("t")
        index.insert(None, 1)
        index.insert(5, 2)
        index.insert("Z", 3)
        ordered = list(index.scan())
        assert ordered[0] == 1  # None sorts first

    def test_unique_rejects_duplicate_keys(self):
        index = SortedIndex("t", unique=True)
        index.insert("A", 1)
        with pytest.raises(DuplicateKey):
            index.insert("A", 2)

    def test_remove_specific_rid(self):
        index = SortedIndex("t")
        index.insert("A", 1)
        index.insert("A", 2)
        index.remove("A", 1)
        assert index.lookup("A") == [2]

    def test_range_scan(self):
        index = SortedIndex("t")
        for value in (1, 3, 5, 7, 9):
            index.insert(value, value)
        assert list(index.range(3, 7)) == [3, 5, 7]
        assert list(index.range(low=8)) == [9]
        assert list(index.range(high=1)) == [1]

    def test_first_and_position(self):
        index = SortedIndex("t")
        assert index.first() is None
        index.insert("B", 1)
        index.insert("A", 2)
        assert index.first() == 2
        assert index.position(1) == 1
        assert index.position(99) is None

    def test_composite_keys(self):
        index = SortedIndex("t")
        index.insert(("SALES", "ZED"), 1)
        index.insert(("ENG", "ABLE"), 2)
        index.insert(("SALES", "ABLE"), 3)
        assert list(index.scan()) == [2, 3, 1]
