"""Unit tests for the metrics bundle."""

from repro.engine import Metrics, MetricsScope


def test_snapshot_and_reset():
    metrics = Metrics()
    metrics.records_read = 5
    metrics.dml_calls = 2
    snap = metrics.snapshot()
    assert snap["records_read"] == 5
    metrics.reset()
    assert metrics.records_read == 0
    assert snap["records_read"] == 5  # snapshot is detached


def test_total_accesses():
    metrics = Metrics(records_read=3, records_written=2, records_deleted=1)
    assert metrics.total_accesses() == 6


def test_subtraction():
    after = Metrics(records_read=10, dml_calls=4)
    before = Metrics(records_read=3, dml_calls=1)
    delta = after - before
    assert delta.records_read == 7
    assert delta.dml_calls == 3


def test_add_accumulates():
    total = Metrics(records_read=1)
    total.add(Metrics(records_read=2, sort_operations=1))
    assert total.records_read == 3
    assert total.sort_operations == 1


def test_scope_measures_delta():
    metrics = Metrics()
    metrics.records_read = 100
    with MetricsScope(metrics) as scope:
        metrics.records_read += 7
        metrics.index_probes += 2
    assert scope.delta.records_read == 7
    assert scope.delta.index_probes == 2
    assert scope.delta.dml_calls == 0
