"""Shared fixtures: the paper's schemas and databases."""

from __future__ import annotations

import pytest

from repro.network import DMLSession, NetworkDatabase
from repro.restructure import restructure_database
from repro.schema import Schema
from repro.workloads import company, florida, school


@pytest.fixture
def company_schema() -> Schema:
    """The Figure 4.2/4.3 schema."""
    return company.figure_42_schema()


@pytest.fixture
def company_db(company_schema) -> NetworkDatabase:
    """A deterministic Figure 4.2 instance (2 divisions, 40 employees)."""
    return company.company_db(seed=42)


@pytest.fixture
def interpose_operator():
    """The Figure 4.2 -> 4.4 restructuring."""
    return company.figure_44_operator()


@pytest.fixture
def restructured_company(company_db, interpose_operator):
    """(target schema, target database) after the Figure 4.4 change."""
    return restructure_database(company_db, interpose_operator)


@pytest.fixture
def school_db() -> NetworkDatabase:
    return school.school_network_db(seed=7)


@pytest.fixture
def florida_db() -> NetworkDatabase:
    return florida.florida_network_db(seed=11)


@pytest.fixture
def small_schema() -> Schema:
    """A minimal one-set schema used by low-level engine tests."""
    schema = Schema("SMALL")
    schema.define_record("OWNER", {"KEY": "X(4)", "NAME": "X(10)"},
                         calc_keys=["KEY"])
    schema.define_record("ITEM", {"SEQ": "9(3)", "LABEL": "X(10)"})
    schema.define_set("ALL-OWNER", "SYSTEM", "OWNER", order_keys=["KEY"],
                      allow_duplicates=False)
    schema.define_set("OWNS", "OWNER", "ITEM", order_keys=["SEQ"])
    return schema


@pytest.fixture
def small_db(small_schema) -> NetworkDatabase:
    db = NetworkDatabase(small_schema)
    session = DMLSession(db)
    for key in ("K1", "K2"):
        session.store("OWNER", {"KEY": key, "NAME": f"OWNER-{key}"})
        for seq in (3, 1, 2):
            session.store("ITEM", {"SEQ": seq, "LABEL": f"{key}-{seq}"})
    return db
