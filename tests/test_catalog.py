"""The rules-as-data catalog: loader rejections with positions, the
render/load round-trip, compiled dispatch parity with the legacy rule
classes, template/pass/algebra gating, the deprecation shims over the
old ``repro.core.rules`` globals, end-to-end byte-identity of the
builtin catalog against its own rendered round-trip, the shipped
``examples/store-default.rules`` walkthrough, and the service-side
cascade cache keyed on the submission's rules."""

import dataclasses
import warnings
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import api
from repro._deprecation import reset_deprecation_warnings
from repro.catalog import (
    CHANGE_KINDS,
    NETWORK_TEMPLATES,
    Guard,
    TemplateEntry,
    compile_catalog,
    default_catalog,
    default_rules,
    load_catalog_text,
)
from repro.core import rules as core_rules
from repro.core.abstract import ACond, AScan
from repro.core.code_templates import DEFAULT_ALGEBRA_MAP
from repro.core.report import STATUS_FAILED
from repro.core.templates import emit_scan_network
from repro.errors import CatalogError, UnconvertiblePattern
from repro.options import ConversionOptions
from repro.programs import ast
from repro.programs.interpreter import ProgramInputs
from repro.schema.diff import FieldAdded
from repro.service.jobs import (
    JobManager,
    SubmissionError,
    pool_key,
    validate_submission,
)
from repro.workloads.company import FIGURE_4_3_DDL
from repro.workloads.corpus import CorpusSpec, generate_corpus

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FIG44_SPEC = ("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP "
              "AS DIV-DEPT, DEPT-EMP.\n")

GRADE_SPEC = "ADD FIELD EMP.GRADE PIC 9(2) DEFAULT 1.\n"

STORE_PROGRAM = """\
PROGRAM GRADE-STORE (network / COMPANY-NAME).
  FIND ANY DIV USING DIV-NAME='MACHINERY'.
  STORE EMP (EMP-NAME='NEW-HIRE', DEPT-NAME='ADMIN', AGE=30, DIV-NAME='MACHINERY').
  DISPLAY 'STORED'.
"""


def load(text):
    return load_catalog_text(text, path="cat.rules")


# -- loader rejections (position-carrying errors) ---------------------


REJECTIONS = [
    ("no-header",
     "RULE r\n  ON FieldAdded\n  USING noop\nEND\n",
     "catalog must begin with 'CATALOG <name> VERSION <n>'", 1),
    ("bad-version",
     "CATALOG t VERSION 9\n",
     "unsupported catalog version 9 (supported: 1)", 1),
    ("unknown-directive",
     "CATALOG t VERSION 1\nBOGUS thing\n",
     "unknown catalog directive 'BOGUS'", 2),
    ("unknown-kind",
     "CATALOG t VERSION 1\nRULE r\n  ON Bogus\n  USING noop\nEND\n",
     "unknown change kind 'Bogus'", 2),
    ("unknown-primitive",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING bogus\nEND\n",
     "unknown primitive 'bogus'", 2),
    ("unknown-rule-key",
     "CATALOG t VERSION 1\nRULE r\n  FROB x\nEND\n",
     "unknown RULE key 'FROB'", 3),
    ("cost-not-integer",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING noop\n"
     "  COST cheap\nEND\n",
     "COST must be an integer, got 'cheap'", 5),
    ("only-before-on",
     "CATALOG t VERSION 1\nRULE r\n  ONLY record EMP\nEND\n",
     "ON and USING must precede ONLY", 3),
    ("missing-on-using",
     "CATALOG t VERSION 1\nRULE r\nEND\n",
     "RULE 'r' needs ON and USING", 2),
    ("missing-end",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING noop\n",
     "RULE 'r' is missing END", 2),
    ("unquoted-note",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING note\n"
     "  NOTE bare words\nEND\n",
     "expected a quoted string", 5),
    ("second-refuse",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldRemoved\n"
     "  USING refuse-on-field-use\n  REFUSE \"a\"\n  REFUSE \"b\"\nEND\n",
     "only one REFUSE template is allowed", 6),
    ("template-count",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING noop\n"
     "  NOTE \"spurious\"\nEND\n",
     "primitive 'noop' takes exactly 0 NOTE template(s), got 1", 2),
    ("kind-pinned-primitive",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n"
     "  USING rename-record\nEND\n",
     "primitive 'rename-record' does not apply to FieldAdded", 2),
    ("missing-change-field",
     "CATALOG t VERSION 1\nRULE r\n  ON SetRemoved\n"
     "  USING store-default\n  NOTE \"x\"\nEND\n",
     "primitive 'store-default' needs change field 'record', "
     "which SetRemoved does not have", 2),
    ("bad-placeholder",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING note\n"
     "  NOTE \"{bogus} happened\"\nEND\n",
     "placeholder {bogus} does not name a field of FieldAdded", 2),
    ("malformed-template",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING note\n"
     "  NOTE \"{unclosed\"\nEND\n",
     "malformed message template", 2),
    ("bad-guard-attr",
     "CATALOG t VERSION 1\nRULE r\n  ON FieldAdded\n  USING noop\n"
     "  ONLY bogus EMP\nEND\n",
     "guard attribute 'bogus' is not a field of FieldAdded", 2),
    ("dangling-domain-guard",
     "CATALOG t VERSION 1\nDOMAIN\n  RECORD EMP\nEND\n"
     "RULE r\n  ON FieldAdded\n  USING noop\n  ONLY record DEPT\nEND\n",
     "guard value 'DEPT' is not a declared record (DOMAIN)", 5),
    ("duplicate-rule",
     "CATALOG t VERSION 1\n"
     "RULE r\n  ON FieldAdded\n  USING noop\nEND\n"
     "RULE r\n  ON SetAdded\n  USING noop\nEND\n",
     "duplicate RULE name 'r'", 6),
    ("duplicate-domain",
     "CATALOG t VERSION 1\nDOMAIN\nEND\nDOMAIN\nEND\n",
     "duplicate DOMAIN section", 4),
    ("bad-template-model",
     "CATALOG t VERSION 1\nTEMPLATE locate\n  MODEL cobol\nEND\n",
     "unknown template model 'cobol'", 2),
    ("bad-network-template",
     "CATALOG t VERSION 1\nTEMPLATE bogus\nEND\n",
     "unknown network template 'bogus'", 2),
    ("bad-algebra-rewrite",
     "CATALOG t VERSION 1\nALGEBRA a\n  ON RecordRenamed\n"
     "  REWRITE bogus\nEND\n",
     "unknown algebra rewrite 'bogus'", 2),
    ("algebra-kind-mismatch",
     "CATALOG t VERSION 1\nALGEBRA a\n  ON FieldRenamed\n"
     "  REWRITE rename-relation\nEND\n",
     "algebra rewrite 'rename-relation' applies to RecordRenamed, "
     "not FieldRenamed", 2),
    ("unknown-pass",
     "CATALOG t VERSION 1\nPASSES pushdown, bogus\n",
     "unknown optimizer pass 'bogus'", 2),
    ("duplicate-passes",
     "CATALOG t VERSION 1\nPASSES pushdown\nPASSES keyed\n",
     "duplicate PASSES directive", 3),
]


@pytest.mark.parametrize(
    "text, fragment, line",
    [case[1:] for case in REJECTIONS],
    ids=[case[0] for case in REJECTIONS])
def test_loader_rejects_with_position(text, fragment, line):
    with pytest.raises(CatalogError) as info:
        load(text)
    message = str(info.value)
    assert fragment in message, message
    assert f"line {line}:" in message, message
    assert "cat.rules" in message, message


def test_comments_and_blank_lines_are_skipped():
    catalog = load("# leading comment\n\n*> COBOL-style comment\n"
                   "CATALOG t VERSION 1\n\n"
                   "RULE r\n  # inside a block\n  ON RecordAdded\n"
                   "  USING noop\nEND\n")
    assert catalog.name == "t"
    assert [entry.name for entry in catalog.rules] == ["r"]


# -- round-trip and identity ------------------------------------------


def test_builtin_catalog_render_round_trips():
    catalog = default_catalog()
    reloaded = load_catalog_text(catalog.render(), path="rendered")
    assert reloaded == catalog
    assert reloaded.identity() == catalog.identity()


def test_builtin_catalog_shape():
    catalog = default_catalog()
    assert catalog.name == "builtin"
    # Parity with the legacy RULES tuple: every kind except
    # HierarchyReordered, which never had a mechanical rule (it
    # surfaces as an unconvertible pattern for the analyst).
    assert {entry.on for entry in catalog.rules} == \
        set(CHANGE_KINDS) - {"HierarchyReordered"}
    assert {t.name for t in catalog.templates} == set(NETWORK_TEMPLATES)


# -- compiled dispatch parity with the legacy classes -----------------


LEGACY_CLASSES = {
    "RecordRenamed": core_rules.RenameRecordRule,
    "FieldRenamed": core_rules.RenameFieldRule,
    "SetRenamed": core_rules.RenameSetRule,
    "FieldAdded": core_rules.NoteOnStoreRule,
    "FieldRemoved": core_rules.RefuseOnFieldUseRule,
    "RecordRemoved": core_rules.RefuseOnRecordUseRule,
    "RecordAdded": core_rules.NoopRule,
    "SetAdded": core_rules.NoopRule,
    "SetRemoved": core_rules.RefuseOnSetUseRule,
    "SetOrderChanged": core_rules.WarnOnReorderRule,
    "MembershipChanged": core_rules.NoteOnMembershipRule,
    "VirtualizedField": core_rules.VirtualizedFieldRule,
    "RecordInterposed": core_rules.InterposeRule,
    "RecordsMerged": core_rules.MergeRule,
    "FieldsExtracted": core_rules.ExtractFieldsRule,
    "FieldsInlined": core_rules.InlineFieldsRule,
    "SiblingOrderChanged": core_rules.NoopRule,
    "ConstraintAdded": core_rules.NoteRule,
    "ConstraintRemoved": core_rules.NoteRule,
}


def test_builtin_rules_instantiate_the_legacy_classes():
    compiled = default_rules()
    for entry, rule in zip(compiled.entries, compiled.rules):
        assert type(rule) is LEGACY_CLASSES[entry.on], entry.name
        assert rule.change_type is CHANGE_KINDS[entry.on]


def test_rule_for_miss_keeps_the_legacy_message():
    compiled = compile_catalog(load(
        "CATALOG t VERSION 1\nRULE r\n  ON SetAdded\n  USING noop\nEND\n"))
    with pytest.raises(UnconvertiblePattern,
                       match="no transformation rule for change kind "
                             "FieldAdded"):
        compiled.rule_for(FieldAdded(record="EMP", field_name="GRADE"))


def test_guarded_entry_overrides_the_general_one():
    compiled = compile_catalog(load(
        "CATALOG t VERSION 1\n"
        "RULE special\n  ON FieldAdded\n  USING noop\n"
        "  ONLY record EMP\nEND\n"
        "RULE general\n  ON FieldAdded\n  USING note\n"
        "  NOTE \"field {field_name} added\"\nEND\n"))
    emp = FieldAdded(record="EMP", field_name="GRADE")
    other = FieldAdded(record="DEPT", field_name="GRADE")
    assert compiled.rule_for(emp) is compiled.rules[0]
    assert compiled.rule_for(other) is compiled.rules[1]


def test_guard_matches_tuples_by_membership():
    change = FieldAdded(record="EMP", field_name="GRADE")
    assert Guard("record", "EMP").matches(change)
    assert not Guard("record", "DEPT").matches(change)


# -- templates, passes, algebra ---------------------------------------


def test_builtin_compiles_to_the_full_grants():
    compiled = default_rules()
    assert compiled.templates == frozenset(NETWORK_TEMPLATES)
    assert compiled.passes == ConversionOptions().optimizer_passes
    assert compiled.algebra_map() == DEFAULT_ALGEBRA_MAP
    assert compiled.gate_passes(("keyed", "pushdown")) == \
        ("keyed", "pushdown")


def test_omitted_sections_default_to_everything():
    compiled = compile_catalog(load(
        "CATALOG t VERSION 1\nRULE r\n  ON SetAdded\n  USING noop\nEND\n"))
    assert compiled.templates == frozenset(NETWORK_TEMPLATES)
    assert compiled.passes is None
    assert compiled.gate_passes(("keyed", "pushdown")) == \
        ("keyed", "pushdown")
    assert compiled.algebra_map() == DEFAULT_ALGEBRA_MAP


def test_passes_grant_filters_preserving_caller_order():
    compiled = compile_catalog(load(
        "CATALOG t VERSION 1\nRULE r\n  ON SetAdded\n  USING noop\nEND\n"
        "PASSES keyed, pushdown\n"))
    assert compiled.gate_passes(("pushdown", "keyed", "dedup-locate")) \
        == ("pushdown", "keyed")


def test_disabled_locate_template_fails_generation():
    gated = dataclasses.replace(
        default_catalog(),
        templates=tuple(TemplateEntry(name, "network", None)
                        for name in NETWORK_TEMPLATES
                        if name != "locate"))
    program = ("PROGRAM P1 (network / COMPANY-NAME).\n"
               "  FIND ANY DIV USING DIV-NAME='MACHINERY'.\n"
               "  DISPLAY 'OK'.\n")
    report = api.convert(FIGURE_4_3_DDL, FIG44_SPEC, program,
                         ConversionOptions(rule_catalog=gated))
    assert report.status == STATUS_FAILED
    assert "'locate' language template" in report.failure


def test_disabled_keyed_scan_falls_back_to_the_filtered_loop():
    node = AScan("EMP", "DIV-EMP",
                 (ACond("EMP-NAME", "=", ast.Const("X")),),
                 body=(), keyed=True)
    keyed = emit_scan_network(node, (), keyed=True)
    fallback = emit_scan_network(node, (), keyed=False)
    assert isinstance(keyed[0], ast.NetFindNextUsing)
    assert isinstance(fallback[0], ast.NetFindFirst)
    # The filtered loop still applies the conditions, as a guard.
    loop = fallback[1]
    assert any(isinstance(stmt, ast.If) for stmt in loop.body)


# -- end-to-end byte-identity of the builtin catalog ------------------


@pytest.mark.parametrize("jobs", [1, 4])
def test_explicit_builtin_catalog_is_byte_identical(tmp_path, jobs):
    """Loading the rendered builtin catalog through the public API and
    converting the E2 corpus with it must produce byte-identical
    reports and checkpoints to the implicit default -- serial and
    through the worker pool (the catalog pickles with the cascade)."""
    programs = [item.program for item in generate_corpus(
        CorpusSpec(seed=1979, size=8, pathology_rate=0.25))]
    reloaded = api.load_rule_catalog(default_catalog().render())
    base = ConversionOptions(inputs=ProgramInputs(terminal=["STORE"]),
                             jobs=jobs, parallel_threshold=1)
    results = {}
    for label, catalog in (("default", None), ("explicit", reloaded)):
        checkpoint = tmp_path / f"{label}-{jobs}.json"
        options = base.replace(rule_catalog=catalog,
                               checkpoint=str(checkpoint))
        cascade = api.build_cascade(FIGURE_4_3_DDL, FIG44_SPEC,
                                    options=options)
        batch = api.convert_batch(cascade, programs, options)
        results[label] = ([r.to_summary() for r in batch.reports],
                          checkpoint.read_bytes())
    assert results["default"][0] == results["explicit"][0]
    assert results["default"][1] == results["explicit"][1]


# -- the shipped store-default example --------------------------------


def test_store_default_example_converts_end_to_end(tmp_path, capsys):
    """A user catalog changes conversion behavior through ``--rules``
    alone: the shipped example rewrites STORE statements to carry the
    added field's default explicitly."""
    from repro.cli import main

    ddl = tmp_path / "company.ddl"
    ddl.write_text(FIGURE_4_3_DDL)
    spec = tmp_path / "grade.spec"
    spec.write_text(GRADE_SPEC)
    program = tmp_path / "store.cob"
    program.write_text(STORE_PROGRAM)
    code = main(["convert", "--ddl", str(ddl), "--spec", str(spec),
                 "--program", str(program),
                 "--rules", str(EXAMPLES / "store-default.rules")])
    captured = capsys.readouterr()
    assert code == 0
    assert "GRADE=1" in captured.out
    assert "rewritten to set GRADE = 1" in captured.out + captured.err


def test_without_the_example_catalog_the_store_is_left_alone(tmp_path):
    report = api.convert(FIGURE_4_3_DDL, GRADE_SPEC, STORE_PROGRAM)
    rendered = ast.render_program(report.target_program)
    assert "GRADE=1" not in rendered
    assert any("defaults to 1" in note for note in report.notes)


# -- deprecation shims over the old module globals --------------------


@pytest.fixture
def fresh_shims():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


@pytest.mark.deprecated_api
@pytest.mark.filterwarnings("always::DeprecationWarning")
class TestRulesShims:
    def _assert_warns_once(self, call, match):
        with pytest.warns(DeprecationWarning, match=match):
            call()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
        leaked = [w for w in caught
                  if issubclass(w.category, DeprecationWarning)]
        assert not leaked, "shim must warn exactly once per process"

    def test_rules_global_resolves_to_the_compiled_catalog(
            self, fresh_shims):
        self._assert_warns_once(lambda: core_rules.RULES,
                                "RULES is deprecated")
        assert core_rules.RULES == default_rules().rules

    def test_rule_for_resolves_to_the_compiled_dispatch(
            self, fresh_shims):
        self._assert_warns_once(lambda: core_rules.rule_for,
                                "rule_for is deprecated")
        change = FieldAdded(record="EMP", field_name="GRADE")
        assert core_rules.rule_for(change) is \
            default_rules().rule_for(change)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            core_rules.no_such_thing


# -- the service: submissions, pool key, cascade cache ----------------


def _submission(**extra):
    payload = {"ddl": FIGURE_4_3_DDL, "spec": FIG44_SPEC,
               "programs": [STORE_PROGRAM]}
    payload.update(extra)
    return payload


def test_submission_rules_must_be_text():
    with pytest.raises(SubmissionError,
                       match="'rules' must be rule-catalog text"):
        validate_submission(_submission(rules=123))


def test_submission_rules_must_parse():
    with pytest.raises(SubmissionError,
                       match="unparseable submission artifact"):
        validate_submission(_submission(rules="CATALOG broken"))


def test_submission_keeps_valid_rules():
    rules = (EXAMPLES / "store-default.rules").read_text()
    normalized = validate_submission(_submission(rules=rules))
    assert normalized["rules"] == rules


def test_pool_key_covers_the_rules_field():
    rules = (EXAMPLES / "store-default.rules").read_text()
    assert pool_key(_submission()) != pool_key(_submission(rules=rules))


def test_cascade_cache_reuses_by_key_and_splits_on_rules(tmp_path):
    manager = JobManager(tmp_path / "spool")
    try:
        options = ConversionOptions()
        job = SimpleNamespace(submission=_submission())
        first = manager._cascade_for(job, options)
        second = manager._cascade_for(job, options)
        assert second is first
        rules = (EXAMPLES / "store-default.rules").read_text()
        spec_job = SimpleNamespace(
            submission=_submission(spec=GRADE_SPEC, rules=rules))
        rebuilt = manager._cascade_for(
            spec_job,
            ConversionOptions(rule_catalog=api.load_rule_catalog(rules)))
        assert rebuilt is not first
    finally:
        manager.stop()
