"""Tests for the Mehl & Wang command substitution (Section 2.2, E8)."""

import pytest

from repro.core.command_substitution import convert_hierarchical_program
from repro.errors import UnconvertiblePattern
from repro.hierarchical import HierarchicalDatabase
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import run_program
from repro.restructure import (
    SwapSiblingOrder,
    restructure_database,
)
from repro.schema import Schema


def ims_schema() -> Schema:
    """A course with two child segment types: offerings and texts."""
    schema = Schema("IMS")
    schema.define_record("COURSE", {"CNO": "X(6)"}, calc_keys=["CNO"])
    schema.define_record("OFFERING", {"S": "X(4)"})
    schema.define_record("TEXTBOOK", {"TITLE": "X(12)"})
    schema.define_set("ALL-COURSE", "SYSTEM", "COURSE", order_keys=["CNO"])
    schema.define_set("C-OFF", "COURSE", "OFFERING", order_keys=["S"])
    schema.define_set("C-TXT", "COURSE", "TEXTBOOK", order_keys=["TITLE"])
    return schema


def populate(schema: Schema) -> HierarchicalDatabase:
    db = HierarchicalDatabase(schema)
    for cno in ("C1", "C2"):
        course = db.insert_segment("COURSE", {"CNO": cno})
        for s in ("F78", "S79"):
            db.insert_segment("OFFERING", {"S": s}, ("COURSE", course.rid))
        db.insert_segment("TEXTBOOK", {"TITLE": f"{cno}-BOOK"},
                          ("COURSE", course.rid))
    return db


def untyped_walk_program() -> ast.Program:
    """Count the dependents of each course with an untyped GNP loop."""
    hier_ok = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))
    return b.program("COUNT-DEPS", "hierarchical", "IMS", [
        b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
        b.assign("N", 0),
        b.gnp(),
        b.while_(hier_ok, [
            b.assign("N", b.add(b.v("N"), 1)),
            b.gnp(),
        ]),
        b.display("DEPENDENTS", b.v("N")),
    ])


def typed_walk_program() -> ast.Program:
    hier_ok = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))
    return b.program("LIST-OFF", "hierarchical", "IMS", [
        b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
        b.gnp(b.ssa("OFFERING")),
        b.while_(hier_ok, [
            b.display(b.field("OFFERING", "S")),
            b.gnp(b.ssa("OFFERING")),
        ]),
    ])


@pytest.fixture
def swap():
    return SwapSiblingOrder("COURSE", ("C-TXT", "C-OFF"))


@pytest.fixture
def change(swap):
    schema = ims_schema()
    return swap.changes(schema)[0]


class TestSiblingSwapData:
    def test_preorder_changes(self, swap):
        schema = ims_schema()
        db = populate(schema)
        target_schema, target_db = restructure_database(
            db, swap, target_model="hierarchical")
        source_walk = [name for name, _ in db.preorder()]
        target_walk = [name for name, _ in target_db.preorder()]
        assert source_walk != target_walk
        assert source_walk[1] == "OFFERING"
        assert target_walk[1] == "TEXTBOOK"

    def test_data_identical_as_multiset(self, swap):
        schema = ims_schema()
        db = populate(schema)
        _schema, target_db = restructure_database(
            db, swap, target_model="hierarchical")
        for record_name in schema.records:
            assert target_db.count(record_name) == db.count(record_name)


class TestCommandSubstitution:
    def test_untyped_loop_substituted(self, change):
        schema = ims_schema()
        result = convert_hierarchical_program(untyped_walk_program(),
                                              change, schema)
        gnps = [s for s in ast.walk_program(result.program)
                if isinstance(s, ast.HierGNP)]
        # two typed loop heads + two typed loop tails
        typed = [g for g in gnps if g.ssas]
        assert len(typed) == 4
        segments = {g.ssas[0].segment for g in typed}
        assert segments == {"OFFERING", "TEXTBOOK"}
        assert result.notes

    def test_typed_loop_untouched(self, change):
        schema = ims_schema()
        result = convert_hierarchical_program(typed_walk_program(),
                                              change, schema)
        assert result.program.statements == \
            typed_walk_program().statements

    def test_type_specific_untyped_body_rejected(self, change):
        schema = ims_schema()
        hier_ok = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))
        program = b.program("BAD", "hierarchical", "IMS", [
            b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
            b.gnp(),
            b.while_(hier_ok, [
                b.display(b.field("OFFERING", "S")),  # type-specific
                b.gnp(),
            ]),
        ])
        with pytest.raises(UnconvertiblePattern):
            convert_hierarchical_program(program, change, schema)

    def test_full_gn_walk_flagged(self, change):
        schema = ims_schema()
        hier_ok = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))
        program = b.program("WALK", "hierarchical", "IMS", [
            b.gn(),
            b.while_(hier_ok, [b.assign("N", 1), b.gn()]),
        ])
        result = convert_hierarchical_program(program, change, schema)
        assert any("GN walk" in note for note in result.notes)


class TestEndToEndEquivalence:
    def test_converted_program_matches_source_trace(self, swap, change):
        schema = ims_schema()
        source_db = populate(schema)
        source_trace = run_program(untyped_walk_program(), source_db,
                                   consistent=False)

        target_schema, target_db = restructure_database(
            populate(schema), swap, target_model="hierarchical")
        result = convert_hierarchical_program(untyped_walk_program(),
                                              change, schema)
        converted_trace = run_program(result.program, target_db,
                                      consistent=False)
        assert converted_trace == source_trace

        # and the UNCONVERTED program still happens to count the same
        # number (counting is order-insensitive) -- but a display-order
        # program would diverge; prove that with the typed variant
        # against an order-revealing untyped program:
        reveal = b.program("REVEAL", "hierarchical", "IMS", [
            b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
            b.assign("FIRST", ""),
            b.gnp(),
            b.if_(ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  ")), [
                b.display("VISITED FIRST CHILD"),
            ]),
        ])
        del reveal

    def test_order_revealing_program_diverges_without_conversion(
            self, swap, change):
        """Why conversion is needed: an untyped GNP sequence shows a
        different first dependent after the swap."""
        schema = ims_schema()
        hier_ok = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))
        del hier_ok
        program = b.program("FIRST-DEP", "hierarchical", "IMS", [
            b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
            b.gnp(),
            b.display(b.v("DB-STATUS")),
        ])
        source_db = populate(schema)
        source_first = run_program(program, source_db, consistent=False)
        _schema, target_db = restructure_database(
            populate(schema), swap, target_model="hierarchical")
        target_first = run_program(program, target_db, consistent=False)
        # both succeed (status '  ') but position at different segments;
        # demonstrate via the session directly:
        from repro.hierarchical import DLISession, SSA

        s1 = DLISession(populate(schema))
        s1.get_unique(SSA("COURSE", "CNO", "=", "C1"))
        first_source = s1.get_next_within_parent()
        _schema, tdb = restructure_database(
            populate(schema), swap, target_model="hierarchical")
        s2 = DLISession(tdb)
        s2.get_unique(SSA("COURSE", "CNO", "=", "C1"))
        first_target = s2.get_next_within_parent()
        assert first_source.type_name == "OFFERING"
        assert first_target.type_name == "TEXTBOOK"
        assert source_first == target_first  # statuses equal regardless
