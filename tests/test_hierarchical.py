"""Unit tests for the hierarchical (IMS/DL-I) model."""

import pytest

from repro.errors import RecordNotFound, SchemaError
from repro.hierarchical import (
    DLISession,
    HierarchicalDatabase,
    SSA,
    STATUS_END,
    STATUS_NOT_FOUND,
    STATUS_OK,
)
from repro.schema import Schema


def school_h_schema() -> Schema:
    schema = Schema("SCHOOL-H")
    schema.define_record("COURSE", {"CNO": "X(4)", "CNAME": "X(20)"},
                         calc_keys=["CNO"])
    schema.define_record("OFFERING", {"S": "X(4)", "YEAR": "9(4)"})
    schema.define_record("STUDENT", {"SNAME": "X(20)"})
    schema.define_set("ALL-COURSE", "SYSTEM", "COURSE", order_keys=["CNO"])
    schema.define_set("C-O", "COURSE", "OFFERING", order_keys=["S"])
    schema.define_set("O-S", "OFFERING", "STUDENT", order_keys=["SNAME"])
    return schema


@pytest.fixture
def db():
    db = HierarchicalDatabase(school_h_schema())
    c2 = db.insert_segment("COURSE", {"CNO": "C2", "CNAME": "DB"})
    c1 = db.insert_segment("COURSE", {"CNO": "C1", "CNAME": "OS"})
    o1 = db.insert_segment("OFFERING", {"S": "F78", "YEAR": 1978},
                           ("COURSE", c2.rid))
    db.insert_segment("OFFERING", {"S": "S79", "YEAR": 1979},
                      ("COURSE", c2.rid))
    db.insert_segment("STUDENT", {"SNAME": "ADAMS"}, ("OFFERING", o1.rid))
    db.insert_segment("STUDENT", {"SNAME": "BAKER"}, ("OFFERING", o1.rid))
    db.insert_segment("OFFERING", {"S": "F78", "YEAR": 1978},
                      ("COURSE", c1.rid))
    return db


class TestStructure:
    def test_non_hierarchical_schema_rejected(self):
        schema = school_h_schema()
        schema.define_record("EXTRA", {"X": "X(1)"})
        schema.define_set("X-S", "EXTRA", "STUDENT")
        with pytest.raises(SchemaError):
            HierarchicalDatabase(schema)

    def test_root_and_child_types(self, db):
        assert db.root_types() == ["COURSE"]
        assert db.child_types("COURSE") == ["OFFERING"]
        assert db.parent_type("STUDENT") == "OFFERING"
        assert db.level("STUDENT") == 3

    def test_roots_in_twin_order(self, db):
        names = [db.fetch("COURSE", rid)["CNO"] for rid in db.roots("COURSE")]
        assert names == ["C1", "C2"]

    def test_preorder_sequence(self, db):
        walk = [name for name, _rid in db.preorder()]
        assert walk == ["COURSE", "OFFERING", "COURSE", "OFFERING",
                        "STUDENT", "STUDENT", "OFFERING"]

    def test_insert_requires_correct_parent_type(self, db):
        with pytest.raises(SchemaError):
            db.insert_segment("STUDENT", {"SNAME": "X"}, ("COURSE", 1))
        with pytest.raises(SchemaError):
            db.insert_segment("COURSE", {"CNO": "C9"}, ("COURSE", 1))

    def test_insert_requires_live_parent(self, db):
        with pytest.raises(RecordNotFound):
            db.insert_segment("OFFERING", {"S": "X"}, ("COURSE", 999))

    def test_delete_cascades_subtree(self, db):
        course_rid = db.roots("COURSE")[1]  # C2 with 2 offerings, 2 students
        deleted = db.delete_segment("COURSE", course_rid)
        assert deleted == 5
        assert db.count("STUDENT") == 0

    def test_replace_resorts_twins(self, db):
        course_rid = db.roots("COURSE")[1]
        offerings = db.children("COURSE", course_rid, "OFFERING")
        db.replace_segment("OFFERING", offerings[0], {"S": "Z99"})
        new_order = [db.fetch("OFFERING", rid)["S"]
                     for rid in db.children("COURSE", course_rid,
                                            "OFFERING")]
        assert new_order == ["S79", "Z99"]


class TestDLI:
    def test_gu_qualified(self, db):
        session = DLISession(db)
        record = session.get_unique(SSA("COURSE", "CNO", "=", "C2"))
        assert record["CNAME"] == "DB"
        assert session.status == STATUS_OK

    def test_gu_with_path_qualification(self, db):
        session = DLISession(db)
        record = session.get_unique(
            SSA("COURSE", "CNO", "=", "C2"),
            SSA("OFFERING", "S", "=", "F78"),
            SSA("STUDENT", "SNAME", "=", "BAKER"),
        )
        assert record["SNAME"] == "BAKER"

    def test_gu_miss(self, db):
        session = DLISession(db)
        assert session.get_unique(SSA("COURSE", "CNO", "=", "C9")) is None
        assert session.status == STATUS_NOT_FOUND

    def test_gn_walks_whole_database(self, db):
        session = DLISession(db)
        walk = []
        while True:
            record = session.get_next()
            if record is None:
                break
            walk.append(record.type_name)
        assert session.status == STATUS_END
        assert walk == [name for name, _ in db.preorder()]

    def test_gn_qualified_skips(self, db):
        session = DLISession(db)
        sections = []
        while True:
            record = session.get_next(SSA("OFFERING"))
            if record is None:
                break
            sections.append(record["S"])
        assert sections == ["F78", "F78", "S79"]

    def test_gnp_confined_to_parent(self, db):
        session = DLISession(db)
        session.get_unique(SSA("COURSE", "CNO", "=", "C2"))
        found = []
        while True:
            record = session.get_next_within_parent(SSA("STUDENT"))
            if record is None:
                break
            found.append(record["SNAME"])
        assert session.status == STATUS_NOT_FOUND
        assert found == ["ADAMS", "BAKER"]

    def test_gnp_without_parentage(self, db):
        session = DLISession(db)
        assert session.get_next_within_parent() is None
        assert session.status == STATUS_NOT_FOUND

    def test_isrt_under_parentage(self, db):
        session = DLISession(db)
        session.get_unique(SSA("COURSE", "CNO", "=", "C1"))
        record = session.insert("OFFERING", {"S": "W80", "YEAR": 1980})
        assert record is not None
        parent = db.parent_of("OFFERING", record.rid)
        assert db.fetch(*parent)["CNO"] == "C1"

    def test_isrt_with_parent_ssas(self, db):
        session = DLISession(db)
        record = session.insert("STUDENT", {"SNAME": "CLARK"},
                                SSA("COURSE", "CNO", "=", "C2"),
                                SSA("OFFERING", "S", "=", "S79"))
        assert record is not None
        assert session.status == STATUS_OK

    def test_isrt_missing_parent(self, db):
        session = DLISession(db)
        assert session.insert("OFFERING", {"S": "X"},
                              SSA("COURSE", "CNO", "=", "C9")) is None
        assert session.status == STATUS_NOT_FOUND

    def test_dlet_removes_subtree(self, db):
        session = DLISession(db)
        session.get_unique(SSA("COURSE", "CNO", "=", "C2"),
                           SSA("OFFERING", "S", "=", "F78"))
        count = session.delete()
        assert count == 3  # offering + 2 students
        assert db.count("STUDENT") == 0

    def test_repl_updates_current(self, db):
        session = DLISession(db)
        session.get_unique(SSA("COURSE", "CNO", "=", "C1"))
        session.replace({"CNAME": "OPSYS"})
        again = DLISession(db)
        record = again.get_unique(SSA("COURSE", "CNO", "=", "C1"))
        assert record["CNAME"] == "OPSYS"

    def test_reset(self, db):
        session = DLISession(db)
        session.get_unique(SSA("COURSE", "CNO", "=", "C2"))
        session.reset()
        first = session.get_next()
        assert first["CNO"] == "C1"

    def test_comparison_operators_in_ssa(self, db):
        session = DLISession(db)
        record = session.get_unique(SSA("OFFERING", "YEAR", ">", 1978))
        assert record["YEAR"] == 1979
