"""Self-healing batch execution (worker supervision, watchdog,
quarantine).

The headline guarantees under test: a batch whose workers are killed
or hung by injected chaos still *completes*, poison programs are
quarantined with a deterministic synthesized report, the final
checkpoint is byte-identical to a serial run of the same fault plan at
any jobs count -- including across an interrupt + resume mid-chaos --
and the cooperative watchdog fails runaway programs identically in
serial and in-worker execution.
"""

import json
import multiprocessing

import pytest

from repro.batch import BatchCheckpoint, run_batch
from repro.core.report import STATUS_FAILED, STATUS_QUARANTINED
from repro.faultinject import (
    FAULT_KINDS,
    KIND_HANG,
    KIND_KILL_WORKER,
    KIND_RAISE,
    FaultPlan,
    PlannedFault,
    inject,
    plan_faults,
)
from repro.observe.registry import get_registry, registry_delta
from repro.options import ConversionOptions
from repro.parallel import (
    ParallelExecutionError,
    ParallelExecutor,
    run_parallel_batch,
)
from repro.programs.interpreter import (
    ProgramInputs,
    ProgramTimeout,
    program_deadline,
)
from repro.restructure import restructure_database
from repro.strategies.cascade import FallbackCascade
from repro.workloads import company
from repro.workloads.corpus import CorpusSpec, generate_corpus


def corpus_programs(pathology_rate=0.25, size=6, seed=1979):
    items = generate_corpus(CorpusSpec(seed=seed, size=size,
                                       pathology_rate=pathology_rate))
    return [item.program for item in items]


def fresh_cascade(seed=1979):
    # See test_parallel.fresh_cascade: collect garbage so the cycle
    # collector cannot shrink registry-wide metrics mid-conversion.
    import gc

    gc.collect()
    operator = company.figure_44_operator()
    source_db = company.company_db(seed=seed)
    _schema, target_db = restructure_database(source_db, operator)
    return FallbackCascade(source_db, target_db, operator)


OPTIONS = ConversionOptions(inputs=ProgramInputs(terminal=["STORE"]),
                            parallel_threshold=2)


def summaries(batch):
    return [report.to_summary() for report in batch.reports]


def kill_plan(program_name, nth=1):
    """A plan whose fault reliably fires during every corpus program's
    conversion: ``source_db.calc_index`` is exercised by the reference
    run of each program (see DEFAULT_PLAN_METHODS)."""
    return FaultPlan((PlannedFault(
        target="source_db", method="calc_index", nth=nth,
        program=program_name, kind=KIND_KILL_WORKER),))


def hang_plan(program_name):
    return FaultPlan((PlannedFault(
        target="source_db", method="calc_index", nth=1,
        program=program_name, kind=KIND_HANG),))


#: Fast polling so death detection does not dominate test wall-clock.
CHAOS = OPTIONS.replace(poll_interval=0.05, drain_timeout=5.0)


def no_workers_left():
    return not [proc for proc in multiprocessing.active_children()
                if proc.name.startswith("repro-worker-")]


class TestSerialQuarantine:
    def test_kill_fault_quarantines_after_retries(self, tmp_path):
        programs = corpus_programs(0.0)
        poison = programs[0].name
        path = tmp_path / "serial.json"
        options = CHAOS.replace(fault_plan=kill_plan(poison),
                                checkpoint=path)
        batch = run_batch(fresh_cascade(), programs, options)

        assert len(batch.reports) == len(programs)
        report = batch.reports[0]
        assert report.status == STATUS_QUARANTINED
        assert not report.converted
        assert report.fault is not None
        assert report.fault.error_type == "WorkerKilled"
        assert "2 time(s)" in report.fault.message
        assert report.fault.phase == "supervise"
        assert any("calc_index" in link for link in
                   report.fault.cause_chain), \
            "the chained cause must name the injected fault site"
        # Everyone else converted normally.
        assert all(r.converted for r in batch.reports[1:])
        # The quarantined summary is journaled like any other.
        completed = json.loads(path.read_text())["completed"]
        assert completed[0]["status"] == STATUS_QUARANTINED

    def test_quarantine_report_round_trips_the_checkpoint(self, tmp_path):
        """STATUS_QUARANTINED must survive the render/parse round trip
        the parallel merge and the resume path both rely on."""
        programs = corpus_programs(0.0)
        poison = programs[0].name
        path = tmp_path / "serial.json"
        run_batch(fresh_cascade(), programs,
                  CHAOS.replace(fault_plan=kill_plan(poison),
                                checkpoint=path))
        reports = BatchCheckpoint(path).completed_reports(
            [p.name for p in programs])
        assert reports[poison].status == STATUS_QUARANTINED
        assert reports[poison].fault.error_type == "WorkerKilled"

    def test_retry_budget_is_configurable(self):
        programs = corpus_programs(0.0)
        poison = programs[0].name
        options = CHAOS.replace(fault_plan=kill_plan(poison),
                                max_program_retries=4)
        batch = run_batch(fresh_cascade(), programs, options)
        assert "4 time(s)" in batch.reports[0].fault.message


class TestParallelChaosMatchesSerial:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_kill_worker_completes_and_is_byte_identical(self, tmp_path,
                                                         jobs):
        """The acceptance criterion: with kill_worker faults the batch
        completes the full corpus, the poison program is quarantined,
        and the checkpoint is byte-identical to serial."""
        programs = corpus_programs(0.0)
        poison = programs[0].name
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / f"parallel{jobs}.json"
        plan = kill_plan(poison)

        serial = run_batch(fresh_cascade(), programs,
                           CHAOS.replace(fault_plan=plan,
                                         checkpoint=serial_path))
        parallel = run_parallel_batch(
            fresh_cascade(), programs,
            CHAOS.replace(fault_plan=plan, jobs=jobs,
                          checkpoint=parallel_path))

        assert summaries(parallel) == summaries(serial)
        assert parallel_path.read_bytes() == serial_path.read_bytes()
        assert parallel.reports[0].status == STATUS_QUARANTINED
        assert not list(tmp_path.glob("*.shard*"))
        assert no_workers_left()

    def test_bisection_isolates_poison_in_a_multi_program_chunk(
            self, tmp_path):
        """With 3-program chunks the dead worker's chunk is bisected
        on redelivery until the poison program sits alone; its innocent
        chunk-mates convert normally."""
        programs = corpus_programs(0.0)
        poison = programs[0].name
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        plan = kill_plan(poison)

        serial = run_batch(fresh_cascade(), programs,
                           CHAOS.replace(fault_plan=plan,
                                         checkpoint=serial_path))
        registry = get_registry()
        before = registry.snapshot()
        parallel = run_parallel_batch(
            fresh_cascade(), programs,
            CHAOS.replace(fault_plan=plan, jobs=2, chunk_size=3,
                          checkpoint=parallel_path))
        delta = registry_delta(before, registry.snapshot())

        assert summaries(parallel) == summaries(serial)
        assert parallel_path.read_bytes() == serial_path.read_bytes()
        assert [r.status for r in parallel.reports].count(
            STATUS_QUARANTINED) == 1
        assert delta.get("supervision.respawns", 0) >= 3, \
            "each bisection redelivery kills (and respawns) a worker"
        assert delta.get("supervision.chunks_redealt", 0) >= 2

    def test_supervision_counters_match_serial(self):
        """supervision.quarantined and supervision.timeouts must be
        equal serial vs parallel (timeouts bump inside the worker and
        ship home through the registry-delta merge)."""
        programs = corpus_programs(0.0)
        registry = get_registry()
        options = CHAOS.replace(fault_plan=kill_plan(programs[0].name))
        for parallel_mode in (False, True):
            cascade = fresh_cascade()  # gc.collect()s before the snapshot
            before = registry.snapshot()
            if parallel_mode:
                run_parallel_batch(cascade, programs,
                                   options.replace(jobs=2))
            else:
                run_batch(cascade, programs, options)
            delta = registry_delta(before, registry.snapshot())
            assert delta.get("supervision.quarantined", 0) == 1

    def test_interrupt_and_resume_mid_chaos_is_byte_identical(
            self, tmp_path):
        """Ctrl-C while the supervisor is mid-chaos still drains to a
        resumable journal, and the resumed run (same fault plan)
        converges to the serial bytes."""
        programs = corpus_programs(0.0)
        poison = programs[0].name
        plan = kill_plan(poison)
        serial_path = tmp_path / "serial.json"
        run_batch(fresh_cascade(), programs,
                  CHAOS.replace(fault_plan=plan, checkpoint=serial_path))

        path = tmp_path / "batch.json"
        executor = ParallelExecutor(
            fresh_cascade(), programs,
            CHAOS.replace(fault_plan=plan, jobs=2, chunk_size=1,
                          drain_timeout=2.0, checkpoint=path))
        with inject(executor, "_receive", nth=2,
                    make_error=KeyboardInterrupt):
            with pytest.raises(KeyboardInterrupt):
                executor.run()
        assert no_workers_left()
        assert BatchCheckpoint(path).exists()

        resumed = run_parallel_batch(
            fresh_cascade(), programs,
            CHAOS.replace(fault_plan=plan, jobs=2, checkpoint=path,
                          resume=True))
        assert len(resumed.reports) == len(programs)
        assert path.read_bytes() == serial_path.read_bytes()
        assert no_workers_left()


class TestResumeAfterQuarantine:
    def test_quarantined_program_is_not_rerun_on_resume(self, tmp_path):
        """A checkpoint holding a STATUS_QUARANTINED entry resumes
        without re-running the poison program: the resumed run carries
        no fault plan, so a re-run would *succeed* and change the
        bytes -- byte-identity proves the entry was honored."""
        programs = corpus_programs(0.0)
        poison = programs[0].name
        path = tmp_path / "batch.json"
        run_batch(fresh_cascade(), programs,
                  CHAOS.replace(fault_plan=kill_plan(poison),
                                checkpoint=path))
        reference_bytes = path.read_bytes()

        # Drop the last completed entry (not the quarantined one) so
        # the resume has real work to do.
        data = json.loads(path.read_text())
        assert data["completed"][0]["status"] == STATUS_QUARANTINED
        data["completed"] = data["completed"][:-1]
        path.write_text(json.dumps(data, indent=2) + "\n")

        resumed = run_batch(fresh_cascade(), programs,
                            CHAOS.replace(checkpoint=path, resume=True))
        assert resumed.reports[0].status == STATUS_QUARANTINED
        assert path.read_bytes() == reference_bytes

    def test_parallel_resume_honors_quarantine_too(self, tmp_path):
        programs = corpus_programs(0.0)
        poison = programs[0].name
        path = tmp_path / "batch.json"
        run_batch(fresh_cascade(), programs,
                  CHAOS.replace(fault_plan=kill_plan(poison),
                                checkpoint=path))
        reference_bytes = path.read_bytes()

        data = json.loads(path.read_text())
        data["completed"] = data["completed"][:3]
        path.write_text(json.dumps(data, indent=2) + "\n")

        resumed = run_parallel_batch(
            fresh_cascade(), programs,
            CHAOS.replace(jobs=2, checkpoint=path, resume=True))
        assert resumed.reports[0].status == STATUS_QUARANTINED
        assert path.read_bytes() == reference_bytes


class TestWatchdog:
    def test_deadline_fails_a_runaway_program_deterministically(self):
        """The cooperative watchdog: a hang fault stalls conversion
        past the deadline, the interpreter's next statement check
        raises, and the failure message names the *limit* (never the
        elapsed time), so the report is deterministic."""
        programs = corpus_programs(0.0)
        hung = programs[0].name
        options = CHAOS.replace(fault_plan=hang_plan(hung),
                                program_timeout=0.3)
        batch = run_batch(fresh_cascade(), programs, options)
        report = batch.reports[0]
        assert report.status == STATUS_FAILED
        assert "0.3s conversion deadline" in str(report.failure) or \
            any("0.3s conversion deadline" in link
                for link in report.fault.cause_chain) or \
            "0.3s conversion deadline" in report.fault.message
        assert all(r.converted for r in batch.reports[1:])

    def test_hang_report_is_byte_identical_serial_vs_parallel(
            self, tmp_path):
        programs = corpus_programs(0.0)
        hung = programs[0].name
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        options = CHAOS.replace(fault_plan=hang_plan(hung),
                                program_timeout=0.3)

        serial = run_batch(fresh_cascade(), programs,
                           options.replace(checkpoint=serial_path))
        parallel = run_parallel_batch(
            fresh_cascade(), programs,
            options.replace(jobs=2, checkpoint=parallel_path))
        assert summaries(parallel) == summaries(serial)
        assert parallel_path.read_bytes() == serial_path.read_bytes()

    def test_hang_without_deadline_raises_an_explanatory_fault(self):
        """A hang fault with no armed deadline cannot be recovered
        cooperatively; it fails fast with a message pointing at
        program_timeout instead of spinning forever."""
        programs = corpus_programs(0.0)
        hung = programs[0].name
        options = CHAOS.replace(fault_plan=hang_plan(hung))
        batch = run_batch(fresh_cascade(), programs, options)
        report = batch.reports[0]
        assert report.status == STATUS_FAILED
        assert "program_timeout" in str(report.failure)

    def test_program_deadline_unit(self):
        import time

        with pytest.raises(ValueError, match="program_timeout"):
            with program_deadline(0):
                pass
        with program_deadline(0.001):
            deadline_hit = False
            try:
                time.sleep(0.005)
                # Interpreter hosts the check; here we just confirm the
                # context var is armed and scoped.
                from repro.programs.interpreter import active_deadline
                assert active_deadline() is not None
                deadline, limit = active_deadline()
                assert limit == 0.001
                deadline_hit = time.monotonic() >= deadline
            finally:
                pass
            assert deadline_hit
        from repro.programs.interpreter import active_deadline
        assert active_deadline() is None

    def test_watchdog_failure_is_the_program_timeout_type(self):
        """ProgramTimeout is an InterpreterError carrying the program
        name and a 'watchdog' phase for the fault context chain."""
        error = ProgramTimeout("deadline", program="P")
        assert error.program == "P"
        assert error.phase == "watchdog"


class TestRespawnBudget:
    def test_crash_looping_pool_fails_with_resume_hint(self, tmp_path):
        """Deaths that re-deal no *unfinished* work (every dealt chunk
        already journaled) are unproductive; exceeding the budget
        raises instead of respawning forever."""
        programs = corpus_programs(0.0)
        names = [p.name for p in programs]
        journal = BatchCheckpoint(tmp_path / "batch.json")
        fake_summaries = [{"program": name, "status": "converted"}
                          for name in names]
        for worker_id in range(6):
            journal.shard(worker_id).write_summaries(names, fake_summaries)

        class FakePool:
            jobs = 2

            def __init__(self):
                self._active = [0, 1]
                self._next = 2

            def active_ids(self):
                return list(self._active)

            def dead_workers(self):
                return list(self._active)

            def retire(self, worker_id):
                self._active.remove(worker_id)

            def respawn(self):
                worker_id = self._next
                self._next += 1
                self._active.append(worker_id)
                return worker_id

            def send(self, worker_id, message):
                pass

            def receive(self, timeout):
                from queue import Empty
                raise Empty

        executor = ParallelExecutor(
            fresh_cascade(), programs,
            CHAOS.replace(max_worker_respawns=1, checkpoint=journal.path))
        with pytest.raises(ParallelExecutionError,
                           match="crash-looping.*resume"):
            executor._run_pool(FakePool(), programs, names, journal,
                               False, {})

    def test_poll_and_drain_validation(self):
        executor = ParallelExecutor(fresh_cascade(), [], CHAOS.replace(
            poll_interval=0.0))
        with pytest.raises(ValueError, match="poll_interval"):
            executor._run_pool(object(), [], [], None, False, {})
        executor = ParallelExecutor(fresh_cascade(), [], CHAOS.replace(
            drain_timeout=-1.0))
        with pytest.raises(ValueError, match="drain_timeout"):
            executor._run_pool(object(), [], [], None, False, {})


class TestFaultPlanKinds:
    def test_default_plans_are_unchanged_by_the_kinds_parameter(self):
        names = [f"P{i}" for i in range(20)]
        default = plan_faults(seed=7, program_names=names, rate=0.75)
        explicit = plan_faults(seed=7, program_names=names, rate=0.75,
                               kinds=(KIND_RAISE,))
        assert default == explicit
        assert all(f.kind == KIND_RAISE for f in default.faults)

    def test_multi_kind_plans_keep_the_fault_sites(self):
        """The kind is drawn last: offering more kinds must not move
        where the faults land under the same seed."""
        names = [f"P{i}" for i in range(20)]
        single = plan_faults(seed=7, program_names=names, rate=0.75)
        multi = plan_faults(seed=7, program_names=names, rate=0.75,
                            kinds=FAULT_KINDS)
        def sites(plan):
            return [(f.target, f.method, f.nth, f.program)
                    for f in plan.faults]

        assert sites(multi) == sites(single)
        assert {f.kind for f in multi.faults} > {KIND_RAISE}, \
            "seed 7 over 20 programs must draw a chaos kind somewhere"

    def test_kinds_are_validated(self):
        with pytest.raises(ValueError, match="at least one"):
            plan_faults(seed=1, program_names=["P"], kinds=())
        with pytest.raises(ValueError, match="unknown fault kind"):
            plan_faults(seed=1, program_names=["P"], kinds=("bogus",))

    def test_seeded_multi_kind_chaos_matches_serial(self, tmp_path):
        """The full chaos surface end to end: a seeded plan mixing
        raise, kill_worker, and hang kinds produces byte-identical
        checkpoints serial vs parallel."""
        programs = corpus_programs(0.0, size=8, seed=11)
        plan = plan_faults(seed=5, rate=0.9,
                           program_names=[p.name for p in programs],
                           kinds=(KIND_RAISE, KIND_KILL_WORKER))
        assert any(f.kind == KIND_KILL_WORKER for f in plan.faults), \
            "seed 5 must plan at least one worker kill"
        options = CHAOS.replace(fault_plan=plan, program_timeout=5.0)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"

        serial = run_batch(fresh_cascade(), programs,
                           options.replace(checkpoint=serial_path))
        parallel = run_parallel_batch(
            fresh_cascade(), programs,
            options.replace(jobs=3, checkpoint=parallel_path))
        assert summaries(parallel) == summaries(serial)
        assert parallel_path.read_bytes() == serial_path.read_bytes()
        assert no_workers_left()


class TestOptionsPlumbing:
    def test_supervision_defaults(self):
        options = ConversionOptions()
        assert options.program_timeout is None
        assert options.max_worker_respawns == 3
        assert options.max_program_retries == 2
        assert options.poll_interval == 0.2
        assert options.drain_timeout == 30.0

    def test_replace_carries_supervision_fields(self):
        options = ConversionOptions().replace(program_timeout=1.5,
                                              poll_interval=0.01)
        assert options.program_timeout == 1.5
        assert options.poll_interval == 0.01
        assert options.replace(jobs=2).program_timeout == 1.5


class TestCliExitCodes:
    def test_parallel_failure_exits_3_with_resume_hint(
            self, tmp_path, capsys, monkeypatch):
        from repro import api
        from repro.cli import main
        from repro.workloads.company import FIGURE_4_3_DDL

        ddl = tmp_path / "company.ddl"
        ddl.write_text(FIGURE_4_3_DDL)
        spec = tmp_path / "fig44.spec"
        spec.write_text("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP "
                        "AS DIV-DEPT, DEPT-EMP.\n")
        prog = tmp_path / "p.cob"
        prog.write_text("PROGRAM P (network / COMPANY-NAME).\n"
                        "  FIND ANY DIV USING DIV-NAME='MACHINERY'.\n")

        def boom(*args, **kwargs):
            raise ParallelExecutionError("worker pool is crash-looping")

        monkeypatch.setattr(api, "convert_batch", boom)
        code = main(["convert", "--ddl", str(ddl), "--spec", str(spec),
                     "--program", str(prog), "--program", str(prog),
                     "--checkpoint", str(tmp_path / "ckpt.json"),
                     "--jobs", "2"])
        captured = capsys.readouterr()
        assert code == 3
        assert "--resume" in captured.err
        assert "crash-looping" in captured.err

    def test_program_timeout_flag_reaches_the_options(
            self, tmp_path, capsys, monkeypatch):
        from repro import api
        from repro.cli import main
        from repro.core.report import BatchReport
        from repro.workloads.company import FIGURE_4_3_DDL

        ddl = tmp_path / "company.ddl"
        ddl.write_text(FIGURE_4_3_DDL)
        spec = tmp_path / "fig44.spec"
        spec.write_text("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP "
                        "AS DIV-DEPT, DEPT-EMP.\n")
        prog = tmp_path / "p.cob"
        prog.write_text("PROGRAM P (network / COMPANY-NAME).\n"
                        "  FIND ANY DIV USING DIV-NAME='MACHINERY'.\n")

        seen = {}

        def capture(cascade, programs, options=None, **kwargs):
            seen["options"] = options
            return BatchReport()

        monkeypatch.setattr(api, "convert_batch", capture)
        code = main(["convert", "--ddl", str(ddl), "--spec", str(spec),
                     "--program", str(prog), "--program", str(prog),
                     "--program-timeout", "2.5"])
        assert code == 0
        assert seen["options"].program_timeout == 2.5

    def test_exit_codes_documented_in_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["convert", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "130" in out
