"""Tests for the vertical-partition operator (ExtractFields) and its
program conversion rule."""

import pytest

from repro.core import ConversionSupervisor, check_equivalence
from repro.errors import InformationLoss, RestructureError
from repro.programs import ast
from repro.programs import builder as b
from repro.restructure import (
    ExtractFields,
    InlineFields,
    restructure_database,
)
from repro.workloads import company


@pytest.fixture
def extract_op():
    """Split EMP's personal data (AGE) into an EMP-DETAIL record."""
    return ExtractFields("EMP", ("AGE",), "EMP-DETAIL", "EMP-DATA")


class TestSchemaAndData:
    def test_schema_shape(self, company_schema, extract_op):
        target = extract_op.apply_schema(company_schema)
        assert target.record("EMP-DETAIL").has_field("AGE")
        assert target.record("EMP").field("AGE").is_virtual
        link = target.set_type("EMP-DATA")
        assert link.owner == "EMP-DETAIL"
        assert link.member == "EMP"

    def test_data_translation_one_to_one(self, company_db, extract_op):
        _schema, target_db = restructure_database(company_db, extract_op)
        assert target_db.count("EMP-DETAIL") == target_db.count("EMP")
        for record in target_db.store("EMP").all_records():
            assert "AGE" not in record.values
            assert target_db.read_field(record, "AGE") is not None
        target_db.verify_consistent()

    def test_inverse_round_trip(self, company_db, company_schema,
                                extract_op):
        _ts, target_db = restructure_database(company_db, extract_op)
        inverse = extract_op.inverse(company_schema)
        assert isinstance(inverse, InlineFields)
        _bs, back_db = restructure_database(target_db, inverse)
        original = sorted(tuple(sorted(r.values.items()))
                          for r in company_db.store("EMP").all_records())
        returned = sorted(tuple(sorted(r.values.items()))
                          for r in back_db.store("EMP").all_records())
        assert original == returned

    def test_cannot_extract_calc_key(self, company_schema):
        with pytest.raises(RestructureError):
            ExtractFields("EMP", ("EMP-NAME",), "X", "L").apply_schema(
                company_schema)

    def test_cannot_extract_order_key(self, company_schema):
        with pytest.raises(RestructureError):
            ExtractFields("EMP", ("EMP-NAME",), "X", "L").apply_schema(
                company_schema)

    def test_cannot_extract_virtual(self, company_schema):
        with pytest.raises(RestructureError):
            ExtractFields("EMP", ("DIV-NAME",), "X", "L").apply_schema(
                company_schema)

    def test_inline_refuses_extra_fields(self, company_schema,
                                         extract_op):
        target = extract_op.apply_schema(company_schema)
        bad = InlineFields("EMP", (), "EMP-DETAIL", "EMP-DATA")
        with pytest.raises(InformationLoss):
            bad.apply_schema(target)


class TestProgramConversion:
    def convert_and_check(self, program, extract_op, inputs=None,
                          seed=42):
        schema = company.figure_42_schema()
        supervisor = ConversionSupervisor(schema, extract_op)
        report = supervisor.convert_program(program)
        assert report.target_program is not None, report.failure
        source_db = company.company_db(seed=seed)
        _ts, target_db = restructure_database(
            company.company_db(seed=seed), extract_op)
        result = check_equivalence(program, source_db,
                                   report.target_program, target_db,
                                   inputs=inputs,
                                   warnings=tuple(report.warnings))
        return result, report, target_db

    def test_reads_unchanged_and_equivalent(self, extract_op):
        program = b.program("READER", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.if_(b.gt(b.field("EMP", "AGE"), 45), [
                    b.display(b.field("EMP", "EMP-NAME"),
                              b.field("EMP", "AGE")),
                ]),
            ]),
        ])
        result, _report, _db = self.convert_and_check(program, extract_op)
        assert result.equivalent
        assert result.level == "strict"

    def test_store_splits_across_both_records(self, extract_op):
        program = b.program("HIRE", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            b.store("EMP", **{"EMP-NAME": "ZZ-SPLIT", "AGE": 33,
                              "DEPT-NAME": "SALES",
                              "DIV-NAME": "MACHINERY"}),
            b.display("HIRED"),
        ])
        result, report, target_db = self.convert_and_check(program,
                                                           extract_op)
        assert result.equivalent
        assert any("splits" in note for note in report.notes)
        stored = [r for r in target_db.store("EMP").all_records()
                  if r["EMP-NAME"] == "ZZ-SPLIT"]
        assert stored
        assert target_db.read_field(stored[0], "AGE") == 33
        target_db.verify_consistent()

    def test_modify_routes_to_extracted_record(self, extract_op):
        program = b.program("BIRTHDAY", "network", "COMPANY-NAME", [
            b.find_any("EMP", **{"EMP-NAME": "CLARK-0000"}),
            b.if_(ast.status_ok(), [
                b.get("EMP"),
                b.modify("EMP", **{
                    "AGE": b.add(b.field("EMP", "AGE"), 1),
                }),
                b.get("EMP"),
                b.display(b.field("EMP", "EMP-NAME"),
                          b.field("EMP", "AGE")),
            ], [b.display("MISSING")]),
        ])
        result, report, target_db = self.convert_and_check(
            program, extract_op, seed=1979)
        assert result.equivalent, result.divergence
        assert any("routed" in note for note in report.notes)
        target_db.verify_consistent()

    def test_erase_removes_partner(self, extract_op):
        program = b.program("FIRE", "network", "COMPANY-NAME", [
            b.find_any("EMP", **{"EMP-NAME": "CLARK-0000"}),
            b.if_(ast.status_ok(), [
                b.erase("EMP"),
                b.display("FIRED"),
            ], [b.display("MISSING")]),
        ])
        result, _report, target_db = self.convert_and_check(
            program, extract_op, seed=1979)
        assert result.equivalent
        # partner detail removed too: counts stay 1:1
        assert target_db.count("EMP-DETAIL") == target_db.count("EMP")
        target_db.verify_consistent()

    def test_locate_by_extracted_field_still_works(self, extract_op):
        """find_any on a now-virtual field resolves through the link."""
        program = b.program("BY-AGE", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            b.find_any("EMP", **{"AGE": 44}),
            b.display(b.v("DB-STATUS")),
        ])
        result, _report, _db = self.convert_and_check(program, extract_op,
                                                      seed=1979)
        assert result.equivalent

    def test_inline_conversion_round_trip(self, extract_op,
                                          company_schema):
        """Programs converted for extract, then for inline, behave like
        the original."""
        program = b.program("READER", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.display(b.field("EMP", "AGE")),
            ]),
        ])
        schema = company.figure_42_schema()
        forward = ConversionSupervisor(schema, extract_op)
        report_1 = forward.convert_program(program)
        target_schema = extract_op.apply_schema(schema)
        backward = ConversionSupervisor(target_schema,
                                        extract_op.inverse(schema))
        report_2 = backward.convert_program(report_1.target_program)
        assert report_2.target_program is not None, report_2.failure
        source_db = company.company_db(seed=7)
        result = check_equivalence(program, source_db,
                                   report_2.target_program,
                                   company.company_db(seed=7))
        assert result.equivalent
