"""Cross-model program generation (the Section 4.1 claim that one
abstract representation regenerates programs for any DBMS)."""

import pytest

from repro.core import ProgramAnalyzer, ProgramGenerator
from repro.core.generator import _RelationalLowering
from repro.errors import GenerationError
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.interpreter import run_program
from repro.restructure import extract_snapshot, load_hierarchical, \
    load_relational
from repro.workloads import florida


@pytest.fixture
def schema():
    return florida.florida_schema()


@pytest.fixture
def abstract(schema):
    return florida.smith_query_abstract()


class TestNetworkGeneration:
    def test_emits_canonical_templates(self, schema, abstract):
        program = ProgramGenerator(schema).generate(abstract, "network")
        text = ast.render_program(program)
        assert "FIND ANY DEPT USING MGR='SMITH'" in text
        assert "FIND FIRST EMP-DEPT WITHIN D-ED" in text
        assert "FIND OWNER WITHIN E-ED" in text

    def test_generated_program_runs(self, schema, abstract, florida_db):
        program = ProgramGenerator(schema).generate(abstract, "network")
        trace = run_program(program, florida_db, consistent=False)
        assert trace.terminal_lines()

    def test_keyed_scan_emits_template_b(self, schema):
        """Equality conditions produce FIND NEXT ... USING (template B)."""
        from repro.core.abstract import ACond, ALocate, AScan, \
            AbstractProgram

        abstract = AbstractProgram("T", "network", "FLORIDA", (
            ALocate("DEPT", (ACond("D#", "=", ast.Const("D2")),),
                    bind=False),
            AScan("EMP-DEPT", florida.DEPT_ED,
                  (ACond("YEAR-OF-SERVICE", "=", ast.Const(3)),),
                  (b.display("HIT"),), bind=True, keyed=True),
        ))
        program = ProgramGenerator(schema).generate(abstract, "network")
        text = ast.render_program(program)
        assert "FIND NEXT EMP-DEPT WITHIN D-ED USING " \
            "YEAR-OF-SERVICE=3" in text

    def test_roundtrip_analyze_generate(self, schema, florida_db):
        """analyze(generate(analyze(p))) is stable and equivalent."""
        source = florida.smith_query_network_program()
        analyzer = ProgramAnalyzer(schema)
        abstract1 = analyzer.analyze(source)
        regenerated = ProgramGenerator(schema).generate(abstract1,
                                                        "network")
        trace1 = run_program(source, florida.florida_network_db(),
                             consistent=False)
        trace2 = run_program(regenerated, florida.florida_network_db(),
                             consistent=False)
        assert trace1 == trace2


class TestRelationalGeneration:
    def test_smith_query_generates_and_runs(self, schema, abstract,
                                            florida_db):
        program = ProgramGenerator(schema).generate(abstract,
                                                    "relational")
        assert program.model == "relational"
        rdb = load_relational(schema, extract_snapshot(florida_db))
        trace = run_program(program, rdb, consistent=False)
        network_trace = run_program(
            florida.smith_query_network_program(),
            florida.florida_network_db(seed=11), consistent=False)
        assert sorted(trace.terminal_lines()) == \
            sorted(network_trace.terminal_lines())

    def test_scan_query_carries_fk_conditions(self, schema, abstract):
        program = ProgramGenerator(schema).generate(abstract,
                                                    "relational")
        queries = [s for s in ast.walk(program.statements)
                   if isinstance(s, ast.RelQuery)]
        scan_queries = [q for q in queries if "EMP-DEPT" in q.sequel]
        assert scan_queries
        assert "D# = ?DEPT.D#" in scan_queries[0].sequel

    def test_store_gains_fk_columns_from_position(self, schema):
        from repro.core.abstract import ACond, ALocate, AStore, \
            AbstractProgram

        abstract = AbstractProgram("T", "network", "FLORIDA", (
            ALocate("DEPT", (ACond("D#", "=", ast.Const("D1")),),
                    bind=True),
            AStore("EMP-DEPT",
                   (("YEAR-OF-SERVICE", ast.Const(1)),)),
        ))
        program = ProgramGenerator(schema).generate(abstract,
                                                    "relational")
        inserts = [s for s in ast.walk(program.statements)
                   if isinstance(s, ast.RelInsert)]
        columns = dict(inserts[0].values)
        assert "D#" in columns  # filled from the positioned DEPT

    def test_update_needs_position(self, schema):
        from repro.core.abstract import AModify, AbstractProgram

        abstract = AbstractProgram("T", "network", "FLORIDA", (
            AModify("EMP", (("AGE", ast.Const(30)),)),
        ))
        with pytest.raises(GenerationError):
            ProgramGenerator(schema).generate(abstract, "relational")

    def test_value_sql_literals(self, schema):
        lowering = _RelationalLowering(schema)
        assert lowering._value_sql(ast.Const("X")) == ("'X'", [])
        assert lowering._value_sql(ast.Const(5)) == ("5", [])
        text, params = lowering._value_sql(ast.Var("A.B"))
        assert text == "?A.B" and params == ["A.B"]
        with pytest.raises(GenerationError):
            lowering._value_sql(ast.Bin("+", ast.Const(1), ast.Const(2)))


class TestHierarchicalGeneration:
    @pytest.fixture
    def hier_db(self):
        from repro.hierarchical import HierarchicalDatabase
        from repro.schema import Schema

        hier = Schema("SCHOOL-H")
        hier.define_record("COURSE", {"CNO": "X(6)", "CNAME": "X(20)"},
                           calc_keys=["CNO"])
        hier.define_record("OFFERING", {"SECTION": "9(2)"})
        hier.define_set("ALL-COURSE", "SYSTEM", "COURSE",
                        order_keys=["CNO"])
        hier.define_set("COURSE-OFF", "COURSE", "OFFERING",
                        order_keys=["SECTION"])
        db = HierarchicalDatabase(hier)
        course = db.insert_segment("COURSE", {"CNO": "C000",
                                              "CNAME": "DB"})
        db.insert_segment("OFFERING", {"SECTION": 1},
                          ("COURSE", course.rid))
        db.insert_segment("OFFERING", {"SECTION": 2},
                          ("COURSE", course.rid))
        return db

    def test_locate_scan_lowering(self, hier_db):
        from repro.core.abstract import ACond, ALocate, AScan, \
            AbstractProgram

        abstract = AbstractProgram("T", "network", "SCHOOL-H", (
            ALocate("COURSE", (ACond("CNO", "=", ast.Const("C000")),),
                    bind=True),
            AScan("OFFERING", "COURSE-OFF", (), (
                b.display(b.field("OFFERING", "SECTION")),
            ), bind=True),
        ))
        program = ProgramGenerator(hier_db.schema).generate(
            abstract, "hierarchical")
        text = ast.render_program(program)
        assert "GU COURSE(CNO='C000')" in text
        assert "GNP OFFERING" in text
        trace = run_program(program, hier_db, consistent=False)
        assert trace.terminal_lines() == ["1", "2"]

    def test_to_owner_unsupported(self, hier_db):
        from repro.core.abstract import AToOwner, AbstractProgram

        abstract = AbstractProgram("T", "network", "SCHOOL-H", (
            AToOwner("COURSE", "COURSE-OFF"),
        ))
        with pytest.raises(GenerationError):
            ProgramGenerator(hier_db.schema).generate(abstract,
                                                      "hierarchical")


def test_unknown_target_model(schema, abstract):
    with pytest.raises(GenerationError):
        ProgramGenerator(schema).generate(abstract, "object-oriented")


class TestNestedHierarchicalGeneration:
    """SYSTEM-set scans become GN loops (parentage per segment), so
    nested GNP scans work -- a network program retargets to DL/I."""

    @pytest.fixture
    def forest(self):
        from repro.hierarchical import HierarchicalDatabase
        from repro.network import DMLSession, NetworkDatabase
        from repro.schema import Schema

        schema = Schema("SCHOOL-H")
        schema.define_record("COURSE", {"CNO": "X(6)"}, calc_keys=["CNO"])
        schema.define_record("OFFERING", {"S": "X(4)", "SIZE": "9(3)"})
        schema.define_set("ALL-COURSE", "SYSTEM", "COURSE",
                          order_keys=["CNO"])
        schema.define_set("C-OFF", "COURSE", "OFFERING", order_keys=["S"])

        network = NetworkDatabase(schema)
        session = DMLSession(network)
        for cno, terms in (("C1", ("F78", "S79")), ("C2", ("F78",))):
            session.store("COURSE", {"CNO": cno})
            for term in terms:
                session.store("OFFERING", {"S": term, "SIZE": 10})
        from repro.restructure import extract_snapshot, load_hierarchical

        hierarchical = load_hierarchical(schema,
                                         extract_snapshot(network))
        return schema, network, hierarchical

    def test_full_sweep_network_to_hierarchical(self, forest):
        schema, network, hierarchical = forest
        source = b.program("SWEEP", "network", "SCHOOL-H", [
            *b.scan_set("COURSE", "ALL-COURSE", [
                b.display("COURSE", b.field("COURSE", "CNO")),
                *b.scan_set("OFFERING", "C-OFF", [
                    b.display("  OFF", b.field("OFFERING", "S")),
                ]),
            ]),
        ])
        abstract = ProgramAnalyzer(schema).analyze(source)
        hier_program = ProgramGenerator(schema).generate(
            abstract, "hierarchical")
        network_trace = run_program(source, network, consistent=False)
        hier_trace = run_program(hier_program, hierarchical,
                                 consistent=False)
        assert hier_trace == network_trace
        text = ast.render_program(hier_program)
        assert "GN COURSE" in text
        assert "GNP OFFERING" in text
