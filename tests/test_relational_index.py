"""Relational secondary indexes: maintenance, lookups, counters, and
the ``use_indexes=False`` escape hatch.

Base relations in a :class:`RelationalDatabase` carry maintained
HashIndexes over primary-key, foreign-key, and unique-key column tuples
(:func:`index_columns`).  These tests drive them through every mutating
verb and check that the indexed and linear paths agree row-for-row
while the ``index_hits``/``full_scans`` counters tell them apart.
"""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.relational import (
    Relation,
    RelationalDatabase,
    evaluate,
    parse_sequel,
    select_eq,
    select_join,
)
from repro.relational.database import index_columns
from repro.workloads import company


def make_relation(use_indexes: bool = True) -> Relation:
    relation = Relation("EMP", ["EMP-NAME", "DEPT-NAME", "AGE"],
                        use_indexes=use_indexes)
    relation.add_index(("EMP-NAME",))
    relation.add_index(("DEPT-NAME",))
    relation.extend([
        {"EMP-NAME": f"E{i}", "DEPT-NAME": ("SALES", "ENG")[i % 2],
         "AGE": 20 + i}
        for i in range(6)
    ])
    return relation


def test_index_columns_covers_keys_and_fks():
    schema = company.figure_42_schema()
    assert ("DIV-NAME",) in index_columns(schema, "DIV")
    # EMP's CALC key, and the DIV-EMP membership foreign key.
    emp = index_columns(schema, "EMP")
    assert ("EMP-NAME",) in emp
    assert ("DIV-NAME",) in emp


def test_add_index_is_idempotent_and_validates():
    relation = make_relation()
    assert relation.add_index(("EMP-NAME",)) is \
        relation.add_index(("EMP-NAME",))
    with pytest.raises(QueryError):
        relation.add_index(("NO-SUCH",))


def test_lookup_rows_counts_hits_and_respects_escape_hatch():
    relation = make_relation()
    before = relation.metrics.index_hits
    rows = relation.lookup_rows({"DEPT-NAME": "SALES"})
    assert [row["EMP-NAME"] for row in rows] == ["E0", "E2", "E4"]
    assert relation.metrics.index_hits == before + 1

    linear = make_relation(use_indexes=False)
    assert linear.lookup_rows({"DEPT-NAME": "SALES"}) is None
    assert linear.metrics.index_hits == 0


def test_lookup_rows_applies_residual_equality():
    relation = make_relation()
    # AGE is not indexed: the widest covering index (DEPT-NAME) is
    # used and the AGE conjunct filters the candidates.
    rows = relation.lookup_rows({"DEPT-NAME": "SALES", "AGE": 22})
    assert [row["EMP-NAME"] for row in rows] == ["E2"]


def test_indexes_follow_every_mutating_verb():
    relation = make_relation()
    relation.append({"EMP-NAME": "E9", "DEPT-NAME": "SALES", "AGE": 33})
    assert [row["EMP-NAME"]
            for row in relation.lookup_rows({"DEPT-NAME": "SALES"})] == \
        ["E0", "E2", "E4", "E9"]

    relation.update_where(lambda row: row["EMP-NAME"] == "E9",
                          {"DEPT-NAME": "ENG"},
                          equal={"EMP-NAME": "E9"})
    assert all(row["EMP-NAME"] != "E9"
               for row in relation.lookup_rows({"DEPT-NAME": "SALES"}))
    assert relation.lookup_rows({"EMP-NAME": "E9"})[0]["DEPT-NAME"] == "ENG"

    removed = relation.remove_where(lambda row: row["DEPT-NAME"] == "ENG",
                                    equal={"DEPT-NAME": "ENG"})
    assert removed == 4
    assert relation.lookup_rows({"EMP-NAME": "E9"}) == []
    assert [row["EMP-NAME"] for row in relation] == ["E0", "E2", "E4"]


def test_full_scan_counter_on_uncovered_equality():
    relation = make_relation()
    before = relation.metrics.full_scans
    relation.remove_where(lambda row: row["AGE"] == 25, equal={"AGE": 25})
    assert relation.metrics.full_scans == before + 1
    assert len(relation) == 5


def test_lookup_positions_track_deletions():
    relation = make_relation()
    positions = relation.lookup_positions({"EMP-NAME": "E5"})
    assert [pos for pos, _row in positions] == [6]
    relation.remove_where(lambda row: row["EMP-NAME"] == "E0",
                          equal={"EMP-NAME": "E0"})
    # E5 shifted up one position; the lazy map was invalidated.
    positions = relation.lookup_positions({"EMP-NAME": "E5"})
    assert [pos for pos, _row in positions] == [5]


def _mirrored_databases():
    schema = company.figure_42_schema()
    indexed = RelationalDatabase(schema, use_indexes=True)
    linear = RelationalDatabase(schema, use_indexes=False)
    for db in (indexed, linear):
        db.insert_many("DIV", [
            {"DIV-NAME": "MACHINERY", "DIV-LOC": "DETROIT"},
            {"DIV-NAME": "CHEMICAL", "DIV-LOC": "HOUSTON"},
        ])
        db.insert_many("EMP", [
            {"EMP-NAME": f"E{i}", "DEPT-NAME": ("SALES", "ENG")[i % 2],
             "AGE": 20 + i,
             "DIV-NAME": ("MACHINERY", "CHEMICAL")[i % 2]}
            for i in range(8)
        ])
    return indexed, linear


def test_database_verbs_agree_with_linear_copy():
    indexed, linear = _mirrored_databases()
    query = parse_sequel(
        "SELECT EMP-NAME, AGE FROM EMP WHERE DIV-NAME = 'MACHINERY' "
        "ORDER BY EMP-NAME")
    assert evaluate(query, indexed).rows() == evaluate(query, linear).rows()
    assert indexed.metrics.index_hits > 0
    assert linear.metrics.index_hits == 0

    for db in (indexed, linear):
        db.update_where("EMP", lambda row: row["EMP-NAME"] == "E3",
                        {"AGE": 60}, equal={"EMP-NAME": "E3"})
        db.delete_where("EMP", lambda row: row["DEPT-NAME"] == "SALES",
                        equal={"DEPT-NAME": "SALES"})
    assert indexed.relation("EMP").rows() == linear.relation("EMP").rows()


def test_select_eq_and_select_join_match_scans():
    indexed, linear = _mirrored_databases()
    for db, expect_hits in ((indexed, True), (linear, False)):
        emp = db.relation("EMP")
        div = db.relation("DIV")
        selected = select_eq(emp, {"DIV-NAME": "MACHINERY"},
                             predicate=lambda row: row["AGE"] >= 22)
        assert [row["EMP-NAME"] for row in selected.rows()] == \
            ["E2", "E4", "E6"]
        joined = select_join(div, emp, [("DIV-NAME", "DIV-NAME")],
                             right_equal={"DEPT-NAME": "SALES"})
        assert sorted(row["EMP-NAME"] for row in joined.rows()) == \
            ["E0", "E2", "E4", "E6"]
        assert (db.metrics.index_hits > 0) == expect_hits
