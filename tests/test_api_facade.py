"""The repro.api facade, ConversionOptions, and the deprecation shims.

Two invariants matter here: the facade is *the same pipeline* (its
reports are identical to the pre-facade entry points' on the E2
corpus), and the old signatures still work but warn -- exactly once
per shim per process, so a thousand-program batch over a legacy call
site does not print a thousand identical warnings.
"""

import warnings

import pytest

import repro
from repro import api
from repro._deprecation import reset_deprecation_warnings
from repro.batch import convert_batch, run_batch
from repro.core.supervisor import ConversionSupervisor
from repro.options import (
    ConversionOptions,
    DEFAULT_OPTIMIZER_PASSES,
    DEFAULT_STAGE_ORDER,
)
from repro.programs import builder as b
from repro.programs.interpreter import ProgramInputs
from repro.restructure import restructure_database
from repro.schema.ddl import parse_ddl
from repro.strategies.cascade import FallbackCascade
from repro.workloads import company
from repro.workloads.company import FIGURE_4_3_DDL
from repro.workloads.corpus import CorpusSpec, generate_corpus

FIG44_SPEC = ("INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP "
              "AS DIV-DEPT, DEPT-EMP.\n")


def report_program(name="REPORT"):
    return b.program(name, "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.display(b.field("EMP", "EMP-NAME")),
        ]),
        b.display("END"),
    ])


@pytest.fixture
def fresh_shims():
    """Each shim test starts from a clean warn-once slate."""
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _cascade(seed=42):
    operator = company.figure_44_operator()
    source_db = company.company_db(seed=seed)
    _schema, target_db = restructure_database(source_db, operator)
    return FallbackCascade(source_db, target_db, operator)


class TestConversionOptions:
    def test_defaults(self):
        options = ConversionOptions()
        assert options.optimizer_passes == DEFAULT_OPTIMIZER_PASSES
        assert options.order == DEFAULT_STAGE_ORDER
        assert options.jobs == 1
        assert options.resume is False

    def test_replace_returns_modified_copy(self):
        options = ConversionOptions()
        changed = options.replace(jobs=4, target_model="relational")
        assert changed.jobs == 4
        assert changed.target_model == "relational"
        assert options.jobs == 1            # the original is untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ConversionOptions().jobs = 2

    def test_picklable(self):
        import pickle

        options = ConversionOptions(
            inputs=ProgramInputs(terminal=["X"]), jobs=3)
        clone = pickle.loads(pickle.dumps(options))
        assert clone.jobs == 3
        assert clone.inputs.terminal == ["X"]


class TestLoadSchema:
    def test_from_ddl_text(self):
        schema = api.load_schema(FIGURE_4_3_DDL)
        assert schema.name == "COMPANY-NAME"

    def test_from_path(self, tmp_path):
        ddl = tmp_path / "company.ddl"
        ddl.write_text(FIGURE_4_3_DDL)
        assert api.load_schema(ddl).name == "COMPANY-NAME"
        assert api.load_schema(str(ddl)).name == "COMPANY-NAME"

    def test_parsed_schema_passes_through(self):
        schema = parse_ddl(FIGURE_4_3_DDL)
        assert api.load_schema(schema) is schema


class TestFacadeParity:
    def test_convert_matches_supervisor_path(self):
        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        old = ConversionSupervisor(schema, operator).convert_program(
            report_program())
        new = api.convert(FIGURE_4_3_DDL, FIG44_SPEC, report_program())
        assert new.to_summary() == old.to_summary()
        assert new.metrics == old.metrics

    def test_convert_parity_on_e2_corpus(self):
        """The facade is the same pipeline: identical reports, program
        by program, over an E2-style corpus with pathologies."""
        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        corpus = generate_corpus(CorpusSpec(seed=1979, size=12,
                                            pathology_rate=0.25))
        supervisor = ConversionSupervisor(schema, operator)
        options = ConversionOptions(target_model="relational")
        for item in corpus:
            old = supervisor.convert_program(item.program,
                                             options=options)
            new = api.convert(schema, operator, item.program, options)
            assert new.to_summary() == old.to_summary(), item.program.name

    def test_convert_batch_matches_run_batch(self, tmp_path):
        programs = [report_program("P1"), report_program("P2")]
        options = ConversionOptions(checkpoint=tmp_path / "facade.json")
        new = api.convert_batch(_cascade(), programs, options)
        old = run_batch(_cascade(), programs,
                        options.replace(checkpoint=tmp_path / "old.json"))
        assert [r.to_summary() for r in new.reports] == \
            [r.to_summary() for r in old.reports]
        assert (tmp_path / "facade.json").read_bytes() == \
            (tmp_path / "old.json").read_bytes()

    def test_cli_single_convert_routes_through_facade(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        from repro.programs.ast import render_program

        ddl = tmp_path / "company.ddl"
        ddl.write_text(FIGURE_4_3_DDL)
        spec = tmp_path / "fig44.spec"
        spec.write_text(FIG44_SPEC)
        program = tmp_path / "report.cob"
        program.write_text(render_program(report_program()))
        assert main(["convert", "--ddl", str(ddl), "--spec", str(spec),
                     "--program", str(program)]) == 0
        cli_out = capsys.readouterr().out
        report = api.convert(FIGURE_4_3_DDL, FIG44_SPEC, report_program())
        assert cli_out == render_program(report.target_program)

    def test_run_bench_rejects_unknown_suite(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            api.run_bench("nonsense")


class TestCuratedNamespace:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_facade_exposed_at_top_level(self):
        assert repro.convert is api.convert
        assert repro.convert_batch is api.convert_batch
        assert repro.ConversionOptions is ConversionOptions


@pytest.mark.deprecated_api
@pytest.mark.filterwarnings("always::DeprecationWarning")
class TestDeprecationShims:
    def _assert_warns_once(self, call, match):
        with pytest.warns(DeprecationWarning, match=match):
            call()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
        leaked = [w for w in caught
                  if issubclass(w.category, DeprecationWarning)]
        assert not leaked, "shim must warn exactly once per process"

    def test_convert_program_target_model_warns_once(self, fresh_shims):
        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        supervisor = ConversionSupervisor(schema, operator)
        self._assert_warns_once(
            lambda: supervisor.convert_program(report_program(),
                                               "relational"),
            match="target_model")

    def test_convert_system_target_model_warns_once(self, fresh_shims):
        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        supervisor = ConversionSupervisor(schema, operator)
        self._assert_warns_once(
            lambda: supervisor.convert_system([report_program()],
                                              "relational"),
            match="target_model")

    def test_cascade_inputs_warns_once(self, fresh_shims):
        cascade = _cascade()
        self._assert_warns_once(
            lambda: cascade.convert(report_program(),
                                    ProgramInputs()),
            match="inputs")

    def test_convert_batch_shim_warns_once_and_matches(self, fresh_shims,
                                                       tmp_path):
        programs = [report_program("P1")]
        with pytest.warns(DeprecationWarning, match="convert_batch"):
            old = convert_batch(_cascade(), programs,
                                checkpoint=tmp_path / "old.json")
        new = run_batch(_cascade(), programs,
                        ConversionOptions(checkpoint=tmp_path / "new.json"))
        assert [r.to_summary() for r in old.reports] == \
            [r.to_summary() for r in new.reports]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            convert_batch(_cascade(), programs)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_shim_target_model_equals_options_path(self, fresh_shims):
        schema = company.figure_42_schema()
        operator = company.figure_44_operator()
        supervisor = ConversionSupervisor(schema, operator)
        with pytest.warns(DeprecationWarning):
            old = supervisor.convert_program(report_program(),
                                             "relational")
        new = supervisor.convert_program(
            report_program(),
            options=ConversionOptions(target_model="relational"))
        assert old.to_summary() == new.to_summary()

    def test_variable_verb_programs_still_route_via_options(self):
        """The options path carries verb pins through from_options."""
        program = b.program("CONSOLE", "network", "COMPANY-NAME", [
            b.accept("V"),
            b.generic_call(b.v("V"), "EMP", **{"EMP-NAME": "X"}),
            b.display("OK"),
        ])
        options = ConversionOptions(
            verb_pins={"CONSOLE": {0: "FIND-ANY"}})
        supervisor = ConversionSupervisor.from_options(
            company.figure_42_schema(), company.figure_44_operator(),
            options=options)
        report = supervisor.convert_program(program, options=options)
        assert report.status == "analyst-assisted"
