"""The relational application system: conversion sensitivity contrast.

Under the Figure 4.4 restructuring the relational EMP relation keeps a
DEPT-NAME column (as a foreign key into the new DEPT relation), so
set-at-a-time programs are largely insensitive to the change -- the
data-independence contrast that Section 1.2 notes 1979 systems lacked
("nor do systems provide data independence at a level which allows
wide flexibility").
"""

import pytest

from repro.core import ConversionSupervisor, RefusingAnalyst
from repro.core.report import STATUS_AUTOMATIC
from repro.options import ConversionOptions
from repro.programs.interpreter import run_program
from repro.restructure import (
    extract_snapshot,
    load_relational,
    restructure_database,
)
from repro.workloads import company
from repro.workloads.corpus import (
    CorpusSpec,
    RELATIONAL_KINDS,
    generate_corpus,
    generate_relational_corpus,
)


@pytest.fixture(scope="module")
def relational_corpus():
    return generate_relational_corpus(CorpusSpec(seed=1979, size=40))


def make_relational_pair(seed=1979):
    operator = company.figure_44_operator()
    source_network = company.company_db(seed=seed)
    source = load_relational(source_network.schema,
                             extract_snapshot(source_network))
    target_schema, target_network = restructure_database(
        company.company_db(seed=seed), operator)
    target = load_relational(target_schema,
                             extract_snapshot(target_network))
    return source, target


def test_corpus_shape(relational_corpus):
    assert len(relational_corpus) == 40
    kinds = {item.kind for item in relational_corpus}
    assert kinds <= set(RELATIONAL_KINDS)
    for item in relational_corpus:
        assert item.program.model == "relational"


def test_every_relational_program_runs(relational_corpus):
    source, _target = make_relational_pair()
    for item in relational_corpus:
        trace = run_program(item.program, source, consistent=False)
        assert trace is not None


def test_all_convert_automatically(relational_corpus):
    """The data-independence headline: 100% mechanical automation for
    the relational inventory under the same restructuring."""
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator,
                                      analyst=RefusingAnalyst())
    batch = supervisor.convert_system(
        [item.program for item in relational_corpus],
        options=ConversionOptions(target_model="relational"))
    assert batch.automation_rate() == 1.0
    counts = batch.counts()
    # only the hire programs (which touch the moved DEPT-NAME on a
    # STORE) carry conversion notes; everything else is untouched
    assert counts.get(STATUS_AUTOMATIC, 0) >= len(relational_corpus) // 2


def test_converted_relational_programs_equivalent(relational_corpus):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)
    diverged = []
    for item in relational_corpus[:20]:
        report = supervisor.convert_program(
            item.program,
            options=ConversionOptions(target_model="relational"))
        assert report.target_program is not None, report.failure
        source, target = make_relational_pair()
        source_trace = run_program(item.program, source,
                                   consistent=False)
        target_trace = run_program(report.target_program, target,
                                   consistent=False)
        if source_trace != target_trace:
            diverged.append(item.program.name)
    assert diverged == []


def test_hire_creates_group_row(relational_corpus):
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)
    hire = next(item for item in relational_corpus
                if item.kind == "rel-hire")
    report = supervisor.convert_program(
        hire.program,
        options=ConversionOptions(target_model="relational"))
    _source, target = make_relational_pair()
    departments_before = target.count("DEPT")
    run_program(report.target_program, target, consistent=False)
    # the department existed already (populate seeds SALES/ENG/...), so
    # no new group; force a novel department to check creation:
    from repro.programs import builder as b

    novel = b.program("NOVEL-HIRE", "relational", "COMPANY-NAME", [
        b.rel_insert("EMP", **{
            "EMP-NAME": "RNOVEL", "DEPT-NAME": "ROBOTICS",
            "AGE": 30, "DIV-NAME": "MACHINERY",
        }),
        b.display("OK"),
    ])
    report = supervisor.convert_program(
        novel, options=ConversionOptions(target_model="relational"))
    run_program(report.target_program, target, consistent=False)
    robotics = [r for r in target.relation("DEPT").rows()
                if r["DEPT-NAME"] == "ROBOTICS"]
    assert robotics
    assert robotics[0]["DIV-NAME"] == "MACHINERY"
    del departments_before


def test_network_twin_needs_more_conversion():
    """Contrast: the navigational inventory converts with warnings and
    nested rewrites, the relational one passes through untouched."""
    from repro.programs import ast as ast_mod

    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    supervisor = ConversionSupervisor(schema, operator)

    network_corpus = generate_corpus(CorpusSpec(seed=1979, size=40,
                                                pathology_rate=0.0))
    relational_corpus = generate_relational_corpus(
        CorpusSpec(seed=1979, size=40))

    def rewrite_fraction(corpus, target_model):
        changed = 0
        converted = 0
        for item in corpus:
            report = supervisor.convert_program(
                item.program,
                options=ConversionOptions(target_model=target_model))
            if report.target_program is None:
                continue
            converted += 1
            before = sum(1 for _ in ast_mod.walk_program(item.program))
            after = sum(1 for _ in
                        ast_mod.walk_program(report.target_program))
            if after != before or report.notes or report.warnings:
                changed += 1
        return changed / converted

    network_changed = rewrite_fraction(network_corpus, "network")
    relational_changed = rewrite_fraction(relational_corpus,
                                          "relational")
    assert relational_changed < network_changed
