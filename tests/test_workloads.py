"""Tests for the workload builders and the corpus generator."""

from repro.analysis import detect_pathologies
from repro.network import DMLSession
from repro.programs.interpreter import ProgramInputs, run_program
from repro.workloads import DataGen, company, corpus, school
from repro.workloads.corpus import CorpusSpec, generate_corpus


class TestDataGen:
    def test_deterministic(self):
        a, b = DataGen(5), DataGen(5)
        assert [a.surname(i) for i in range(10)] == \
            [b.surname(i) for i in range(10)]
        assert a.age() == b.age()

    def test_different_seeds_differ(self):
        a, b = DataGen(1), DataGen(2)
        assert [a.surname(i) for i in range(20)] != \
            [b.surname(i) for i in range(20)]

    def test_indexed_surnames_unique(self):
        gen = DataGen(3)
        names = [gen.surname(i) for i in range(100)]
        assert len(set(names)) == 100


class TestSchool:
    def test_network_instance_consistent(self, school_db):
        school_db.verify_consistent()
        assert school_db.count("COURSE") == 12
        assert school_db.count("OFFERING") == 24

    def test_offering_virtual_fields_resolve(self, school_db):
        offering = school_db.store("OFFERING").all_records()[0]
        assert school_db.read_field(offering, "CNO") is not None
        assert school_db.read_field(offering, "YEAR") is not None

    def test_relational_form_has_fk_columns(self):
        rdb = school.school_relational_db(seed=7)
        row = rdb.relation("OFFERING").rows()[0]
        assert row["CNO"] is not None
        assert row["S"] is not None

    def test_instructor_set_is_optional(self, school_db):
        # no offering is connected to an instructor initially
        for record in school_db.store("OFFERING").all_records():
            assert school_db.owner_record(
                school.INSTRUCTOR_OFF, record.rid) is None
        school_db.verify_consistent()  # OPTIONAL: still consistent


class TestCompany:
    def test_instance_shape(self, company_db):
        assert company_db.count("DIV") == 2
        assert company_db.count("EMP") == 40
        company_db.verify_consistent()

    def test_machinery_and_sales_present(self, company_db):
        divisions = {r["DIV-NAME"]
                     for r in company_db.store("DIV").all_records()}
        assert "MACHINERY" in divisions
        departments = {r["DEPT-NAME"]
                       for r in company_db.store("EMP").all_records()}
        assert "SALES" in departments

    def test_figure_44_operator_round(self, company_schema):
        operator = company.figure_44_operator()
        target = operator.apply_schema(company_schema)
        assert "DEPT" in target.records


class TestFlorida:
    def test_smith_manages_d2(self, florida_db):
        dept = [r for r in florida_db.store("DEPT").all_records()
                if r["D#"] == "D2"][0]
        assert dept["MGR"] == "SMITH"

    def test_association_virtuals(self, florida_db):
        link = florida_db.store("EMP-DEPT").all_records()[0]
        assert florida_db.read_field(link, "E#") is not None
        assert florida_db.read_field(link, "D#") is not None

    def test_query_answers_exist(self, florida_db):
        smith_links = [
            r for r in florida_db.store("EMP-DEPT").all_records()
            if florida_db.read_field(r, "D#") == "D2"
            and r["YEAR-OF-SERVICE"] > 10
        ]
        assert smith_links
        three_year = [
            r for r in florida_db.store("EMP-DEPT").all_records()
            if florida_db.read_field(r, "D#") == "D2"
            and r["YEAR-OF-SERVICE"] == 3
        ]
        assert three_year


class TestCorpus:
    def test_deterministic(self):
        spec = CorpusSpec(seed=9, size=25)
        first = generate_corpus(spec)
        second = generate_corpus(spec)
        assert [p.program.name for p in first] == \
            [p.program.name for p in second]

    def test_pathology_rate_zero_is_clean(self):
        for item in generate_corpus(CorpusSpec(seed=1, size=30,
                                               pathology_rate=0.0)):
            assert item.kind in corpus.CLEAN_KINDS

    def test_pathology_rate_one_is_all_pathological(self):
        for item in generate_corpus(CorpusSpec(seed=1, size=30,
                                               pathology_rate=1.0)):
            assert item.kind in corpus.PATHOLOGY_KINDS
            assert item.pathologies

    def test_every_program_runs_on_company_db(self):
        """Corpus programs are executable, not just analyzable."""
        for item in generate_corpus(CorpusSpec(seed=13, size=30)):
            db = company.company_db(seed=13)
            inputs = ProgramInputs(terminal=list(item.terminal_inputs))
            trace = run_program(item.program, db, inputs,
                                consistent=False)
            assert trace is not None

    def test_labels_are_sound(self):
        """Every labelled pathology is actually detectable."""
        for item in generate_corpus(CorpusSpec(seed=17, size=40,
                                               pathology_rate=0.5)):
            detected = {f.kind for f in detect_pathologies(item.program)}
            assert item.pathologies <= detected

    def test_counts_reporting(self):
        items = generate_corpus(CorpusSpec(seed=2, size=20))
        counts = corpus.corpus_counts(items)
        assert sum(counts.values()) == 20


def test_company_populate_multiple_divisions():
    db = company.company_db(seed=3, divisions=4,
                            employees_per_division=5)
    assert db.count("DIV") == 4
    assert db.count("EMP") == 20
    db.verify_consistent()


def test_school_offering_insert_through_dml(school_db):
    """Storing an offering by virtual CNO/S routes both memberships."""
    session = DMLSession(school_db)
    record = session.store("OFFERING", {
        "SECTION": 77, "ENROLLMENT": 3, "CNO": "C003", "S": "F76",
    })
    course = school_db.owner_record(school.COURSE_OFF, record.rid)
    semester = school_db.owner_record(school.SEMESTER_OFF, record.rid)
    assert course["CNO"] == "C003"
    assert semester["S"] == "F76"


class TestHierarchicalCorpus:
    def test_deterministic_and_shaped(self):
        from repro.workloads.corpus import (
            HIERARCHICAL_KINDS,
            generate_hierarchical_corpus,
        )

        first = generate_hierarchical_corpus(CorpusSpec(seed=4, size=20))
        second = generate_hierarchical_corpus(CorpusSpec(seed=4, size=20))
        assert [p.program.name for p in first] == \
            [p.program.name for p in second]
        assert {p.kind for p in first} <= set(HIERARCHICAL_KINDS)
        for item in first:
            assert item.program.model == "hierarchical"

    def test_programs_run_on_ims_db(self):
        from repro.hierarchical import HierarchicalDatabase
        from repro.schema import Schema
        from repro.workloads.corpus import generate_hierarchical_corpus

        schema = Schema("IMS")
        schema.define_record("COURSE", {"CNO": "X(6)"}, calc_keys=["CNO"])
        schema.define_record("OFFERING", {"S": "X(4)"})
        schema.define_record("TEXTBOOK", {"TITLE": "X(12)"})
        schema.define_set("ALL-COURSE", "SYSTEM", "COURSE",
                          order_keys=["CNO"])
        schema.define_set("C-OFF", "COURSE", "OFFERING", order_keys=["S"])
        schema.define_set("C-TXT", "COURSE", "TEXTBOOK",
                          order_keys=["TITLE"])
        db = HierarchicalDatabase(schema)
        for index in range(4):
            course = db.insert_segment("COURSE", {"CNO": f"C{index:03d}"})
            db.insert_segment("OFFERING", {"S": "F78"},
                              ("COURSE", course.rid))
            db.insert_segment("TEXTBOOK", {"TITLE": f"B{index}"},
                              ("COURSE", course.rid))
        for item in generate_hierarchical_corpus(
                CorpusSpec(seed=8, size=12)):
            trace = run_program(item.program, db, consistent=False)
            assert trace is not None
