"""Parallel multi-worker batch conversion (repro.parallel).

The headline guarantee under test: a parallel batch is
*indistinguishable* from a serial one -- byte-identical report
summaries, byte-identical checkpoint journal, identical per-program
metrics -- at any worker count, any pathology rate, and any planned
fault pattern.  Plus the merge plumbing that makes the observability
story survive multi-process execution: worker registry deltas absorbed
into the coordinator registry, worker span forests mounted under
per-worker roots with the self-time reconciliation intact.
"""

import gc
import json
import logging
import multiprocessing

import pytest

import repro.batch
import repro.jsonio
from repro.batch import BatchCheckpoint, run_batch
from repro.faultinject import InjectedFault, inject, plan_faults
from repro.observe.merge import WORKER_ROOT
from repro.observe.registry import get_registry
from repro.observe.tracing import Tracer
from repro.options import ConversionOptions
from repro.parallel import ParallelExecutor, WorkerPool, run_parallel_batch
from repro.programs.interpreter import ProgramInputs
from repro.restructure import restructure_database
from repro.strategies.cascade import FallbackCascade
from repro.workloads import company
from repro.workloads.corpus import CorpusSpec, generate_corpus

CORPUS_SIZE = 6


def corpus_programs(pathology_rate=0.25, size=CORPUS_SIZE, seed=1979):
    items = generate_corpus(CorpusSpec(seed=seed, size=size,
                                       pathology_rate=pathology_rate))
    return [item.program for item in items]


def fresh_cascade(seed=1979):
    # Report metrics are registry-wide deltas and the registry holds
    # bundles weakly: if the cycle collector reaps an earlier test's
    # dead engines *during* a conversion window, the in-process run's
    # metrics shrink while a clean worker process's do not.  Collect
    # that garbage now so every run starts from a quiet registry.
    gc.collect()
    operator = company.figure_44_operator()
    source_db = company.company_db(seed=seed)
    _schema, target_db = restructure_database(source_db, operator)
    return FallbackCascade(source_db, target_db, operator)


# parallel_threshold=2: these corpora are deliberately tiny, and the
# default threshold would (correctly) route them in-process -- the
# auto-degrade behaviour has its own test class below.
OPTIONS = ConversionOptions(inputs=ProgramInputs(terminal=["STORE"]),
                            parallel_threshold=2)


def summaries(batch):
    return [report.to_summary() for report in batch.reports]


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("pathology_rate", [0.0, 0.25, 0.75])
    def test_reports_and_checkpoint_byte_identical(self, tmp_path,
                                                   pathology_rate):
        programs = corpus_programs(pathology_rate)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"

        serial = run_batch(fresh_cascade(), programs,
                           OPTIONS.replace(checkpoint=serial_path))
        parallel = run_parallel_batch(
            fresh_cascade(), programs,
            OPTIONS.replace(jobs=2, checkpoint=parallel_path))

        assert summaries(parallel) == summaries(serial)
        assert parallel_path.read_bytes() == serial_path.read_bytes()
        assert [r.metrics for r in parallel.reports] == \
            [r.metrics for r in serial.reports]
        # The merge consumed every worker shard.
        assert not list(tmp_path.glob("*.shard*"))

    def test_escaped_fault_report_survives_the_workers(self):
        # A program whose *reference run* faults (an ACCEPT with no
        # terminal input feeds '' to a generic DML call) escapes the
        # cascade entirely; convert_one's belt-and-braces path records
        # the fault with metrics and cost left as None.  Workers must
        # ship that report as-is -- dict(None) used to kill the worker.
        programs = corpus_programs(0.5, size=8, seed=1)
        options = ConversionOptions(inputs=ProgramInputs(terminal=[]),
                                    parallel_threshold=2)
        serial = run_batch(fresh_cascade(), programs, options)
        faulted = [r for r in serial.reports if r.fault is not None]
        assert faulted, "corpus must include a reference-run fault"
        assert all(r.metrics is None and r.cost is None for r in faulted)

        parallel = run_parallel_batch(fresh_cascade(), programs,
                                      options.replace(jobs=2))
        assert summaries(parallel) == summaries(serial)
        assert [r.metrics for r in parallel.reports] == \
            [r.metrics for r in serial.reports]
        assert [r.cost for r in parallel.reports] == \
            [r.cost for r in serial.reports]

    def test_fault_plan_fires_identically_at_any_jobs_count(self):
        programs = corpus_programs(0.0)
        plan = plan_faults(seed=7, program_names=[p.name for p in programs],
                           rate=0.75)
        assert plan, "seed 7 must plan at least one fault"
        options = OPTIONS.replace(fault_plan=plan)

        serial = run_batch(fresh_cascade(), programs, options)
        parallel = run_parallel_batch(fresh_cascade(), programs,
                                      options.replace(jobs=3))
        assert summaries(parallel) == summaries(serial)
        # The plan visibly changed outcomes vs a fault-free run.
        clean = run_batch(fresh_cascade(), programs, OPTIONS)
        assert summaries(serial) != summaries(clean)


def _no_pool(monkeypatch, reason):
    def boom(*args, **kwargs):
        raise AssertionError(reason)

    monkeypatch.setattr("repro.parallel.WorkerPool", boom)


class TestFastPathAndResume:
    def test_jobs_1_never_touches_the_pool(self, monkeypatch):
        _no_pool(monkeypatch, "jobs=1 must not create a worker pool")
        programs = corpus_programs(0.0, size=3)
        batch = run_parallel_batch(fresh_cascade(), programs,
                                   OPTIONS.replace(jobs=1))
        assert len(batch.reports) == len(programs)

    def test_single_pending_program_takes_fast_path(self, monkeypatch,
                                                    tmp_path):
        programs = corpus_programs(0.0, size=3)
        path = tmp_path / "batch.json"
        run_batch(fresh_cascade(), programs,
                  OPTIONS.replace(checkpoint=path))
        # Drop the last journal entry: one program is pending, so even
        # jobs=4 must run in-process.
        data = json.loads(path.read_text())
        data["completed"] = data["completed"][:-1]
        path.write_text(json.dumps(data))

        _no_pool(monkeypatch, "one pending program must not fork")
        batch = run_parallel_batch(
            fresh_cascade(), programs,
            OPTIONS.replace(jobs=4, checkpoint=path, resume=True))
        assert len(batch.reports) == len(programs)

    def test_resume_recovers_leftover_shards(self, tmp_path):
        """A parallel run killed before its merge leaves shards; the
        next run (serial or parallel) folds them in and completes."""
        programs = corpus_programs(0.0)
        names = [p.name for p in programs]
        reference_path = tmp_path / "reference.json"
        reference = run_batch(fresh_cascade(), programs,
                              OPTIONS.replace(checkpoint=reference_path))

        # Fabricate the crash state: shards journaled, no main file.
        crashed = tmp_path / "crashed.json"
        journal = BatchCheckpoint(crashed)
        journal.shard(0).write_summaries(
            names, [reference.reports[0].to_summary()])
        journal.shard(1).write_summaries(
            names, [reference.reports[1].to_summary()])

        resumed = run_parallel_batch(
            fresh_cascade(), programs,
            OPTIONS.replace(jobs=2, checkpoint=crashed, resume=True))
        assert summaries(resumed) == summaries(reference)
        assert crashed.read_bytes() == reference_path.read_bytes()
        assert not list(tmp_path.glob("*.shard*"))

    def test_crash_inside_merge_window_resumes_identically(self, tmp_path):
        """The merge writes the main checkpoint before unlinking the
        shards; a fault on the merge write leaves the shards intact,
        and the resumed run still converges to the serial bytes."""
        programs = corpus_programs(0.0)
        reference_path = tmp_path / "reference.json"
        run_batch(fresh_cascade(), programs,
                  OPTIONS.replace(checkpoint=reference_path))

        path = tmp_path / "batch.json"
        with inject(repro.batch, "write_json_atomic", nth=1):
            with pytest.raises(InjectedFault):
                run_parallel_batch(fresh_cascade(), programs,
                                   OPTIONS.replace(jobs=2,
                                                   checkpoint=path))
        shards = BatchCheckpoint(path).shard_paths()
        assert shards, "merge-window crash must leave the shards behind"

        resumed = run_parallel_batch(
            fresh_cascade(), programs,
            OPTIONS.replace(jobs=2, checkpoint=path, resume=True))
        assert len(resumed.reports) == len(programs)
        assert path.read_bytes() == reference_path.read_bytes()
        assert not BatchCheckpoint(path).shard_paths()


class TestAutoDegrade:
    def test_small_batch_never_spawns_a_pool_and_logs_why(
            self, monkeypatch, caplog):
        """Below the pending-corpus threshold, jobs>1 converts
        in-process -- a pool would cost seconds to save milliseconds."""
        _no_pool(monkeypatch, "sub-threshold batch must not spawn a pool")
        programs = corpus_programs(0.25)
        serial = run_batch(fresh_cascade(), programs, OPTIONS)
        with caplog.at_level(logging.INFO, logger="repro.parallel"):
            batch = run_parallel_batch(
                fresh_cascade(), programs,
                OPTIONS.replace(jobs=8, parallel_threshold=None))
        assert summaries(batch) == summaries(serial)
        assert any("below the pool threshold" in record.message
                   for record in caplog.records)

    def test_external_pool_skips_the_threshold_check(self):
        """A caller-owned warm pool has no spawn cost to amortize, so
        even a tiny batch uses it."""
        programs = corpus_programs(0.0)
        cascade = fresh_cascade()
        serial = run_batch(fresh_cascade(), programs, OPTIONS)
        with WorkerPool(cascade, OPTIONS, jobs=2) as pool:
            batch = ParallelExecutor(
                cascade, programs,
                OPTIONS.replace(parallel_threshold=None),
                pool=pool).run()
        assert summaries(batch) == summaries(serial)

    def test_threshold_resolution(self):
        assert ConversionOptions().resolved_parallel_threshold(2) == 32
        assert ConversionOptions().resolved_parallel_threshold(32) == 64
        options = ConversionOptions(parallel_threshold=5)
        assert options.resolved_parallel_threshold(8) == 5
        with pytest.raises(ValueError, match="parallel_threshold"):
            ConversionOptions(
                parallel_threshold=-1).resolved_parallel_threshold(2)

    def test_chunk_size_resolution(self):
        # Auto: ~8 chunks per worker, floor 1, ceiling MAX_AUTO_CHUNK.
        assert ConversionOptions().resolved_chunk_size(6, 2) == 1
        assert ConversionOptions().resolved_chunk_size(10_000, 4) == 64
        assert ConversionOptions().resolved_chunk_size(1_000, 4) == 32
        assert ConversionOptions(chunk_size=7).resolved_chunk_size(6, 2) == 7
        with pytest.raises(ValueError, match="chunk_size"):
            ConversionOptions(chunk_size=0).resolved_chunk_size(6, 2)


class TestWarmPool:
    def test_pool_reuse_across_batches_is_byte_identical(self, tmp_path):
        """The warmness contract: the same worker processes (same
        PIDs) serve consecutive batches, and savepoint discipline
        makes every batch byte-identical to a fresh serial run."""
        programs = corpus_programs(0.25)
        serial_path = tmp_path / "serial.json"
        serial = run_batch(fresh_cascade(), programs,
                           OPTIONS.replace(checkpoint=serial_path))

        cascade = fresh_cascade()
        with WorkerPool(cascade, OPTIONS, jobs=2) as pool:
            pids_before = pool.worker_pids()
            for round_index in range(2):
                path = tmp_path / f"round{round_index}.json"
                batch = ParallelExecutor(
                    cascade, programs,
                    OPTIONS.replace(checkpoint=path), pool=pool).run()
                assert summaries(batch) == summaries(serial)
                assert path.read_bytes() == serial_path.read_bytes()
            assert pool.worker_pids() == pids_before

    def test_chunk_size_does_not_change_the_bytes(self, tmp_path):
        programs = corpus_programs(0.75)
        serial_path = tmp_path / "serial.json"
        serial = run_batch(fresh_cascade(), programs,
                           OPTIONS.replace(checkpoint=serial_path))
        for chunk_size in (1, 2, 5):
            path = tmp_path / f"chunk{chunk_size}.json"
            batch = run_parallel_batch(
                fresh_cascade(), programs,
                OPTIONS.replace(jobs=2, chunk_size=chunk_size,
                                checkpoint=path))
            assert summaries(batch) == summaries(serial)
            assert path.read_bytes() == serial_path.read_bytes()

    def test_owned_pool_is_closed_after_the_run(self):
        programs = corpus_programs(0.0)
        run_parallel_batch(fresh_cascade(), programs,
                           OPTIONS.replace(jobs=2))
        assert not [proc for proc in multiprocessing.active_children()
                    if proc.name.startswith("repro-worker-")]


class TestGracefulInterrupt:
    def test_ctrl_c_mid_batch_leaves_a_resumable_checkpoint(self,
                                                            tmp_path):
        """A KeyboardInterrupt inside the pool window drains the
        workers (in-flight chunks finish and journal), folds every
        shard into the main checkpoint, re-raises, and leaves no
        orphaned processes; a resume run completes byte-identically."""
        programs = corpus_programs(0.25)
        reference_path = tmp_path / "reference.json"
        run_batch(fresh_cascade(), programs,
                  OPTIONS.replace(checkpoint=reference_path))

        path = tmp_path / "batch.json"
        executor = ParallelExecutor(
            fresh_cascade(), programs,
            OPTIONS.replace(jobs=2, chunk_size=1, checkpoint=path))
        # The second coordinator receive is mid-batch by construction:
        # chunks are still in flight on both workers.
        with inject(executor, "_receive", nth=2,
                    make_error=KeyboardInterrupt):
            with pytest.raises(KeyboardInterrupt):
                executor.run()

        assert not [proc for proc in multiprocessing.active_children()
                    if proc.name.startswith("repro-worker-")]
        journal = BatchCheckpoint(path)
        assert journal.exists(), "drain must fold shards into the journal"
        assert not journal.shard_paths()
        drained = len(json.loads(path.read_text())["completed"])
        assert drained >= 1, "in-flight chunks must finish and journal"

        resumed = run_parallel_batch(
            fresh_cascade(), programs,
            OPTIONS.replace(jobs=2, checkpoint=path, resume=True))
        assert len(resumed.reports) == len(programs)
        assert path.read_bytes() == reference_path.read_bytes()

    def test_interrupt_on_a_warm_pool_leaves_it_usable(self, tmp_path):
        """Draining an external pool must not kill it: the owner may
        want to resume on the same warm workers."""
        programs = corpus_programs(0.0)
        reference = run_batch(fresh_cascade(), programs, OPTIONS)

        cascade = fresh_cascade()
        with WorkerPool(cascade, OPTIONS, jobs=2) as pool:
            path = tmp_path / "batch.json"
            executor = ParallelExecutor(
                cascade, programs,
                OPTIONS.replace(chunk_size=1, checkpoint=path), pool=pool)
            with inject(executor, "_receive", nth=2,
                        make_error=KeyboardInterrupt):
                with pytest.raises(KeyboardInterrupt):
                    executor.run()
            resumed = ParallelExecutor(
                cascade, programs,
                OPTIONS.replace(checkpoint=path, resume=True),
                pool=pool).run()
            assert summaries(resumed) == summaries(reference)


class TestObservabilityMerge:
    def test_worker_spans_mount_under_per_worker_roots(self):
        programs = corpus_programs(0.0)
        tracer = Tracer()
        with tracer:
            run_parallel_batch(fresh_cascade(), programs,
                               OPTIONS.replace(jobs=2))
        worker_roots = [root for root in tracer.roots
                        if root.name == WORKER_ROOT]
        assert {root.attrs["worker"] for root in worker_roots} == {0, 1}
        converted = [node for root in worker_roots
                     for node in root.walk()
                     if node.name == "batch.program"]
        assert len(converted) == len(programs)

    def test_self_times_partition_each_worker_root_exactly(self):
        programs = corpus_programs(0.0)
        tracer = Tracer()
        with tracer:
            run_parallel_batch(fresh_cascade(), programs,
                               OPTIONS.replace(jobs=2))
        roots = [root for root in tracer.roots if root.name == WORKER_ROOT]
        assert roots
        for root in roots:
            total_self = sum(node.self_seconds() for node in root.walk())
            assert total_self == pytest.approx(root.duration, rel=1e-9)

    def test_worker_registry_deltas_absorbed(self):
        programs = corpus_programs(0.0)
        registry = get_registry()
        # The registry holds bundles weakly; collect earlier tests'
        # dead cascades now so the cycle collector cannot drop their
        # counts between the two snapshots below.
        gc.collect()
        before = registry.snapshot()
        executor = ParallelExecutor(fresh_cascade(), programs,
                                    OPTIONS.replace(jobs=2))
        executor.run()
        after = registry.snapshot()
        moved = after.get("engine.records_read", 0) - \
            before.get("engine.records_read", 0)
        assert moved > 0, \
            "worker engine counters must surface in the coordinator"
        assert executor.absorbed, \
            "executor must hold the absorbed sources alive"


class TestJournalPlumbing:
    def test_shard_paths_are_ordered_and_filtered(self, tmp_path):
        journal = BatchCheckpoint(tmp_path / "c.json")
        assert journal.shard_path(3).name == "c.json.shard3"
        journal.shard(10).write_summaries(["P"], [])
        journal.shard(2).write_summaries(["P"], [])
        (tmp_path / "c.json.shardX").write_text("not a shard")
        assert [p.name for p in journal.shard_paths()] == \
            ["c.json.shard2", "c.json.shard10"]

    def test_clear_removes_shards_too(self, tmp_path):
        journal = BatchCheckpoint(tmp_path / "c.json")
        journal.write_summaries(["P"], [])
        journal.shard(0).write_summaries(["P"], [])
        journal.clear()
        assert not journal.exists()
        assert not journal.shard_paths()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ConversionOptions(jobs=0).resolved_jobs()

    def test_jobs_none_resolves_to_cpu_count(self):
        assert ConversionOptions(jobs=None).resolved_jobs() >= 1


class TestDurableWrites:
    def test_write_json_atomic_fsyncs_directory(self, tmp_path,
                                                monkeypatch):
        synced = []
        monkeypatch.setattr(repro.jsonio, "fsync_dir",
                            lambda path: synced.append(path))
        out = repro.jsonio.write_json_atomic({"k": 1}, tmp_path / "d.json")
        assert out.read_text() == '{\n  "k": 1\n}\n'
        assert synced == [tmp_path]

    def test_fsync_dir_injection_site_is_armable(self, tmp_path):
        """``inject(jsonio, "fsync_dir")`` models a crash after the
        rename but before the directory entry is durable: the document
        is complete on disk, the caller sees the fault."""
        target = tmp_path / "d.json"
        with inject(repro.jsonio, "fsync_dir", nth=1):
            with pytest.raises(InjectedFault):
                repro.jsonio.write_json_atomic({"k": 1}, target)
        assert json.loads(target.read_text()) == {"k": 1}
        assert not (tmp_path / "d.json.tmp").exists()

    def test_fsync_dir_tolerates_unopenable_directory(self, tmp_path):
        repro.jsonio.fsync_dir(tmp_path / "does-not-exist")
