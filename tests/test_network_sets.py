"""Unit tests for set occurrence stores and currency."""

import pytest

from repro.errors import IntegrityError, UniquenessViolation
from repro.network import DMLSession, NetworkDatabase
from repro.network.currency import CurrencyTable
from repro.network.sets import SYSTEM_OWNER_RID
from repro.schema import Schema


@pytest.fixture
def db():
    schema = Schema("T")
    schema.define_record("P", {"K": "X(2)"}, calc_keys=["K"])
    schema.define_record("C", {"V": "9(2)", "L": "X(4)"})
    schema.define_set("ALL-P", "SYSTEM", "P")
    schema.define_set("SORTED", "P", "C", order_keys=["V"],
                      allow_duplicates=False)
    schema.define_set("CHAINED", "P", "C")
    return NetworkDatabase(schema)


def _p(db, key):
    return db.insert_record("P", {"K": key})


def _c(db, v, label="x"):
    return db.insert_record("C", {"V": v, "L": label})


class TestSetStore:
    def test_sorted_insertion(self, db):
        parent = _p(db, "A")
        store = db.set_store("SORTED")
        for value in (5, 1, 3):
            child = _c(db, value)
            store.connect(parent.rid, child.rid)
        values = [db.store("C").peek(rid)["V"]
                  for rid in store.members(parent.rid)]
        assert values == [1, 3, 5]

    def test_chained_keeps_insertion_order(self, db):
        parent = _p(db, "A")
        store = db.set_store("CHAINED")
        rids = []
        for value in (5, 1, 3):
            child = _c(db, value)
            store.connect(parent.rid, child.rid)
            rids.append(child.rid)
        assert store.members(parent.rid) == rids

    def test_duplicate_key_rejected(self, db):
        parent = _p(db, "A")
        store = db.set_store("SORTED")
        store.connect(parent.rid, _c(db, 1).rid)
        with pytest.raises(UniquenessViolation):
            store.connect(parent.rid, _c(db, 1).rid)

    def test_duplicate_keys_ok_in_other_occurrence(self, db):
        store = db.set_store("SORTED")
        store.connect(_p(db, "A").rid, _c(db, 1).rid)
        store.connect(_p(db, "B").rid, _c(db, 1).rid)  # no error

    def test_double_connect_rejected(self, db):
        parent = _p(db, "A")
        child = _c(db, 1)
        store = db.set_store("SORTED")
        store.connect(parent.rid, child.rid)
        with pytest.raises(IntegrityError):
            store.connect(parent.rid, child.rid)

    def test_disconnect_returns_owner(self, db):
        parent = _p(db, "A")
        child = _c(db, 1)
        store = db.set_store("SORTED")
        store.connect(parent.rid, child.rid)
        assert store.disconnect(child.rid) == parent.rid
        assert store.disconnect(child.rid) is None
        assert store.members(parent.rid) == []

    def test_next_and_prior(self, db):
        parent = _p(db, "A")
        store = db.set_store("SORTED")
        children = [_c(db, v) for v in (1, 2, 3)]
        for child in children:
            store.connect(parent.rid, child.rid)
        assert store.next_after(children[0].rid) == children[1].rid
        assert store.next_after(children[2].rid) is None
        assert store.prior_before(children[1].rid) == children[0].rid
        assert store.prior_before(children[0].rid) is None

    def test_reposition_after_key_change(self, db):
        parent = _p(db, "A")
        store = db.set_store("SORTED")
        children = [_c(db, v) for v in (1, 2, 3)]
        for child in children:
            store.connect(parent.rid, child.rid)
        db.update_record("C", children[0].rid, {"V": 99})
        values = [db.store("C").peek(rid)["V"]
                  for rid in store.members(parent.rid)]
        assert values == [2, 3, 99]

    def test_owners_listing(self, db):
        a, b = _p(db, "A"), _p(db, "B")
        store = db.set_store("SORTED")
        store.connect(a.rid, _c(db, 1).rid)
        assert store.owners() == [a.rid]
        store.connect(b.rid, _c(db, 1).rid)
        assert set(store.owners()) == {a.rid, b.rid}

    def test_system_owner_rid(self, db):
        store = db.set_store("ALL-P")
        parent = _p(db, "A")
        store.connect(SYSTEM_OWNER_RID, parent.rid)
        assert store.members(SYSTEM_OWNER_RID) == [parent.rid]


class TestCurrency:
    def test_note_updates_all_indicators(self, db):
        table = CurrencyTable()
        table.note(db.schema, "C", 7)
        assert table.run_unit.rid == 7
        assert table.of_record("C").rid == 7
        assert table.of_set("SORTED").rid == 7
        assert table.of_set("CHAINED").rid == 7
        assert table.of_set("ALL-P") is None  # C not in ALL-P

    def test_retain_sets(self, db):
        table = CurrencyTable()
        table.note(db.schema, "C", 1)
        table.note(db.schema, "C", 2, retain_sets=frozenset({"SORTED"}))
        assert table.of_set("SORTED").rid == 1
        assert table.of_set("CHAINED").rid == 2

    def test_forget_record_clears_pointers(self, db):
        table = CurrencyTable()
        table.note(db.schema, "C", 1)
        table.forget_record("C", 1)
        assert table.run_unit is None
        assert table.of_record("C") is None
        assert table.of_set("SORTED") is None

    def test_clear(self, db):
        table = CurrencyTable()
        table.note(db.schema, "P", 1)
        table.clear()
        assert table.run_unit is None
        assert table.records == {}


class TestCurrencySideEffects:
    def test_find_updates_set_currency_of_participating_sets(self, small_db):
        session = DMLSession(small_db)
        session.find_any("OWNER", **{"KEY": "K1"})
        assert session.currency.of_set("OWNS").record_name == "OWNER"
        session.find_first("ITEM", "OWNS")
        assert session.currency.of_set("OWNS").record_name == "ITEM"

    def test_scanning_one_set_does_not_move_another_systems(self, small_db):
        session = DMLSession(small_db)
        session.find_any("OWNER", **{"KEY": "K1"})
        before = session.currency.of_set("ALL-OWNER")
        session.find_first("ITEM", "OWNS")
        # ITEM does not participate in ALL-OWNER: currency unchanged.
        assert session.currency.of_set("ALL-OWNER") == before
