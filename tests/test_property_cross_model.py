"""Property tests: any forest schema instance survives translation
through all three data models.

The paper's premise (§3.1) is that the structure specifications are
"representation free"; these tests check it mechanically: a random
forest schema with random data, materialized as a network database,
extracts to a snapshot that loads into the relational and hierarchical
engines and extracts back identically.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.restructure import (
    extract_snapshot,
    load_hierarchical,
    load_network,
    load_relational,
)
from repro.restructure.translator import DataSnapshot
from repro.schema.model import Schema


@st.composite
def forest_instances(draw):
    """A random forest schema plus a consistent instance snapshot."""
    record_count = draw(st.integers(min_value=2, max_value=4))
    schema = Schema("RANDOM")
    parents: dict[int, int] = {}
    for index in range(record_count):
        schema.define_record(f"R{index}", {
            f"K{index}": "X(8)",
            f"V{index}": "9(3)",
        }, calc_keys=[f"K{index}"])
        if index == 0:
            schema.define_set("ROOT-SET", "SYSTEM", "R0",
                              order_keys=["K0"], allow_duplicates=False)
        else:
            parent = draw(st.integers(min_value=0, max_value=index - 1))
            parents[index] = parent
            schema.define_set(f"S{index}", f"R{parent}", f"R{index}",
                              order_keys=[f"K{index}"],
                              allow_duplicates=False)
    schema.validate()
    assert schema.is_hierarchical()

    snapshot = DataSnapshot()
    counts: dict[int, int] = {}
    serial = 0
    for index in range(record_count):
        if index == 0:
            count = draw(st.integers(min_value=1, max_value=4))
        else:
            count = draw(st.integers(min_value=0, max_value=5))
        counts[index] = count
        rows = []
        for row_index in range(count):
            serial += 1
            rows.append({
                f"K{index}": f"K-{serial:04d}",
                f"V{index}": draw(st.integers(min_value=0,
                                              max_value=999)),
            })
            del row_index
        snapshot.rows[f"R{index}"] = rows
    snapshot.links["ROOT-SET"] = [
        (None, ("R0", i)) for i in range(counts[0])
    ]
    for index in range(1, record_count):
        parent = parents[index]
        pairs = []
        for row_index in range(counts[index]):
            if counts[parent] == 0:
                # no possible owner: drop the row to stay loadable
                continue
            owner = draw(st.integers(min_value=0,
                                     max_value=counts[parent] - 1))
            pairs.append(((f"R{parent}", owner), (f"R{index}", row_index)))
        snapshot.links[f"S{index}"] = pairs
        # remove rows that could not be connected
        connected = {member[1] for _o, member in pairs}
        snapshot.rows[f"R{index}"] = [
            row for row_index, row in enumerate(snapshot.rows[f"R{index}"])
            if row_index in connected
        ]
        # reindex links after the removal
        mapping = {
            old: new for new, old in enumerate(sorted(connected))
        }
        snapshot.links[f"S{index}"] = [
            (owner, (f"R{index}", mapping[member[1]]))
            for owner, member in pairs
        ]
        counts[index] = len(snapshot.rows[f"R{index}"])
    return schema, snapshot


def canonical(snapshot: DataSnapshot):
    """Key-based canonical form (row ids differ between loads)."""
    rows = {
        name: sorted(tuple(sorted(r.items())) for r in record_rows)
        for name, record_rows in snapshot.rows.items()
    }

    def key_of(row_id):
        if row_id is None:
            return None
        name, index = row_id
        row = snapshot.rows[name][index]
        return tuple(sorted(row.items()))

    links = {
        set_name: sorted(
            (key_of(owner), key_of(member)) for owner, member in pairs
        )
        for set_name, pairs in snapshot.links.items()
    }
    return rows, links


@given(forest_instances())
@settings(max_examples=40, deadline=None)
def test_network_round_trip(case):
    schema, snapshot = case
    db = load_network(schema, snapshot)
    assert canonical(extract_snapshot(db)) == canonical(snapshot)


@given(forest_instances())
@settings(max_examples=40, deadline=None)
def test_relational_round_trip(case):
    schema, snapshot = case
    network = load_network(schema, snapshot)
    relational = load_relational(schema, extract_snapshot(network))
    assert canonical(extract_snapshot(relational)) == canonical(snapshot)


@given(forest_instances())
@settings(max_examples=40, deadline=None)
def test_hierarchical_round_trip(case):
    schema, snapshot = case
    network = load_network(schema, snapshot)
    hierarchical = load_hierarchical(schema, extract_snapshot(network))
    assert canonical(extract_snapshot(hierarchical)) == canonical(snapshot)


@given(forest_instances())
@settings(max_examples=25, deadline=None)
def test_constraints_hold_in_all_models(case):
    """Declared existence constraints validate identically in every
    engine (the DatabaseView protocol's point)."""
    from repro.schema.constraints import ExistenceConstraint

    schema, snapshot = case
    for set_type in list(schema.sets.values()):
        if not set_type.system_owned:
            schema.add_constraint(ExistenceConstraint(
                f"E-{set_type.name}", set_type.name))
    network = load_network(schema, snapshot)
    relational = load_relational(schema, extract_snapshot(network))
    hierarchical = load_hierarchical(schema, extract_snapshot(network))
    assert network.check_constraints() == []
    assert relational.check_constraints() == []
    assert hierarchical.check_constraints() == []
