"""Engine savepoints: capture, rollback, byte-identity.

The robustness contract (README "Robustness"): a failed run rolled
back to its savepoint leaves the database *byte-identical* to the
pre-call state, asserted here via ``state_fingerprint()`` (a sha256
over the pickled canonical state).
"""

import pytest

from repro.engine import RecordStore, Savepoint, fingerprint
from repro.engine.savepoint import check_owner
from repro.errors import SavepointMismatch
from repro.hierarchical import DLISession, SSA
from repro.network import DMLSession
from repro.workloads import company


class TestRecordStore:
    def test_rollback_restores_exact_state(self):
        store = RecordStore("EMP")
        store.insert({"NAME": "A"})
        before = fingerprint(store.state_fingerprint_data())
        savepoint = store.savepoint()

        store.insert({"NAME": "B"})
        store.update(1, {"NAME": "A2"})
        store.delete(1)
        store.rollback(savepoint)

        assert fingerprint(store.state_fingerprint_data()) == before

    def test_rollback_restores_rid_counter(self):
        store = RecordStore("EMP")
        store.insert({"NAME": "A"})
        savepoint = store.savepoint()
        store.insert({"NAME": "B"})
        store.rollback(savepoint)
        assert store.insert({"NAME": "C"}).rid == 2

    def test_rollback_invalidates_in_flight_scans(self):
        store = RecordStore("EMP")
        for name in ("A", "B", "C"):
            store.insert({"NAME": name})
        savepoint = store.savepoint()
        scan = store.scan()
        next(scan)
        store.rollback(savepoint)
        with pytest.raises(RuntimeError, match="mutated during scan"):
            next(scan)

    def test_savepoint_rejected_by_other_store(self):
        store, other = RecordStore("EMP"), RecordStore("EMP")
        savepoint = store.savepoint()
        with pytest.raises(SavepointMismatch):
            other.rollback(savepoint)

    def test_missing_part_raises(self):
        savepoint = Savepoint("record-store", 1)
        with pytest.raises(SavepointMismatch, match="no part"):
            savepoint.part("store:EMP")

    def test_check_owner_kind_mismatch(self):
        store = RecordStore("EMP")
        savepoint = store.savepoint()
        with pytest.raises(SavepointMismatch):
            check_owner(savepoint, "relation", store)


class TestNetworkDatabase:
    def test_rollback_after_dml_is_byte_identical(self, company_db):
        before = company_db.state_fingerprint()
        savepoint = company_db.savepoint()

        session = DMLSession(company_db)
        session.store("DIV", {"DIV-NAME": "NEW-DIV"})
        session.store("EMP", {"EMP-NAME": "ZZ", "DEPT-NAME": "SALES",
                              "AGE": 30, "DIV-NAME": "NEW-DIV"})
        session.find_any("EMP", **{"EMP-NAME": "ZZ"})
        session.modify({"AGE": 31})
        assert company_db.state_fingerprint() != before

        company_db.rollback(savepoint)
        assert company_db.state_fingerprint() == before

    def test_rollback_restores_calc_index(self, company_db):
        savepoint = company_db.savepoint()
        session = DMLSession(company_db)
        session.store("DIV", {"DIV-NAME": "GHOST"})
        company_db.rollback(savepoint)
        session = DMLSession(company_db)
        session.find_any("DIV", **{"DIV-NAME": "GHOST"})
        assert session.status != "0000"
        session.find_any("DIV", **{"DIV-NAME": "MACHINERY"})
        assert session.status == "0000"

    def test_rollback_restores_set_order(self, small_db):
        before = small_db.state_fingerprint()
        savepoint = small_db.savepoint()
        session = DMLSession(small_db)
        session.store("OWNER", {"KEY": "K0", "NAME": "EARLY"})
        session.store("ITEM", {"SEQ": 9, "LABEL": "K0-9"})
        small_db.rollback(savepoint)
        assert small_db.state_fingerprint() == before

    def test_savepoint_excludes_metrics(self, company_db):
        savepoint = company_db.savepoint()
        list(company_db.instances("EMP"))
        reads = company_db.metrics.records_read
        company_db.rollback(savepoint)
        assert company_db.metrics.records_read == reads


class TestHierarchicalDatabase:
    @pytest.fixture
    def hier_db(self, company_db, interpose_operator):
        from repro.restructure import restructure_database

        _schema, db = restructure_database(
            company_db, interpose_operator, target_model="hierarchical")
        return db

    def test_rollback_is_byte_identical(self, hier_db):
        before = hier_db.state_fingerprint()
        savepoint = hier_db.savepoint()

        div = next(hier_db.instances("DIV"))
        hier_db.insert_segment("DEPT", {"DEPT-NAME": "GHOST"},
                               ("DIV", div.rid))
        assert hier_db.state_fingerprint() != before

        hier_db.rollback(savepoint)
        assert hier_db.state_fingerprint() == before

    def test_rollback_resets_preorder_traversal(self, hier_db):
        savepoint = hier_db.savepoint()
        div = next(hier_db.instances("DIV"))
        hier_db.insert_segment("DEPT", {"DEPT-NAME": "ZZZ-LAST"},
                               ("DIV", div.rid))
        names_with_ghost = [
            record.get("DEPT-NAME")
            for record in hier_db.instances("DEPT")
        ]
        hier_db.rollback(savepoint)
        names_after = [
            record.get("DEPT-NAME")
            for record in hier_db.instances("DEPT")
        ]
        assert "ZZZ-LAST" in names_with_ghost
        assert "ZZZ-LAST" not in names_after

    def test_dli_session_still_works_after_rollback(self, hier_db):
        savepoint = hier_db.savepoint()
        div = next(hier_db.instances("DIV"))
        hier_db.delete_segment("DIV", div.rid)
        hier_db.rollback(savepoint)
        session = DLISession(hier_db)
        segment = session.get_unique(SSA("DIV"))
        assert segment is not None


class TestRelationalDatabase:
    @pytest.fixture
    def rel_db(self, company_db, interpose_operator):
        from repro.restructure import restructure_database

        _schema, db = restructure_database(
            company_db, interpose_operator, target_model="relational")
        return db

    def test_rollback_is_byte_identical(self, rel_db):
        before = rel_db.state_fingerprint()
        savepoint = rel_db.savepoint()

        rel_db.insert("EMP", {"EMP-NAME": "GHOST", "AGE": 1,
                              "DEPT-NAME": "SALES",
                              "DIV-NAME": "MACHINERY"},
                      enforce_keys=False)
        rel_db.update_where("EMP", lambda row: True, {"AGE": 99})
        rel_db.delete_where("EMP", lambda row: row["AGE"] == 99)
        assert rel_db.state_fingerprint() != before

        rel_db.rollback(savepoint)
        assert rel_db.state_fingerprint() == before

    def test_rollback_rebuilds_indexes(self, rel_db):
        savepoint = rel_db.savepoint()
        rel_db.insert("DIV", {"DIV-NAME": "GHOST"}, enforce_keys=False)
        rel_db.rollback(savepoint)
        relation = rel_db.relation("DIV")
        assert relation.lookup_rows({"DIV-NAME": "GHOST"}) == []
        hits = relation.lookup_rows({"DIV-NAME": "MACHINERY"})
        assert hits and hits[0]["DIV-NAME"] == "MACHINERY"

    def test_update_in_place_is_captured(self, rel_db):
        """update_where mutates row dicts in place; the savepoint must
        have copied them, not aliased them."""
        before = rel_db.state_fingerprint()
        savepoint = rel_db.savepoint()
        rel_db.update_where("EMP", lambda row: True, {"AGE": 99})
        rel_db.rollback(savepoint)
        assert rel_db.state_fingerprint() == before


class TestFingerprint:
    def test_fingerprint_is_deterministic(self):
        assert fingerprint(("a", 1)) == fingerprint(("a", 1))
        assert fingerprint(("a", 1)) != fingerprint(("a", 2))

    def test_equal_databases_share_fingerprints(self):
        db_a = company.company_db(seed=7)
        db_b = company.company_db(seed=7)
        assert db_a.state_fingerprint() == db_b.state_fingerprint()
