"""Error-path and rendering coverage across modules."""

import pytest

from repro.cdml import CdmlEngine, parse_cdml
from repro.core import check_equivalence
from repro.core.report import BatchReport, ConversionReport
from repro.core.supervisor import AnalystQuestion, ScriptedAnalyst
from repro.errors import QueryError, RestructureError
from repro.programs import builder as b
from repro.programs.interpreter import Interpreter, InterpreterError
from repro.restructure import restructure_database
from repro.restructure.translator import (
    DataSnapshot,
    load_hierarchical,
)
from repro.schema import Schema
from repro.workloads import company


class TestTranslatorErrors:
    def test_unknown_target_model(self, company_db, interpose_operator):
        with pytest.raises(RestructureError):
            restructure_database(company_db, interpose_operator,
                                 target_model="object")

    def test_snapshot_of_unknown_object(self):
        from repro.restructure import extract_snapshot

        with pytest.raises(RestructureError):
            extract_snapshot(object())

    def test_hierarchical_load_requires_parents(self):
        schema = Schema("H")
        schema.define_record("P", {"K": "X(2)"}, calc_keys=["K"])
        schema.define_record("C", {"V": "9(2)"})
        schema.define_set("ALL-P", "SYSTEM", "P")
        schema.define_set("PC", "P", "C")
        snapshot = DataSnapshot(
            rows={"P": [{"K": "A"}], "C": [{"V": 1}]},
            links={"ALL-P": [(None, ("P", 0))], "PC": []},  # orphan C
        )
        with pytest.raises(RestructureError):
            load_hierarchical(schema, snapshot)


class TestInterpreterErrors:
    def test_wrong_model_statement(self, small_db):
        program = b.program("T", "network", "S", [
            b.rel_insert("EMP", **{"A": 1}),
        ])
        interpreter = Interpreter(small_db)
        with pytest.raises(InterpreterError):
            interpreter.run(program)

    def test_hier_statement_on_network_db(self, small_db):
        program = b.program("T", "network", "S", [b.gu(b.ssa("X"))])
        with pytest.raises(InterpreterError):
            Interpreter(small_db).run(program)

    def test_unknown_db_type(self):
        with pytest.raises(InterpreterError):
            Interpreter(object())

    def test_for_each_without_rows(self, small_db):
        program = b.program("T", "network", "S", [
            b.for_each_row("R", "$NOPE", [b.display("X")]),
        ])
        interpreter = Interpreter(small_db)
        interpreter.env["$NOPE"] = None
        with pytest.raises(InterpreterError):
            interpreter.run(program)

    def test_call_unknown_procedure(self, small_db):
        program = b.program("T", "network", "S", [b.call("NOPE")])
        with pytest.raises(KeyError):
            Interpreter(small_db).run(program)

    def test_call_arity_mismatch(self, small_db):
        program = b.program("T", "network", "S", [
            b.call("P", 1, 2),
        ], procedures=[b.procedure("P", ("A",), [])])
        with pytest.raises(InterpreterError):
            Interpreter(small_db).run(program)


class TestCdmlErrors:
    def test_system_cannot_be_qualified(self, company_db):
        with pytest.raises(QueryError):
            CdmlEngine(company_db).find(parse_cdml(
                "FIND(DIV: SYSTEM(X = 1), ALL-DIV, DIV)"))

    def test_set_cannot_be_qualified(self, company_db):
        statement = parse_cdml(
            "FIND(EMP: SYSTEM, ALL-DIV(X = 1), DIV, DIV-EMP, EMP)")
        # qualification lands on a set position
        from repro.cdml.ast import FindStmt, PathItem, Cmp

        bad = FindStmt("EMP", (
            PathItem("SYSTEM"),
            PathItem("ALL-DIV", Cmp("X", "=", 1)),
            PathItem("DIV"),
        ))
        with pytest.raises(QueryError):
            CdmlEngine(company_db).find(bad)
        del statement

    def test_disconnected_set_in_path(self, company_db):
        with pytest.raises(QueryError):
            CdmlEngine(company_db).find(parse_cdml(
                "FIND(EMP: SYSTEM, DIV-EMP, EMP)"))

    def test_collection_name_must_start_with_dollar(self, company_db):
        engine = CdmlEngine(company_db)
        with pytest.raises(QueryError):
            engine.execute(parse_cdml(
                "FIND(DIV: SYSTEM, ALL-DIV, DIV)"), into="BAD")


class TestReportRendering:
    def test_conversion_report_render_with_programs(self, company_schema,
                                                    interpose_operator):
        from repro.core import ConversionSupervisor

        supervisor = ConversionSupervisor(company_schema,
                                          interpose_operator)
        program = b.program("HIRE", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            b.store("EMP", **{"EMP-NAME": "X", "AGE": 1,
                              "DEPT-NAME": "SALES"}),
        ])
        report = supervisor.convert_program(program)
        text = report.render(include_programs=True)
        assert "=== HIRE: automatic ===" in text
        assert "ABSTRACT HIRE" in text
        assert "PROGRAM HIRE" in text

    def test_failed_report_render(self):
        report = ConversionReport("X", "needs-manual-conversion",
                                  failure="boom")
        assert "failure: boom" in report.render()

    def test_batch_report_empty(self):
        batch = BatchReport()
        assert batch.automation_rate() == 0.0
        assert batch.conversion_rate() == 0.0
        assert "0 program(s)" in batch.render()

    def test_analyst_question_render(self):
        question = AnalystQuestion("pin-verb", "P", "which verb?",
                                   options=("STORE", "ERASE"))
        assert "[STORE/ERASE]" in question.render()

    def test_scripted_analyst_records_transcript(self):
        analyst = ScriptedAnalyst({"pin-verb": "STORE"})
        question = AnalystQuestion("pin-verb", "P", "?")
        assert analyst.answer(question) == "STORE"
        assert analyst.answer(
            AnalystQuestion("other", "P", "?")) is None
        assert len(analyst.transcript) == 2

    def test_equivalence_report_render(self, company_db):
        program = b.program("T", "network", "COMPANY-NAME", [
            b.display("HELLO"),
        ])
        result = check_equivalence(program, company_db, program,
                                   company.company_db(seed=42))
        assert "equivalent (strict)" in result.render()

    def test_divergent_report_render(self, company_db):
        left = b.program("L", "network", "COMPANY-NAME",
                         [b.display("A")])
        right = b.program("R", "network", "COMPANY-NAME",
                          [b.display("B")])
        result = check_equivalence(left, company_db, right,
                                   company.company_db(seed=42))
        assert not result.equivalent
        assert "NOT equivalent" in result.render()


class TestBridgeComposite:
    def test_bridge_under_rename_plus_interpose(self, company_schema):
        from repro.core.analyzer_db import ConversionAnalyzer
        from repro.programs.interpreter import run_program
        from repro.restructure import Composite, RenameField
        from repro.strategies import BridgeStrategy

        operator = Composite((
            company.figure_44_operator(),
            RenameField("EMP", "AGE", "YEARS"),
        ))
        catalog = ConversionAnalyzer().analyze_operator(company_schema,
                                                        operator)
        program = b.program("REPORT", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                    b.display(b.field("EMP", "EMP-NAME")),
                ]),
            ]),
        ])
        source_trace = run_program(program, company.company_db(seed=3),
                                   consistent=False)
        _ts, target_db = restructure_database(company.company_db(seed=3),
                                              operator)
        strategy = BridgeStrategy(target_db, operator, catalog)
        run = strategy.run(program)
        assert run.trace == source_trace


class TestSupervisorAmbiguousPath:
    def test_parallel_set_raises_question(self, company_schema):
        """A second set between DIV and EMP in the target makes the
        scan path ambiguous: the analyst must confirm."""
        from repro.core import ConversionSupervisor
        from repro.restructure import RestructuringOperator

        class AddParallelSet(RestructuringOperator):
            def describe(self):
                return "add a parallel DIV->EMP set"

            def apply_schema(self, schema):
                out = schema.copy()
                out.define_set("SECOND-PATH", "DIV", "EMP")
                return out

            def changes(self, schema):
                from repro.schema.diff import SetAdded

                return [SetAdded("SECOND-PATH")]

        analyst = ScriptedAnalyst({"ambiguous-path": "keep-declared-set"})
        supervisor = ConversionSupervisor(company_schema,
                                          AddParallelSet(),
                                          analyst=analyst)
        program = b.program("SCANNER", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.scan_set("EMP", "DIV-EMP", [b.display("X")]),
        ])
        report = supervisor.convert_program(program)
        assert report.converted
        assert report.status == "analyst-assisted"
        assert any("ambiguous-path" in q for q in report.questions)

    def test_refusal_aborts(self, company_schema):
        from repro.core import ConversionSupervisor, RefusingAnalyst
        from repro.restructure import RestructuringOperator

        class AddParallelSet(RestructuringOperator):
            def describe(self):
                return "add a parallel DIV->EMP set"

            def apply_schema(self, schema):
                out = schema.copy()
                out.define_set("SECOND-PATH", "DIV", "EMP")
                return out

            def changes(self, schema):
                from repro.schema.diff import SetAdded

                return [SetAdded("SECOND-PATH")]

        supervisor = ConversionSupervisor(company_schema,
                                          AddParallelSet(),
                                          analyst=RefusingAnalyst())
        program = b.program("SCANNER", "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
            *b.scan_set("EMP", "DIV-EMP", [b.display("X")]),
        ])
        report = supervisor.convert_program(program)
        assert report.status == "needs-manual-conversion"
