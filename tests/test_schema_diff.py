"""Unit tests for schema differencing and change classification."""

from repro.schema import (
    ConstraintAdded,
    ConstraintRemoved,
    FieldAdded,
    FieldRemoved,
    MembershipChanged,
    NotNull,
    RecordAdded,
    RecordRemoved,
    Schema,
    SetAdded,
    SetOrderChanged,
    SetRemoved,
    VirtualizedField,
    diff_schemas,
)
from repro.schema.model import Insertion, Retention


def base_schema() -> Schema:
    schema = Schema("T")
    schema.define_record("A", {"K": "X(4)", "N": "X(8)"}, calc_keys=["K"])
    schema.define_record("B", {"V": "9(3)", "W": "X(2)"})
    schema.define_set("ALL-A", "SYSTEM", "A", order_keys=["K"])
    schema.define_set("A-B", "A", "B", order_keys=["V"])
    return schema


def test_identical_schemas_diff_empty():
    assert diff_schemas(base_schema(), base_schema()) == []


def test_record_added_and_removed():
    source = base_schema()
    target = base_schema()
    target.define_record("C", {"X": "X(1)"})
    del target.records["B"]
    del target.sets["A-B"]
    changes = diff_schemas(source, target)
    assert RecordRemoved("B") in changes
    assert RecordAdded("C") in changes
    assert SetRemoved("A-B") in changes


def test_field_changes():
    source = base_schema()
    target = base_schema()
    record = target.records["A"]
    from repro.schema.model import Field
    from repro.schema.types import parse_pic

    target.records["A"] = record.with_fields(
        tuple(f for f in record.fields if f.name != "N")
        + (Field("EXTRA", parse_pic("9(2)")),)
    )
    changes = diff_schemas(source, target)
    assert FieldRemoved("A", "N") in changes
    assert FieldAdded("A", "EXTRA") in changes


def test_set_order_change():
    source = base_schema()
    target = base_schema()
    from dataclasses import replace

    target.sets["A-B"] = replace(target.sets["A-B"], order_keys=("W",))
    changes = diff_schemas(source, target)
    assert SetOrderChanged("A-B", ("V",), ("W",)) in changes


def test_membership_change():
    source = base_schema()
    target = base_schema()
    from dataclasses import replace

    target.sets["A-B"] = replace(
        target.sets["A-B"],
        insertion=Insertion.MANUAL, retention=Retention.MANDATORY,
    )
    changes = diff_schemas(source, target)
    membership = [c for c in changes if isinstance(c, MembershipChanged)]
    assert len(membership) == 1
    assert membership[0].new_retention is Retention.MANDATORY


def test_set_endpoint_change_is_remove_plus_add():
    source = base_schema()
    target = base_schema()
    target.define_record("C", {"X": "X(1)"})
    from dataclasses import replace

    target.sets["A-B"] = replace(target.sets["A-B"], owner="C")
    changes = diff_schemas(source, target)
    assert SetRemoved("A-B") in changes
    assert SetAdded("A-B") in changes


def test_virtualized_field_detected():
    source = base_schema()
    target = base_schema()
    from dataclasses import replace

    record = target.records["B"]
    target.records["B"] = record.with_fields(
        replace(f, virtual_via="A-B", virtual_using="N")
        if f.name == "W" else f
        for f in record.fields
    )
    changes = diff_schemas(source, target)
    virtualized = [c for c in changes if isinstance(c, VirtualizedField)]
    assert virtualized == [VirtualizedField("B", "W", True, "A-B")]


def test_constraint_changes():
    source = base_schema()
    target = base_schema()
    constraint = NotNull("NN", "A", "N")
    target.add_constraint(constraint)
    changes = diff_schemas(source, target)
    assert any(isinstance(c, ConstraintAdded) for c in changes)
    back = diff_schemas(target, source)
    assert any(isinstance(c, ConstraintRemoved) for c in back)


def test_every_change_describes_itself():
    source = base_schema()
    target = base_schema()
    target.define_record("C", {"X": "X(1)"})
    del target.records["B"]
    del target.sets["A-B"]
    target.add_constraint(NotNull("NN", "A", "N"))
    for change in diff_schemas(source, target):
        assert isinstance(change.describe(), str)
        assert change.kind == type(change).__name__
