"""Fault-isolated, checkpointed batch conversion.

Section 1.1: "a database application system is converted when each
program actually existing in the source system has been converted."
A real conversion shop runs hundreds of programs in one batch, and the
batch must survive any single program going wrong: one fault may not
take down the run, corrupt the databases the probes execute against,
or lose the work already done.

:func:`run_batch` provides those three guarantees over a
:class:`~repro.strategies.cascade.FallbackCascade`:

* **isolation** -- every program converts inside engine savepoints;
  a fault (even an injected engine fault) is caught, rolled back, and
  recorded as a failed :class:`~repro.core.report.ConversionReport`
  with a :class:`~repro.core.report.FaultContext` carrying the chained
  root cause, while the rest of the batch proceeds;
* **durability** -- after each program the batch journals its progress
  to a JSON checkpoint (atomic rename + directory fsync), so a killed
  run resumes with ``resume=True`` and completes only the unfinished
  programs;
* **fidelity** -- a resumed batch reproduces the same final
  :class:`~repro.core.report.BatchReport` (reports are serialized via
  the exact render/parse round trip).

The parallel executor (:mod:`repro.parallel`) reuses the same journal
through per-worker *shards*: worker ``k`` journals its cumulative
progress to ``<checkpoint>.shard<k>`` after every dispatch chunk, and
the coordinator merges the shards into the main checkpoint in program
order -- atomically, shards unlinked only after the merged document is
durable -- so a resumed parallel run is byte-identical to a serial
one.  The merge keys on program names, not shard order, so it is
indifferent to which worker converted which chunk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro._deprecation import warn_deprecated
from repro.core.report import (
    BatchReport,
    ConversionReport,
    FaultContext,
    STATUS_FAILED,
    STATUS_QUARANTINED,
)
from repro.errors import ReproError
from repro.faultinject import KIND_KILL_WORKER, FaultPlan, WorkerKilled
from repro.jsonio import remove_durable, write_json_atomic
from repro.observe.registry import named_counters
from repro.observe.tracing import span
from repro.options import ConversionOptions
from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs, program_deadline
from repro.strategies.cascade import FallbackCascade

CHECKPOINT_VERSION = 1

#: Per-program progress callback: ``(report, done, total, resumed)``.
#: ``done`` counts settled programs (converted, failed, quarantined,
#: or recovered from a checkpoint), ``total`` is the batch size, and
#: ``resumed`` marks reports reconstructed from the journal rather
#: than converted in this run.  Serial batches call it in program
#: order; parallel batches call it in completion order (the final
#: :class:`~repro.core.report.BatchReport` is program-ordered either
#: way).  An exception raised from the callback aborts the batch after
#: the reported program -- with the journal already written, so a
#: ``KeyboardInterrupt`` here is exactly the graceful-interrupt path.
ProgressCallback = Callable[[ConversionReport, int, int, bool], None]


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or belongs to a different batch."""


class BatchCheckpoint:
    """Journal of a batch run: which programs, which are done, and
    their report summaries -- one JSON document, rewritten atomically
    after every program."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version "
                f"{data.get('version')!r}, expected {CHECKPOINT_VERSION}"
            )
        return data

    def completed_summaries(self, programs: list[str]) -> dict[str, dict]:
        """The already-journaled report summaries, verified against
        this batch's program list (a checkpoint from a different batch
        is refused, not silently merged)."""
        data = self.load()
        if data.get("programs") != programs:
            raise CheckpointError(
                f"checkpoint {self.path} was written for programs "
                f"{data.get('programs')}, not {programs}"
            )
        return {
            entry["program"]: entry for entry in data.get("completed", ())
        }

    def completed_reports(self, programs: list[str]
                          ) -> dict[str, ConversionReport]:
        """:meth:`completed_summaries`, parsed back into reports."""
        return {
            name: ConversionReport.from_summary(entry)
            for name, entry in self.completed_summaries(programs).items()
        }

    def write(self, programs: list[str],
              completed: list[ConversionReport]) -> None:
        """Atomic journal update (write-then-rename, so a kill mid-write
        leaves the previous checkpoint intact)."""
        self.write_summaries(
            programs, [report.to_summary() for report in completed])

    def write_summaries(self, programs: list[str],
                        completed: list[dict]) -> None:
        data = {
            "version": CHECKPOINT_VERSION,
            "programs": programs,
            "completed": completed,
        }
        write_json_atomic(data, self.path)

    def clear(self) -> None:
        remove_durable(self.path)
        for shard in self.shard_paths():
            remove_durable(shard)

    # -- per-worker shards (parallel batches) --------------------------

    def shard_path(self, worker_id: int) -> Path:
        """Worker ``k``'s private journal, next to the main checkpoint."""
        return self.path.with_name(f"{self.path.name}.shard{worker_id}")

    def shard(self, worker_id: int) -> "BatchCheckpoint":
        return BatchCheckpoint(self.shard_path(worker_id))

    def shard_paths(self) -> list[Path]:
        """Existing shard files, ordered by worker id."""
        prefix = f"{self.path.name}.shard"
        found = [
            p for p in self.path.parent.glob(f"{prefix}*")
            if p.name[len(prefix):].isdigit()
        ]
        return sorted(found, key=lambda p: int(p.name[len(prefix):]))

    def merge_shards(self, programs: list[str]) -> None:
        """Fold every worker shard into the main checkpoint.

        The union of the main document and all shards is rewritten in
        program order -- the same order a serial run journals in, so
        the merged checkpoint is byte-identical to a serial one.  The
        merged document is written (and its directory fsynced) *before*
        the shards are unlinked: a crash inside the merge window leaves
        either the shards or the merged main, never neither.  The
        fault-injection harness targets exactly that window via
        ``inject(repro.batch, "write_json_atomic")`` and
        ``inject(repro.jsonio, "fsync_dir")``.
        """
        merged: dict[str, dict] = {}
        if self.exists():
            merged.update(self.completed_summaries(programs))
        shards = self.shard_paths()
        for shard_file in shards:
            merged.update(
                BatchCheckpoint(shard_file).completed_summaries(programs))
        ordered = [merged[name] for name in programs if name in merged]
        write_json_atomic(
            {
                "version": CHECKPOINT_VERSION,
                "programs": programs,
                "completed": ordered,
            },
            self.path,
        )
        # Durable unlink: a power loss must not resurrect already-merged
        # shards for a later resume to fold over fresher main state.
        for shard_file in shards:
            remove_durable(shard_file)

    def recover(self, programs: list[str]) -> dict[str, ConversionReport]:
        """Resume entry point: fold in any leftover shards (a parallel
        run killed before or during its merge), then return the
        completed reports.  Tolerates a missing main checkpoint."""
        if self.shard_paths():
            self.merge_shards(programs)
        if not self.exists():
            return {}
        return self.completed_reports(programs)


def check_program_names(programs: list[Program]) -> list[str]:
    """The batch's program names, refused on duplicates (the journal
    and the parallel merge both key on the name)."""
    names = [program.name for program in programs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate program names in batch: {names}")
    return names


def run_batch(cascade: FallbackCascade, programs: list[Program],
              options: ConversionOptions | None = None,
              progress: "ProgressCallback | None" = None) -> BatchReport:
    """Convert every program through the fallback cascade, isolating
    per-program faults and journaling progress.

    With ``options.resume`` and an existing checkpoint (or leftover
    parallel shards), programs already journaled are not re-run; their
    reports are reconstructed from the checkpoint so the final report
    matches an uninterrupted run.

    ``progress`` is invoked as ``progress(report, done, total,
    resumed)`` after every program settles -- *after* its report is
    journaled, so a callback that raises (the conversion service's
    cooperative stop raises ``KeyboardInterrupt`` there) always leaves
    a checkpoint that resumes past the reported program.  Programs
    recovered from the checkpoint are reported too, with
    ``resumed=True``, so a resumed batch still narrates every program
    exactly once.

    This is the serial engine; ``options.jobs`` is ignored here.  The
    facade's :func:`repro.api.convert_batch` dispatches to
    :class:`repro.parallel.ParallelExecutor` when ``jobs > 1``.
    """
    options = options if options is not None else ConversionOptions()
    names = check_program_names(programs)

    journal = BatchCheckpoint(options.checkpoint) if options.checkpoint \
        else None
    done: dict[str, ConversionReport] = {}
    if journal is not None and options.resume:
        done = journal.recover(names)

    batch = BatchReport()
    finished: list[ConversionReport] = [
        done[name] for name in names if name in done
    ]

    total = len(programs)
    settled = 0
    with span("batch.convert", programs=len(programs)):
        for program in programs:
            if program.name in done:
                batch.add(done[program.name])
                settled += 1
                if progress is not None:
                    progress(done[program.name], settled, total, True)
                continue
            with span("batch.program", program=program.name):
                report = convert_one(cascade, program, options)
            batch.add(report)
            finished.append(report)
            if journal is not None:
                journal.write(names, finished)
            settled += 1
            if progress is not None:
                progress(report, settled, total, False)
    return batch


def convert_batch(cascade: FallbackCascade, programs: list[Program],
                  checkpoint: str | Path | None = None,
                  resume: bool = False,
                  inputs: ProgramInputs | None = None) -> BatchReport:
    """Deprecated pre-facade signature; use :func:`run_batch` with a
    :class:`~repro.options.ConversionOptions` (or the
    :func:`repro.api.convert_batch` facade)."""
    warn_deprecated(
        "batch.convert_batch",
        "repro.batch.convert_batch(checkpoint=..., resume=..., "
        "inputs=...) is deprecated; use repro.api.convert_batch with "
        "options=ConversionOptions(...) instead",
    )
    return run_batch(cascade, programs, ConversionOptions(
        checkpoint=checkpoint, resume=resume, inputs=inputs))


def quarantine_report(program_name: str, attempts: int,
                      plan: "FaultPlan | None" = None) -> ConversionReport:
    """The synthesized report for a poison program pulled from a batch.

    Built from the *plan*, never from a live exception or worker id:
    the parallel coordinator synthesizes this report for a program
    whose worker died (there is no exception object, and worker ids
    vary with the jobs count), and the serial engine synthesizes the
    identical one after its in-process retries -- byte-identical
    checkpoints at any jobs count depend on both sides agreeing on
    every character here.
    """
    cause_chain: tuple[str, ...] = ()
    if plan is not None:
        for fault in plan.for_program(program_name):
            if fault.kind == KIND_KILL_WORKER:
                cause_chain = (
                    f"WorkerKilled: injected worker kill at "
                    f"{fault.describe()}",
                )
                break
    fault_context = FaultContext(
        error_type="WorkerKilled",
        message=(f"conversion killed its worker process "
                 f"{attempts} time(s); program quarantined"),
        program=program_name,
        phase="supervise",
        cause_chain=cause_chain,
    )
    report = ConversionReport(program_name, STATUS_QUARANTINED)
    report.failure = (f"quarantined as poison input: conversion killed "
                      f"its worker process {attempts} time(s)")
    report.fault = fault_context
    return report


def convert_one(cascade: FallbackCascade, program: Program,
                options: ConversionOptions) -> ConversionReport:
    """One program through the cascade, with belt-and-braces rollback:
    the cascade already probes inside savepoints, but if a fault
    escapes anyway both databases are restored here before the failure
    is recorded.

    When the options carry a fault plan, its faults for this program
    are armed around the conversion -- call counting scoped to this
    one program unit, so the plan fires identically no matter how the
    batch is ordered or sharded across workers.

    Supervision hooks live here too, because this is the one function
    both the serial engine and every pool worker route through:
    ``options.program_timeout`` arms the interpreter's cooperative
    deadline around each attempt, and a :class:`WorkerKilled` fault
    (the serial stand-in for a worker process dying) is retried up to
    ``options.max_program_retries`` times before the program is
    quarantined -- mirroring, attempt for attempt, what the parallel
    coordinator does when a real worker dies, so quarantine reports
    are byte-identical at any jobs count.  In a pool worker a kill
    fault never reaches this handler (the process exits).
    """
    source_sp = cascade.source_db.savepoint()
    target_sp = cascade.target_db.savepoint()
    plan = options.fault_plan
    retries = max(1, options.max_program_retries)
    kills = 0
    while True:
        try:
            with program_deadline(options.program_timeout):
                if plan:
                    with plan.armed(program.name, {
                        "source_db": cascade.source_db,
                        "target_db": cascade.target_db,
                    }):
                        outcome = cascade.convert(program, options=options)
                else:
                    outcome = cascade.convert(program, options=options)
        except WorkerKilled:
            cascade.source_db.rollback(source_sp)
            cascade.target_db.rollback(target_sp)
            kills += 1
            if kills >= retries:
                named_counters("supervision").bump("quarantined")
                return quarantine_report(program.name, kills, plan)
            continue
        except Exception as exc:
            cascade.source_db.rollback(source_sp)
            cascade.target_db.rollback(target_sp)
            fault = FaultContext.from_exception(exc, program=program.name,
                                                phase="convert-batch")
            report = ConversionReport(program.name, STATUS_FAILED)
            report.failure = str(exc)
            report.fault = fault
            return report
        return outcome.report


def _convert_isolated(cascade: FallbackCascade, program: Program,
                      inputs: ProgramInputs | None) -> ConversionReport:
    """Deprecated alias for :func:`convert_one` (pre-facade name)."""
    warn_deprecated(
        "batch._convert_isolated",
        "repro.batch._convert_isolated is deprecated; use "
        "repro.batch.convert_one with ConversionOptions(inputs=...)",
    )
    return convert_one(cascade, program, ConversionOptions(inputs=inputs))
