"""Fault-isolated, checkpointed batch conversion.

Section 1.1: "a database application system is converted when each
program actually existing in the source system has been converted."
A real conversion shop runs hundreds of programs in one batch, and the
batch must survive any single program going wrong: one fault may not
take down the run, corrupt the databases the probes execute against,
or lose the work already done.

:func:`convert_batch` provides those three guarantees over a
:class:`~repro.strategies.cascade.FallbackCascade`:

* **isolation** -- every program converts inside engine savepoints;
  a fault (even an injected engine fault) is caught, rolled back, and
  recorded as a failed :class:`~repro.core.report.ConversionReport`
  with a :class:`~repro.core.report.FaultContext` carrying the chained
  root cause, while the rest of the batch proceeds;
* **durability** -- after each program the batch journals its progress
  to a JSON checkpoint (atomic rename), so a killed run resumes with
  ``resume=True`` and completes only the unfinished programs;
* **fidelity** -- a resumed batch reproduces the same final
  :class:`~repro.core.report.BatchReport` (reports are serialized via
  the exact render/parse round trip).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.report import (
    BatchReport,
    ConversionReport,
    FaultContext,
    STATUS_FAILED,
)
from repro.errors import ReproError
from repro.jsonio import write_json_atomic
from repro.observe.tracing import span
from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs
from repro.strategies.cascade import FallbackCascade

CHECKPOINT_VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or belongs to a different batch."""


class BatchCheckpoint:
    """Journal of a batch run: which programs, which are done, and
    their report summaries -- one JSON document, rewritten atomically
    after every program."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version "
                f"{data.get('version')!r}, expected {CHECKPOINT_VERSION}"
            )
        return data

    def completed_reports(self, programs: list[str]
                          ) -> dict[str, ConversionReport]:
        """The already-finished reports, verified against this batch's
        program list (a checkpoint from a different batch is refused,
        not silently merged)."""
        data = self.load()
        if data.get("programs") != programs:
            raise CheckpointError(
                f"checkpoint {self.path} was written for programs "
                f"{data.get('programs')}, not {programs}"
            )
        return {
            entry["program"]: ConversionReport.from_summary(entry)
            for entry in data.get("completed", ())
        }

    def write(self, programs: list[str],
              completed: list[ConversionReport]) -> None:
        """Atomic journal update (write-then-rename, so a kill mid-write
        leaves the previous checkpoint intact)."""
        data = {
            "version": CHECKPOINT_VERSION,
            "programs": programs,
            "completed": [report.to_summary() for report in completed],
        }
        write_json_atomic(data, self.path)

    def clear(self) -> None:
        if self.path.exists():
            self.path.unlink()


def convert_batch(cascade: FallbackCascade, programs: list[Program],
                  checkpoint: str | Path | None = None,
                  resume: bool = False,
                  inputs: ProgramInputs | None = None) -> BatchReport:
    """Convert every program through the fallback cascade, isolating
    per-program faults and journaling progress.

    With ``resume=True`` and an existing checkpoint, programs already
    journaled are not re-run; their reports are reconstructed from the
    checkpoint so the final report matches an uninterrupted run.
    """
    names = [program.name for program in programs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate program names in batch: {names}")

    journal = BatchCheckpoint(checkpoint) if checkpoint else None
    done: dict[str, ConversionReport] = {}
    if journal is not None and resume and journal.exists():
        done = journal.completed_reports(names)

    batch = BatchReport()
    finished: list[ConversionReport] = [
        done[name] for name in names if name in done
    ]

    with span("batch.convert", programs=len(programs)):
        for program in programs:
            if program.name in done:
                batch.add(done[program.name])
                continue
            with span("batch.program", program=program.name):
                report = _convert_isolated(cascade, program, inputs)
            batch.add(report)
            finished.append(report)
            if journal is not None:
                journal.write(names, finished)
    return batch


def _convert_isolated(cascade: FallbackCascade, program: Program,
                      inputs: ProgramInputs | None) -> ConversionReport:
    """One program through the cascade, with belt-and-braces rollback:
    the cascade already probes inside savepoints, but if a fault
    escapes anyway both databases are restored here before the failure
    is recorded."""
    source_sp = cascade.source_db.savepoint()
    target_sp = cascade.target_db.savepoint()
    try:
        outcome = cascade.convert(program, inputs)
    except Exception as exc:
        cascade.source_db.rollback(source_sp)
        cascade.target_db.rollback(target_sp)
        fault = FaultContext.from_exception(exc, program=program.name,
                                            phase="convert-batch")
        report = ConversionReport(program.name, STATUS_FAILED)
        report.failure = str(exc)
        report.fault = fault
        return report
    return outcome.report
