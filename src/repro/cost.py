"""COBRA-style cost model for strategy selection (`ROADMAP` item).

Three pieces, mirroring the Cobra framing of cost-based rewriting on
top of the paper's Section 4 Optimizer box and Section 5.4
access-path-selection discussion:

* :func:`estimate_profile` -- a *static* access profile of a source
  program: expected record touches, index probes, full scans, per-call
  emulation mappings and bridge materializations, estimated from one
  walk of the concrete AST weighted by
  :class:`~repro.core.optimizer.CostModel` cardinalities;
* :class:`CostPredictor` -- turns a profile into per-strategy
  predicted costs (comparable to
  :meth:`~repro.strategies.base.StrategyRun.cost`, the measured
  access-path-length proxy) and decides whether the rewrite pipeline
  is even *feasible* for the program.  The same walk collects the
  Section 3.2 blocking findings (run-time verb variability), so the
  prediction "this program will fall back" is exactly the
  analyzer's own verdict, computed without paying for the other three
  pathology detectors or the template-match pipeline;
* :class:`CostCalibrator` -- learns measured/predicted calibration
  factors from the registry deltas of prior conversions in the same
  batch, making the model falsifiable (`bench --suite programs`
  reports the accuracy).

The predictor is deliberately a pure function of (program, cost
model, schema): predictions never depend on batch history, so the
cascade's reports stay byte-identical at every worker count and in
either strategy order.  Calibration refines *reporting* only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dataflow import is_runtime_constant
from repro.analysis.variability import VERB_VARIABILITY_DETAIL
from repro.core.optimizer import CostModel
from repro.programs import ast
from repro.schema.model import Schema

#: Expected branch probability for an IF arm; both arms are walked so
#: the profile is an expectation, not a worst case.
BRANCH_WEIGHT = 0.5

#: Trip-count guess for loops whose bound is not a set scan (mirrors
#: the dataflow convention that an assignment inside a loop "may
#: repeat": anything >= 2 models repetition without a cardinality).
DEFAULT_TRIP = 2.0


@dataclass(frozen=True)
class AccessProfile:
    """Expected access counts for one program execution."""

    records_read: float = 0.0
    index_probes: float = 0.0
    full_scans: float = 0.0
    emulation_mappings: float = 0.0
    bridge_materializations: float = 0.0
    dml_calls: float = 0.0
    #: Statements visited (static size, not executions).
    statements: int = 0
    #: Section 3.2 blocking findings (verb variability details, in
    #: walk order) -- non-empty means the rewrite pipeline will refuse
    #: the program mechanically.
    blocking_details: tuple[str, ...] = ()

    @property
    def rewrite_feasible(self) -> bool:
        return not self.blocking_details


class _ProfileWalker:
    """One pre-order walk accumulating the expected access counts.

    Visits children in :func:`repro.programs.ast.children_of` order,
    so the blocking details come out in the same order
    :func:`repro.analysis.variability.detect_verb_variability`
    reports them -- the synthesized analyzer failure message must be
    byte-identical to the real one.
    """

    def __init__(self, program: ast.Program, model: CostModel,
                 schema: Schema | None):
        self.program = program
        self.model = model
        self.schema = schema
        self.records_read = 0.0
        self.index_probes = 0.0
        self.full_scans = 0.0
        self.mappings = 0.0
        self.dml_calls = 0.0
        self.statements = 0
        self.blocking: list[str] = []
        self.touched: set[str] = set()

    def profile(self) -> AccessProfile:
        self.visit(self.program.statements, 1.0)
        for procedure in self.program.procedures:
            self.visit(procedure.body, DEFAULT_TRIP)
        materializations = sum(
            self.model.count(name) for name in sorted(self.touched)
        )
        return AccessProfile(
            records_read=self.records_read,
            index_probes=self.index_probes,
            full_scans=self.full_scans,
            emulation_mappings=self.mappings,
            bridge_materializations=float(materializations),
            dml_calls=self.dml_calls,
            statements=self.statements,
            blocking_details=tuple(self.blocking),
        )

    # -- helpers ------------------------------------------------------

    def _count(self, record_name: str) -> float:
        return float(max(1, self.model.count(record_name)))

    def _member_trip(self, set_name: str) -> float:
        """Expected members per owner occurrence of a set."""
        if self.schema is None:
            return DEFAULT_TRIP
        set_type = self.schema.sets.get(set_name)
        if set_type is None:
            return DEFAULT_TRIP
        members = self._count(set_type.member)
        owners = self._count(set_type.owner)
        return max(1.0, members / owners)

    def _loop_trip(self, body: tuple[ast.Stmt, ...]) -> float:
        """A While advancing a set scan runs once per member; any
        other loop gets the conservative repeat guess."""
        for stmt in body:
            if isinstance(stmt, (ast.NetFindNext, ast.NetFindNextUsing)):
                return self._member_trip(stmt.set_name)
        return DEFAULT_TRIP

    def _calc_probe(self, record_name: str,
                    supplied: tuple[str, ...]) -> bool:
        """Would FIND ANY with these fields hit the CALC index?"""
        if self.schema is None:
            return bool(supplied)
        record = self.schema.records.get(record_name)
        if record is None or not record.calc_keys:
            return False
        return all(key in supplied for key in record.calc_keys)

    # -- the walk -----------------------------------------------------

    def visit(self, statements: tuple[ast.Stmt, ...],
              weight: float) -> None:
        for stmt in statements:
            self.statements += 1
            self._visit_one(stmt, weight)

    def _visit_one(self, stmt: ast.Stmt, weight: float) -> None:
        if isinstance(stmt, ast.DML_NODES):
            self.dml_calls += weight
            self.mappings += weight
        if isinstance(stmt, ast.NetFindAny):
            self.touched.add(stmt.record)
            supplied = tuple(field_name for field_name, _ in stmt.using)
            if self._calc_probe(stmt.record, supplied):
                self.index_probes += weight
                self.records_read += weight
            else:
                self.full_scans += weight
                self.records_read += weight * self._count(stmt.record) / 2
        elif isinstance(stmt, (ast.NetFindFirst, ast.NetFindNext,
                               ast.NetFindNextUsing, ast.NetFindOwner)):
            if self.schema is not None:
                set_type = self.schema.sets.get(stmt.set_name)
                if set_type is not None:
                    self.touched.add(set_type.member)
                    self.touched.add(set_type.owner)
            self.records_read += weight
        elif isinstance(stmt, (ast.NetGet, ast.NetFindCurrent)):
            self.records_read += weight
        elif isinstance(stmt, (ast.NetStore, ast.NetModify, ast.NetErase,
                               ast.NetReconnect)):
            self.touched.add(stmt.record)
            self.records_read += weight
        elif isinstance(stmt, ast.NetGenericCall):
            self.touched.add(stmt.record)
            self.records_read += weight
            if not is_runtime_constant(self.program, stmt.verb):
                self.blocking.append(VERB_VARIABILITY_DETAIL)
        elif isinstance(stmt, (ast.HierGU, ast.HierGN, ast.HierGNP)):
            self.records_read += weight
        elif isinstance(stmt, ast.RelQuery):
            self.full_scans += weight
        elif isinstance(stmt, (ast.RelInsert, ast.RelDelete,
                               ast.RelUpdate)):
            self.touched.add(stmt.relation)
            self.records_read += weight
        elif isinstance(stmt, ast.If):
            self.visit(stmt.then, weight * BRANCH_WEIGHT)
            self.visit(stmt.orelse, weight * BRANCH_WEIGHT)
            return
        elif isinstance(stmt, ast.While):
            self.visit(stmt.body, weight * self._loop_trip(stmt.body))
            return
        elif isinstance(stmt, ast.ForEachRow):
            self.visit(stmt.body, weight * DEFAULT_TRIP)
            return
        for block in ast.children_of(stmt):
            self.visit(block, weight)


def estimate_profile(program: ast.Program, model: CostModel,
                     schema: Schema | None = None) -> AccessProfile:
    """Statically estimate a program's access profile."""
    return _ProfileWalker(program, model, schema).profile()


@dataclass(frozen=True)
class Prediction:
    """Per-strategy predicted costs for one program."""

    profile: AccessProfile
    #: Predicted access-path length per strategy; ``None`` marks the
    #: strategy statically infeasible (rewrite on a blocking program).
    costs: dict[str, float | None] = field(default_factory=dict)

    @property
    def blocking(self) -> tuple[str, ...]:
        return self.profile.blocking_details

    def cheapest_feasible(self) -> str | None:
        ranked = sorted(
            (cost, name) for name, cost in self.costs.items()
            if cost is not None
        )
        return ranked[0][1] if ranked else None

    def to_dict(self) -> dict[str, float | None]:
        return dict(self.costs)


class CostPredictor:
    """Pure per-program cost prediction (no batch state)."""

    #: Fixed per-call overhead charged to the emulation mapping layer
    #: (session dispatch + UWA shuffling per DML call).
    EMULATION_CALL_FACTOR = 2.0

    def __init__(self, model: CostModel,
                 schema: Schema | None = None):
        self.model = model
        self.schema = schema

    def predict(self, program: ast.Program) -> Prediction:
        profile = estimate_profile(program, self.model, self.schema)
        native = (profile.records_read + profile.index_probes
                  + profile.full_scans)
        costs: dict[str, float | None] = {
            "rewrite": native if profile.rewrite_feasible else None,
            "emulation": native + self.EMULATION_CALL_FACTOR
            * profile.emulation_mappings,
            "bridge": native + profile.bridge_materializations,
        }
        return Prediction(profile=profile, costs=costs)


@dataclass
class _Channel:
    """Running calibration sums for one strategy (mergeable)."""

    samples: int = 0
    predicted_total: float = 0.0
    measured_total: float = 0.0
    abs_error_total: float = 0.0

    def observe(self, predicted: float, measured: float) -> None:
        self.samples += 1
        self.predicted_total += predicted
        self.measured_total += measured
        if measured:
            self.abs_error_total += abs(predicted - measured) / measured

    def factor(self) -> float:
        if not self.predicted_total:
            return 1.0
        return self.measured_total / self.predicted_total

    def mean_abs_pct_error(self) -> float | None:
        if not self.samples:
            return None
        return self.abs_error_total / self.samples

    def to_dict(self) -> dict[str, float]:
        return {
            "samples": self.samples,
            "predicted_total": self.predicted_total,
            "measured_total": self.measured_total,
            "abs_error_total": self.abs_error_total,
        }

    def absorb(self, data: dict[str, float]) -> None:
        self.samples += int(data.get("samples", 0))
        self.predicted_total += data.get("predicted_total", 0.0)
        self.measured_total += data.get("measured_total", 0.0)
        self.abs_error_total += data.get("abs_error_total", 0.0)


class CostCalibrator:
    """Learns measured/predicted factors from a batch's conversions.

    Calibration is *reporting-side* state: it never feeds back into
    the per-program predictions (which must stay pure so reports are
    byte-identical at any worker count), but it makes the model
    falsifiable -- ``factor()`` near 1.0 means the static profile
    tracks the measured registry deltas.

    Worker processes each grow their own calibrator; the coordinator
    absorbs their snapshots at flush so a parallel batch learns from
    the whole corpus exactly like a serial one.
    """

    def __init__(self) -> None:
        self._channels: dict[str, _Channel] = {}

    def observe(self, strategy: str, predicted: float,
                measured: float) -> None:
        channel = self._channels.setdefault(strategy, _Channel())
        channel.observe(predicted, measured)

    @property
    def samples(self) -> int:
        return sum(c.samples for c in self._channels.values())

    def factor(self, strategy: str) -> float:
        channel = self._channels.get(strategy)
        return channel.factor() if channel is not None else 1.0

    def calibrate(self, strategy: str, predicted: float) -> float:
        """A calibrated (reporting-side) cost estimate."""
        return predicted * self.factor(strategy)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """A picklable merge-ready view (ships worker -> coordinator)."""
        return {name: channel.to_dict()
                for name, channel in sorted(self._channels.items())}

    def absorb(self, snapshot: dict[str, dict[str, float]]) -> None:
        for name, data in snapshot.items():
            self._channels.setdefault(name, _Channel()).absorb(data)

    def delta(self, before: dict[str, dict[str, float]]
              ) -> dict[str, dict[str, float]]:
        """Observations accumulated since a prior :meth:`snapshot`.

        A warm pool worker ships only its per-batch delta at flush --
        shipping the running totals again would double-count samples
        the coordinator already absorbed in an earlier batch.
        """
        out: dict[str, dict[str, float]] = {}
        for name, data in self.snapshot().items():
            prior = before.get(name, {})
            moved = {
                key: value - prior.get(key, 0)
                for key, value in data.items()
            }
            if any(moved.values()):
                out[name] = moved
        return out

    def accuracy(self) -> dict[str, dict[str, float | None]]:
        """Per-strategy accuracy summary for the bench report."""
        return {
            name: {
                "samples": channel.samples,
                "factor": channel.factor(),
                "mean_abs_pct_error": channel.mean_abs_pct_error(),
            }
            for name, channel in sorted(self._channels.items())
        }


__all__ = [
    "AccessProfile",
    "CostCalibrator",
    "CostModel",
    "CostPredictor",
    "Prediction",
    "estimate_profile",
]
