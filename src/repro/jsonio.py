"""Atomic JSON document IO.

Every machine-readable artifact the framework writes -- benchmark
reports, batch checkpoints, trace files -- goes through one helper
that creates parent directories and writes atomically (temp file in
the same directory, then ``os.replace``), so a killed run never
leaves a half-written document where a previous good one stood.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


def write_json_atomic(data: Any, out_path: "str | Path", indent: int = 2) -> Path:
    """Serialize ``data`` to ``out_path`` atomically, creating parents.

    The temp file lives next to the target (same filesystem, so the
    rename is atomic) and is named after it, matching the batch
    checkpoint journal's convention.
    """
    path = Path(out_path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, indent=indent) + "\n")
    os.replace(tmp, path)
    return path
