"""Atomic, durable JSON document IO.

Every machine-readable artifact the framework writes -- benchmark
reports, batch checkpoints and their per-worker shards, trace files --
goes through one helper that creates parent directories and writes
atomically (temp file in the same directory, then ``os.replace``), so
a killed run never leaves a half-written document where a previous
good one stood.

Atomicity alone is not durability: after the rename, the *directory
entry* pointing at the new file may still live only in the page cache,
and a crash can resurrect the old file -- or, during the parallel
batch's shard merge, lose the merged checkpoint while the shards have
already been unlinked.  So the writer also fsyncs the temp file before
the rename and the containing directory after it.  ``fsync_dir`` is a
module-level seam on purpose: the fault-injection harness arms it
(``inject(jsonio, "fsync_dir")``) to simulate a crash inside exactly
that window.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


def fsync_dir(path: Path) -> None:
    """Flush a directory entry to stable storage (POSIX).

    Platforms without directory fds (or filesystems refusing the open)
    degrade to atomic-but-not-durable, matching the pre-fix behaviour.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_json_atomic(data: Any, out_path: "str | Path", indent: int = 2) -> Path:
    """Serialize ``data`` to ``out_path`` atomically and durably.

    The temp file lives next to the target (same filesystem, so the
    rename is atomic) and is named after it, matching the batch
    checkpoint journal's convention.  The temp file is fsynced before
    the rename and the containing directory after it, so a crash at
    any instant leaves either the previous document or the new one --
    never a mix, and never a directory entry that a power loss rolls
    back.
    """
    path = Path(out_path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    payload = json.dumps(data, indent=indent) + "\n"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return path


def remove_durable(path: "str | Path") -> None:
    """Unlink ``path`` and fsync its directory entry away.

    The durability twin of :func:`write_json_atomic`: an unlink that
    only reaches the page cache can be rolled back by a power loss,
    resurrecting a file the caller already acted on.  The batch layer
    removes checkpoint shards through this helper so a crash after a
    shard merge cannot bring back stale shards that a later resume
    would fold over fresher main-checkpoint state.  Missing files are
    tolerated (the caller's intent -- the file being gone -- already
    holds).
    """
    target = Path(path)
    try:
        target.unlink()
    except FileNotFoundError:
        return
    fsync_dir(target.parent)
