"""The Conversion Analyzer (Figure 4.1).

"The Conversion Analyzer analyzes the source and target databases in
order to classify the types of changes that have been made and to
encode the descriptions in suitable internal representations."

Input is either a restructuring operator (the paper's "definition of a
restructuring") or just the two schemas (name-diff inference).  Output
is a :class:`ChangeCatalog`: the classified change list plus the impact
queries the converter and supervisor ask.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.restructure.operators import RestructuringOperator
from repro.schema.diff import (
    ConstraintAdded,
    ConstraintRemoved,
    FieldAdded,
    FieldRemoved,
    FieldRenamed,
    MembershipChanged,
    RecordAdded,
    RecordInterposed,
    RecordRemoved,
    RecordRenamed,
    RecordsMerged,
    SchemaChange,
    SetAdded,
    SetOrderChanged,
    SetRemoved,
    SetRenamed,
    SiblingOrderChanged,
    VirtualizedField,
    diff_schemas,
)
from repro.schema.model import Schema


@dataclass(frozen=True)
class RenameSuggestion:
    """A remove+add pair the analyzer believes is really a rename;
    the Conversion Analyst confirms or rejects it."""

    kind: str       # 'record' | 'field'
    old_name: str
    new_name: str
    evidence: str

    def render(self) -> str:
        return (f"{self.kind} {self.old_name} -> {self.new_name}? "
                f"({self.evidence})")


@dataclass
class ChangeCatalog:
    """Classified changes plus source/target schemas."""

    source_schema: Schema
    target_schema: Schema
    changes: list[SchemaChange] = field(default_factory=list)

    # -- impact queries --------------------------------------------------

    def affected_sets(self) -> set[str]:
        """Set names whose traversal semantics changed."""
        names: set[str] = set()
        for change in self.changes:
            if isinstance(change, (SetRenamed, SetRemoved,
                                   SetOrderChanged, MembershipChanged)):
                names.add(getattr(change, "set_name",
                                  getattr(change, "old_name", "")))
            elif isinstance(change, RecordInterposed):
                names.add(change.old_set)
            elif isinstance(change, RecordsMerged):
                names.add(change.upper_set)
                names.add(change.lower_set)
            elif isinstance(change, SiblingOrderChanged):
                names.update(change.old_order)
        names.discard("")
        return names

    def affected_records(self) -> set[str]:
        names: set[str] = set()
        for change in self.changes:
            for attribute in ("record", "old_name", "new_record",
                              "removed_record"):
                value = getattr(change, attribute, None)
                if isinstance(value, str) and \
                        value in self.source_schema.records:
                    names.add(value)
        return names

    def removed_fields(self) -> set[tuple[str, str]]:
        return {
            (change.record, change.field_name)
            for change in self.changes
            if isinstance(change, FieldRemoved)
        }

    def structural_changes(self) -> list[SchemaChange]:
        return [
            change for change in self.changes
            if isinstance(change, (RecordInterposed, RecordsMerged,
                                   SiblingOrderChanged))
        ]

    def constraint_changes(self) -> list[SchemaChange]:
        return [
            change for change in self.changes
            if isinstance(change, (ConstraintAdded, ConstraintRemoved))
        ]

    def is_information_preserving(self) -> bool:
        """No record/field removal -- the Section 1.1 precondition for
        full convertibility."""
        return not any(
            isinstance(change, (RecordRemoved, FieldRemoved))
            for change in self.changes
        )

    def summary(self) -> str:
        lines = [f"{len(self.changes)} classified change(s):"]
        lines.extend(f"  - {change.describe()}" for change in self.changes)
        return "\n".join(lines)


class ConversionAnalyzer:
    """Builds ChangeCatalogs from operators or schema pairs."""

    def analyze_operator(self, source_schema: Schema,
                         operator: RestructuringOperator) -> ChangeCatalog:
        """The primary mode: the restructuring definition is given."""
        target_schema = operator.apply_schema(source_schema)
        changes = operator.changes(source_schema)
        return ChangeCatalog(source_schema, target_schema, changes)

    def analyze_schemas(self, source_schema: Schema,
                        target_schema: Schema) -> ChangeCatalog:
        """Fallback mode: infer changes by name-diffing two schemas.

        Structural transformations (renames, interpositions) cannot be
        inferred this way; they show up as remove+add pairs that the
        converter will flag for the analyst.  Use
        :meth:`suggest_renames` to turn matching remove+add pairs into
        analyst-confirmable rename hypotheses.
        """
        changes = diff_schemas(source_schema, target_schema)
        return ChangeCatalog(source_schema, target_schema, changes)

    def suggest_renames(self, source_schema: Schema,
                        target_schema: Schema) -> list["RenameSuggestion"]:
        """Propose rename hypotheses for remove+add pairs.

        A removed record type whose stored-field *signature* (names +
        PIC types + CALC keys) matches exactly one added record type is
        probably a rename -- Section 5.1's "classes of meaningful
        changes" studied so the analyst confirms instead of redesigns.
        The same matching applies to fields within a shared record
        (same PIC type, removed and added together).
        """
        changes = diff_schemas(source_schema, target_schema)
        suggestions: list[RenameSuggestion] = []

        removed_records = [c.record for c in changes
                           if isinstance(c, RecordRemoved)]
        added_records = [c.record for c in changes
                         if isinstance(c, RecordAdded)]

        def record_signature(schema: Schema, name: str) -> tuple:
            record = schema.record(name)
            return (
                tuple((f.name, f.type.pic, f.is_virtual)
                      for f in record.fields),
                record.calc_keys,
            )

        for old_name in removed_records:
            signature = record_signature(source_schema, old_name)
            matches = [
                new_name for new_name in added_records
                if record_signature(target_schema, new_name) == signature
            ]
            if len(matches) == 1:
                suggestions.append(RenameSuggestion(
                    "record", old_name, matches[0],
                    "identical field signature and CALC keys",
                ))

        # Field renames within a record present on both sides.
        removed_fields = [(c.record, c.field_name) for c in changes
                          if isinstance(c, FieldRemoved)]
        added_fields = [(c.record, c.field_name) for c in changes
                        if isinstance(c, FieldAdded)]
        for record_name, old_field in removed_fields:
            if record_name not in target_schema.records:
                continue
            old_type = source_schema.record(record_name).field(
                old_field).type
            matches = [
                new_field for new_record, new_field in added_fields
                if new_record == record_name
                and target_schema.record(record_name).field(
                    new_field).type == old_type
            ]
            if len(matches) == 1:
                suggestions.append(RenameSuggestion(
                    "field", f"{record_name}.{old_field}",
                    f"{record_name}.{matches[0]}",
                    f"only type-compatible candidate (PIC "
                    f"{old_type.pic})",
                ))
        return suggestions


# Re-exported for convenience in reports.
_CHANGE_ORDER = (
    RecordRenamed, FieldRenamed, SetRenamed,
    RecordAdded, RecordRemoved, FieldAdded, FieldRemoved,
    SetAdded, SetRemoved, SetOrderChanged, MembershipChanged,
    VirtualizedField, RecordInterposed, RecordsMerged,
    SiblingOrderChanged, ConstraintAdded, ConstraintRemoved,
)
