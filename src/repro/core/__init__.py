"""The Figure 4.1 database program conversion framework.

Every box in the paper's architecture diagram is a module here:

===========================  =========================================
Figure 4.1 box               module
===========================  =========================================
Conversion Analyzer          :mod:`repro.core.analyzer_db`
Program Analyzer             :mod:`repro.core.analyzer_program`
  (language templates)       :mod:`repro.core.templates`
  (access patterns, Su)      :mod:`repro.core.access_patterns`
  (access path graph, Su)    :mod:`repro.core.access_path_graph`
Abstract source/target       :mod:`repro.core.abstract`
Program Converter            :mod:`repro.core.converter`
  (transformation rules)     :mod:`repro.core.rules`
Optimizer                    :mod:`repro.core.optimizer`
Program Generator            :mod:`repro.core.generator`
Conversion Supervisor        :mod:`repro.core.supervisor`
  (reports to the analyst)   :mod:`repro.core.report`
"runs equivalently" check    :mod:`repro.core.equivalence`
Mehl & Wang substitution     :mod:`repro.core.command_substitution`
===========================  =========================================
"""

from repro.core.abstract import (
    ACond,
    AErase,
    AFirst,
    ALocate,
    AModify,
    AQuery,
    AScan,
    AStore,
    AToOwner,
    AbstractProgram,
)
from repro.core.analyzer_db import (
    ChangeCatalog,
    ConversionAnalyzer,
    RenameSuggestion,
)
from repro.core.analyzer_program import ProgramAnalyzer
from repro.core.access_patterns import AccessPattern, access_pattern_sequence
from repro.core.access_path_graph import AccessPathGraph
from repro.core.converter import ProgramConverter
from repro.core.optimizer import Optimizer, CostModel
from repro.core.generator import ProgramGenerator
from repro.core.equivalence import EquivalenceReport, check_equivalence
from repro.core.supervisor import (
    Analyst,
    AnalystQuestion,
    AutoAnalyst,
    ConversionOutcome,
    ConversionSupervisor,
    RefusingAnalyst,
    ScriptedAnalyst,
)

__all__ = [
    "ACond",
    "ALocate",
    "AScan",
    "AFirst",
    "AToOwner",
    "AStore",
    "AModify",
    "AErase",
    "AQuery",
    "AbstractProgram",
    "ChangeCatalog",
    "ConversionAnalyzer",
    "RenameSuggestion",
    "ProgramAnalyzer",
    "AccessPattern",
    "access_pattern_sequence",
    "AccessPathGraph",
    "ProgramConverter",
    "Optimizer",
    "CostModel",
    "ProgramGenerator",
    "EquivalenceReport",
    "check_equivalence",
    "Analyst",
    "AnalystQuestion",
    "AutoAnalyst",
    "ScriptedAnalyst",
    "RefusingAnalyst",
    "ConversionSupervisor",
    "ConversionOutcome",
]
