"""Michigan code templates (Section 4.3).

"Code templates are predefined sequences of host language DML
statements (similar to macros) which implement a set of high level data
manipulation operations.  Each code template corresponds to a operator
in the relational algebra.  Application programs are written using
nested code templates.  ...  High-level program conversion is
accomplished by using relational algebra specifications for the data
conversion to transform relational algebra specifications for the
templates."  (Schindler; the approach Housel proposed independently.)

This module implements exactly that workflow:

* an algebra of template expressions -- :class:`RelationRef`,
  :class:`Select`, :class:`Join` (navigational equi-join along a set),
  :class:`Project` -- over the common schema;
* :func:`expand` -- the macro expansion into an abstract program (and
  from there, via the Program Generator, into concrete network or
  relational DML);
* :func:`convert_algebra` -- Schindler's conversion: the *algebra
  expression itself* is rewritten for a schema change, then re-expanded
  -- no program analysis needed, which is the paper's §4.3 argument for
  writing programs with templates in the first place ("the problem of
  decompiling an arbitrary host language program which does not use
  code templates is a open problem").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.core.abstract import (
    ACond,
    AScan,
    AbstractProgram,
)
from repro.errors import ConversionError, UnconvertiblePattern
from repro.programs import ast
from repro.schema.diff import (
    FieldRenamed,
    RecordInterposed,
    RecordRenamed,
    RecordsMerged,
    SchemaChange,
    SetRenamed,
)
from repro.schema.model import Schema


# ---------------------------------------------------------------------------
# The template algebra
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationRef:
    """A base relation (all instances of a record type)."""

    record: str

    def render(self) -> str:
        return self.record


@dataclass(frozen=True)
class Select:
    """sigma: restrict by equality/comparison conditions."""

    source: "Algebra"
    conditions: tuple[ACond, ...]

    def render(self) -> str:
        conds = " AND ".join(c.render() for c in self.conditions)
        return f"SELECT[{conds}]({self.source.render()})"


@dataclass(frozen=True)
class Join:
    """Navigational equi-join: members of ``via`` under each row of
    ``source`` (whose record type must own the set)."""

    source: "Algebra"
    via: str
    member: str

    def render(self) -> str:
        return f"JOIN[{self.via}]({self.source.render()}, {self.member})"


@dataclass(frozen=True)
class Project:
    """pi: the output fields (entity-qualified, e.g. ``EMP.EMP-NAME``)."""

    source: "Algebra"
    fields: tuple[str, ...]

    def render(self) -> str:
        return f"PROJECT[{', '.join(self.fields)}]({self.source.render()})"


Algebra = Union[RelationRef, Select, Join, Project]


@dataclass(frozen=True)
class TemplateProgram:
    """A program written entirely in code templates: one algebra
    expression whose projected fields are displayed per result row."""

    name: str
    schema_name: str
    expression: Algebra

    def render(self) -> str:
        return f"TEMPLATE {self.name}: {self.expression.render()}"


# ---------------------------------------------------------------------------
# Macro expansion
# ---------------------------------------------------------------------------


def _system_set_for(schema: Schema, record: str) -> str:
    for set_type in schema.system_sets():
        if set_type.member == record:
            return set_type.name
    raise ConversionError(
        f"record {record} has no SYSTEM set; template expansion needs "
        "an entry point"
    )


def _normalize(expression: Algebra) -> tuple[Algebra, tuple[str, ...]]:
    """Strip the outer Project (defaulting to no fields)."""
    if isinstance(expression, Project):
        return expression.source, expression.fields
    return expression, ()


@dataclass(frozen=True)
class _Level:
    """One scan level of the compiled expression."""

    entity: str
    via: str | None   # None = entry via the entity's SYSTEM set
    conditions: tuple[ACond, ...]


def _levels(expression: Algebra) -> list[_Level]:
    """Flatten the algebra into scan levels, outermost first.

    SELECT conditions attach to the level of the expression's *result*
    entity (the innermost scan so far).
    """
    if isinstance(expression, RelationRef):
        return [_Level(expression.record, None, ())]
    if isinstance(expression, Select):
        levels = _levels(expression.source)
        last = levels[-1]
        levels[-1] = replace(
            last, conditions=last.conditions + expression.conditions
        )
        return levels
    if isinstance(expression, Join):
        return _levels(expression.source) + [
            _Level(expression.member, expression.via, ())
        ]
    if isinstance(expression, Project):
        raise ConversionError("PROJECT must be the outermost template")
    raise ConversionError(f"unknown template {expression!r}")


def expand(program: TemplateProgram, schema: Schema) -> AbstractProgram:
    """Expand the template expression into an abstract program.

    The expansion compiles the algebra into nested scans: the innermost
    scan's body displays the projected fields, which is the template
    bodies' "host language sequence".
    """
    inner, fields = _normalize(program.expression)
    body: tuple = (ast.WriteTerminal(tuple(
        ast.Var(field_name) for field_name in fields
    )),) if fields else (ast.WriteTerminal((ast.Const("ROW"),)),)

    statements: tuple = body
    for level in reversed(_levels(inner)):
        via = level.via
        if via is None:
            via = _system_set_for(schema, level.entity)
        else:
            set_type = schema.set_type(via)
            if set_type.member != level.entity:
                raise ConversionError(
                    f"JOIN template: {level.entity} is not the member "
                    f"of {via}"
                )
        statements = (AScan(level.entity, via, level.conditions,
                            statements, bind=True, order_sensitive=True),)
    return AbstractProgram(program.name, "network", program.schema_name,
                           tuple(statements))


# ---------------------------------------------------------------------------
# Algebra-level conversion (Schindler / Housel)
# ---------------------------------------------------------------------------


def convert_algebra(program: TemplateProgram,
                    changes: list[SchemaChange],
                    rewrites: dict[str, str] | None = None
                    ) -> TemplateProgram:
    """Rewrite the template expression for a list of schema changes.

    This is the Section 4.3 move: because the program *is* an algebra
    expression, conversion never inspects host-language code -- the
    "relational algebra specifications for the data conversion
    transform" the expression directly.

    ``rewrites`` maps change kinds to :data:`ALGEBRA_REWRITES` names
    (a rule catalog's ``ALGEBRA`` entries, via
    ``CompiledRules.algebra_map()``); kinds without a binding leave
    the expression untouched.  ``None`` uses the builtin
    :data:`DEFAULT_ALGEBRA_MAP`.
    """
    mapping = DEFAULT_ALGEBRA_MAP if rewrites is None else rewrites
    expression = program.expression
    for change in changes:
        name = mapping.get(change.kind)
        if name is None:
            continue
        _kind, rewrite = ALGEBRA_REWRITES[name]
        expression = rewrite(expression, change)
    return replace(program, expression=expression)


def _descend(expression: Algebra, node_fn, field_fn=None) -> Algebra:
    """Rewrite bottom-up: sources first, then ``node_fn`` on each
    node; ``field_fn`` maps projected field references."""
    if isinstance(expression, Project):
        source = _descend(expression.source, node_fn, field_fn)
        fields = expression.fields
        if field_fn is not None:
            fields = tuple(field_fn(f) for f in fields)
        return node_fn(replace(expression, source=source, fields=fields))
    if isinstance(expression, (Select, Join)):
        return node_fn(replace(
            expression,
            source=_descend(expression.source, node_fn, field_fn),
        ))
    if isinstance(expression, RelationRef):
        return node_fn(expression)
    raise ConversionError(f"unknown template {expression!r}")


def _rw_rename_relation(expression: Algebra,
                        change: RecordRenamed) -> Algebra:
    def fix(node: Algebra) -> Algebra:
        if isinstance(node, RelationRef) and \
                node.record == change.old_name:
            return RelationRef(change.new_name)
        if isinstance(node, Join) and node.member == change.old_name:
            return replace(node, member=change.new_name)
        return node

    return _descend(expression, fix,
                    lambda f: _rename_field_ref(f, change))


def _rw_rename_columns(expression: Algebra,
                       change: FieldRenamed) -> Algebra:
    def fix(node: Algebra) -> Algebra:
        if isinstance(node, Select) and \
                _scanned_entity(node.source) == change.record:
            return replace(node, conditions=tuple(
                replace(c, field=change.new_name)
                if c.field == change.old_name else c
                for c in node.conditions
            ))
        return node

    return _descend(expression, fix,
                    lambda f: _rename_field_ref(f, change))


def _rw_rename_set_path(expression: Algebra,
                        change: SetRenamed) -> Algebra:
    def fix(node: Algebra) -> Algebra:
        if isinstance(node, Join) and node.via == change.old_name:
            return replace(node, via=change.new_name)
        return node

    return _descend(expression, fix)


def _rw_extend_join_path(expression: Algebra,
                         change: RecordInterposed) -> Algebra:
    def fix(node: Algebra) -> Algebra:
        if isinstance(node, Join) and node.via == change.old_set:
            # JOIN[S](X, M) -> JOIN[LOWER](JOIN[UPPER](X, N), M):
            # exactly the Figure 4.2 -> 4.4 path extension, at the
            # algebra level.
            return Join(
                Join(node.source, change.upper_set, change.new_record),
                change.lower_set, node.member,
            )
        return node

    return _descend(expression, fix)


def _rw_collapse_join_path(expression: Algebra,
                           change: RecordsMerged) -> Algebra:
    def fix(node: Algebra) -> Algebra:
        if isinstance(node, Join) and node.via == change.lower_set:
            inner = node.source
            if isinstance(inner, Join) and \
                    inner.via == change.upper_set and \
                    inner.member == change.removed_record:
                return Join(inner.source, change.new_set, node.member)
            raise UnconvertiblePattern(
                f"merge of {change.removed_record} needs the paired "
                f"JOIN[{change.upper_set}] template"
            )
        return node

    return _descend(expression, fix)


#: Named algebra rewrites a catalog ``ALGEBRA`` entry may bind:
#: rewrite name -> (change kind, rewrite function).
ALGEBRA_REWRITES: dict[str, tuple[str, object]] = {
    "rename-relation": ("RecordRenamed", _rw_rename_relation),
    "rename-columns": ("FieldRenamed", _rw_rename_columns),
    "rename-set-path": ("SetRenamed", _rw_rename_set_path),
    "extend-join-path": ("RecordInterposed", _rw_extend_join_path),
    "collapse-join-path": ("RecordsMerged", _rw_collapse_join_path),
}

#: The builtin change-kind -> rewrite-name binding (what the shipped
#: catalog's ALGEBRA entries re-express).
DEFAULT_ALGEBRA_MAP: dict[str, str] = {
    kind: name for name, (kind, _fn) in ALGEBRA_REWRITES.items()
}


def _scanned_entity(expression: Algebra) -> str | None:
    if isinstance(expression, RelationRef):
        return expression.record
    if isinstance(expression, Join):
        return expression.member
    if isinstance(expression, Select):
        return _scanned_entity(expression.source)
    return None


def _rename_field_ref(field_ref: str, change: SchemaChange) -> str:
    entity, _dot, field_name = field_ref.partition(".")
    if isinstance(change, RecordRenamed) and entity == change.old_name:
        entity = change.new_name
    if isinstance(change, FieldRenamed) and entity == change.record \
            and field_name == change.old_name:
        field_name = change.new_name
    return f"{entity}.{field_name}"


__all__ = [
    "RelationRef",
    "Select",
    "Join",
    "Project",
    "Algebra",
    "TemplateProgram",
    "expand",
    "convert_algebra",
    "ALGEBRA_REWRITES",
    "DEFAULT_ALGEBRA_MAP",
]
