"""Access path graphs (Section 4.1).

Su's "data model dependent representation, called an 'access path
graph', is used to describe how a data traversal can be interpreted in
the relational, network, or hierarchical model."  Here the graph's
nodes are record types and its edges are the associations (set types),
annotated per data model with how the hop is realized:

* network      -- owner->member set traversal / member->owner FIND OWNER
* relational   -- equi-join on the foreign-key columns
* hierarchical -- parent->child GNP / child->parent re-GU

The graph answers two framework questions: *is* there an access path
between two entity types (and through which associations), and is the
path *ambiguous* -- multiple distinct paths, which Figure 4.1 says the
supervisor must resolve interactively ("if ... multiple data paths can
be found to carry out an access then these issues can be resolved
interactively").
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.relational.database import fk_columns
from repro.schema.model import Schema


@dataclass(frozen=True)
class PathHop:
    """One edge of an access path."""

    set_name: str
    from_record: str
    to_record: str
    direction: str  # 'down' (owner->member) or 'up' (member->owner)

    def realization(self, model: str, schema: Schema) -> str:
        """How this hop executes in a given data model."""
        if model == "network":
            if self.direction == "down":
                return f"FIND NEXT {self.to_record} WITHIN {self.set_name}"
            return f"FIND OWNER WITHIN {self.set_name}"
        if model == "relational":
            set_type = schema.set_type(self.set_name)
            columns = fk_columns(schema, set_type)
            return (f"join {self.from_record} and {self.to_record} "
                    f"on ({', '.join(columns)})")
        if model == "hierarchical":
            if self.direction == "down":
                return f"GNP {self.to_record}"
            return f"GU {self.to_record} (re-establish parentage)"
        raise ValueError(f"unknown model {model!r}")


class AccessPathGraph:
    """Record types and their associations as an undirected multigraph."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.graph = nx.MultiGraph()
        for record_name in schema.records:
            self.graph.add_node(record_name)
        for set_type in schema.sets.values():
            if set_type.system_owned:
                continue
            self.graph.add_edge(set_type.owner, set_type.member,
                                key=set_type.name)

    def paths(self, source: str, target: str,
              max_hops: int = 6) -> list[list[PathHop]]:
        """All simple association paths between two record types."""
        self.schema.record(source)
        self.schema.record(target)
        if source == target:
            return [[]]
        found: list[list[PathHop]] = []
        seen_node_paths: set[tuple[str, ...]] = set()
        for node_path in nx.all_simple_paths(self.graph, source, target,
                                             cutoff=max_hops):
            # A multigraph yields one node path per parallel-edge
            # combination; parallel sets are enumerated in
            # _expand_edges, so deduplicate the node paths here.
            key = tuple(node_path)
            if key in seen_node_paths:
                continue
            seen_node_paths.add(key)
            found.extend(self._expand_edges(node_path))
        return found

    def _expand_edges(self, node_path: list[str]) -> list[list[PathHop]]:
        """A node path may cross parallel sets; enumerate each choice."""
        options: list[list[PathHop]] = [[]]
        for from_record, to_record in zip(node_path, node_path[1:]):
            hops: list[PathHop] = []
            for set_type in self.schema.sets.values():
                if set_type.system_owned:
                    continue
                if (set_type.owner == from_record
                        and set_type.member == to_record):
                    hops.append(PathHop(set_type.name, from_record,
                                        to_record, "down"))
                elif (set_type.member == from_record
                      and set_type.owner == to_record):
                    hops.append(PathHop(set_type.name, from_record,
                                        to_record, "up"))
            options = [
                prefix + [hop] for prefix in options for hop in hops
            ]
        return options

    def is_ambiguous(self, source: str, target: str) -> bool:
        """Multiple distinct access paths exist -- an analyst question."""
        return len(self.paths(source, target)) > 1

    def shortest_path(self, source: str, target: str) -> list[PathHop]:
        """The (hop-count) shortest path; raises when none exists."""
        candidates = self.paths(source, target)
        if not candidates:
            raise nx.NetworkXNoPath(
                f"no access path between {source} and {target}"
            )
        return min(candidates, key=len)

    def entry_points(self) -> list[str]:
        """Record types reachable directly (SYSTEM sets or CALC keys)."""
        entries = {
            set_type.member for set_type in self.schema.system_sets()
        }
        entries.update(
            name for name, record in self.schema.records.items()
            if record.calc_keys
        )
        return sorted(entries)
