"""Operational equivalence checking.

Section 1.1's rule, made executable: "except with respect to the
database, a restructured program must preserve the input/output
behavior of the original program."  We run the source program against
the source database and the converted program against the restructured
database, under identical terminal/file inputs, and compare the traces
event by event.

Section 5.2's "levels of successful conversion" appear as the
``level`` field: ``strict`` when traces are identical, ``warned`` when
they are identical but the conversion carried behaviour warnings, and
``divergent`` when the traces differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs, run_program
from repro.programs.iotrace import IOTrace


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of one source-vs-target comparison."""

    equivalent: bool
    level: str                 # 'strict' | 'warned' | 'divergent'
    divergence: str | None
    source_trace: IOTrace
    target_trace: IOTrace

    def render(self) -> str:
        if self.equivalent:
            return f"equivalent ({self.level}): {len(self.source_trace)} events match"
        return f"NOT equivalent: {self.divergence}"


def check_equivalence(source_program: Program, source_db,
                      target_program: Program, target_db,
                      inputs: ProgramInputs | None = None,
                      warnings: tuple[str, ...] = (),
                      consistent: bool = True) -> EquivalenceReport:
    """Run both programs and compare their observable behaviour."""
    inputs = inputs or ProgramInputs()
    source_trace = run_program(source_program, source_db, inputs.copy(),
                               consistent=consistent)
    target_trace = run_program(target_program, target_db, inputs.copy(),
                               consistent=consistent)
    divergence = source_trace.diff(target_trace)
    if divergence is None:
        level = "warned" if warnings else "strict"
        return EquivalenceReport(True, level, None, source_trace,
                                 target_trace)
    return EquivalenceReport(False, "divergent", divergence, source_trace,
                             target_trace)
