"""Mehl & Wang command substitution for hierarchical programs.

Section 2.2: "Mehl and Wang presented a method to intercept and
interpret DL/I statements to account for changes in the hierarchical
order of an IMS structure.  Algorithms involving command substitution
rules for certain structural changes were derived to allow for correct
execution of the old application programs."

Unlike the Figure 4.1 decompile/recompile pipeline, this converter
rewrites the *concrete* DL/I call sequence.  The rule implemented is
the sibling-order rule: when the child segment types of a parent are
reordered (:class:`~repro.schema.diff.SiblingOrderChanged`),

* **typed** GNP/GN loops (an SSA naming one segment type) are
  unaffected -- twin order within a type does not change;
* an **untyped** GNP loop under an affected parent is substituted by a
  sequence of typed GNP loops in the *original* sibling order, which
  reconstructs the source presentation order exactly;
* an untyped loop whose body reads type-specific fields cannot be
  specialized mechanically and is referred to the analyst.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import UnconvertiblePattern
from repro.programs import ast
from repro.schema.diff import SiblingOrderChanged
from repro.schema.model import Schema


@dataclass(frozen=True)
class SubstitutionResult:
    program: ast.Program
    notes: tuple[str, ...]


def _is_hier_status_ok(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.Bin) and expr.op == "="
            and isinstance(expr.left, ast.Var)
            and expr.left.name == "DB-STATUS"
            and isinstance(expr.right, ast.Const)
            and expr.right.value == "  ")


def _untyped(ssas: tuple[ast.SsaSpec, ...]) -> bool:
    return len(ssas) == 0


def _body_mentions_types(body: tuple[ast.Stmt, ...],
                         types: list[str]) -> list[str]:
    """Which of ``types`` have their fields referenced in the body?"""
    mentioned = []

    def in_expr(expr: ast.Expr, prefix: str) -> bool:
        if isinstance(expr, ast.Var):
            return expr.name.startswith(prefix)
        if isinstance(expr, ast.Bin):
            return in_expr(expr.left, prefix) or in_expr(expr.right, prefix)
        return False

    for type_name in types:
        prefix = f"{type_name}."
        for stmt in ast.walk(body):
            exprs = list(getattr(stmt, "exprs", ()))
            for attribute in ("condition", "expr"):
                value = getattr(stmt, attribute, None)
                if value is not None:
                    exprs.append(value)
            if any(in_expr(expr, prefix) for expr in exprs):
                mentioned.append(type_name)
                break
    return mentioned


def convert_hierarchical_program(program: ast.Program,
                                 change: SiblingOrderChanged,
                                 source_schema: Schema
                                 ) -> SubstitutionResult:
    """Apply the sibling-order command substitution rule."""
    child_types = [
        source_schema.set_type(name).member for name in change.old_order
    ]
    notes: list[str] = []

    def fix(stmt: ast.Stmt):
        # Pattern: GNP() ; WHILE status-ok { body... ; GNP() }
        return stmt

    # Pairwise rewriting needs sequence context, so walk blocks manually.
    def rewrite_block(statements: tuple[ast.Stmt, ...]
                      ) -> tuple[ast.Stmt, ...]:
        out: list[ast.Stmt] = []
        index = 0
        while index < len(statements):
            stmt = statements[index]
            following = statements[index + 1] \
                if index + 1 < len(statements) else None
            if (isinstance(stmt, ast.HierGNP) and _untyped(stmt.ssas)
                    and isinstance(following, ast.While)
                    and _is_hier_status_ok(following.condition)
                    and following.body
                    and isinstance(following.body[-1], ast.HierGNP)
                    and _untyped(following.body[-1].ssas)):
                body = tuple(rewrite_block(following.body[:-1]))
                specific = _body_mentions_types(body, child_types)
                if specific:
                    raise UnconvertiblePattern(
                        "untyped GNP loop reads fields of segment "
                        f"type(s) {specific}; command substitution "
                        "cannot specialize it (analyst required)"
                    )
                for set_name in change.old_order:
                    child = source_schema.set_type(set_name).member
                    ssa = ast.SsaSpec(child)
                    # Each generated loop scans the subtree from its
                    # top: re-establish position at the parent first.
                    out.append(ast.HierPositionParent())
                    out.append(ast.HierGNP((ssa,)))
                    out.append(ast.While(
                        ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  ")),
                        body + (ast.HierGNP((ssa,)),),
                    ))
                notes.append(
                    "untyped GNP loop substituted by typed GNP loops in "
                    f"original sibling order {list(change.old_order)}"
                )
                index += 2
                continue
            # Recurse into compound statements.
            if isinstance(stmt, ast.If):
                stmt = replace(stmt, then=rewrite_block(stmt.then),
                               orelse=rewrite_block(stmt.orelse))
            elif isinstance(stmt, ast.While):
                rewritten = rewrite_block(stmt.body)
                stmt = replace(stmt, body=rewritten)
            out.append(stmt)
            index += 1
        return tuple(out)

    del fix
    converted = program.with_statements(rewrite_block(program.statements))
    for stmt in ast.walk_program(converted):
        if isinstance(stmt, ast.HierGN) and _untyped(stmt.ssas):
            notes.append(
                "program performs an untyped full-database GN walk; its "
                "presentation order follows the (changed) hierarchical "
                "sequence -- flagged for the analyst"
            )
            break
    return SubstitutionResult(converted, tuple(notes))
