"""The Conversion Supervisor and the Conversion Analyst protocol.

"The system is intended to be interactive and controlled by a
Conversion Analyst interacting with the Program Conversion Supervisor
... if data referenced by an old program has been deleted or multiple
data paths can be found to carry out an access then these issues can
be resolved interactively." (Section 4)

The analyst is modeled as a protocol so experiments can script it:
:class:`AutoAnalyst` answers with defaults (full automation),
:class:`ScriptedAnalyst` replays prepared answers, and
:class:`RefusingAnalyst` declines everything (measuring the purely
mechanical automation rate -- the E2 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.abstract import AScan, walk as walk_abstract
from repro.core.analyzer_db import ChangeCatalog, ConversionAnalyzer
from repro.core.analyzer_program import ProgramAnalyzer
from repro.core.converter import ProgramConverter
from repro.core.generator import ProgramGenerator
from repro.core.optimizer import CostModel, Optimizer
from repro.core.report import (
    BatchReport,
    ConversionReport,
    STATUS_ASSISTED,
    STATUS_AUTOMATIC,
    STATUS_FAILED,
    STATUS_WARNINGS,
)
from repro._deprecation import warn_deprecated
from repro.errors import (
    AnalysisError,
    ConversionError,
    GenerationError,
    PipelineFault,
    UnconvertiblePattern,
    annotate,
)
from repro.observe.registry import get_registry, registry_delta
from repro.options import DEFAULT_OPTIMIZER_PASSES, ConversionOptions
from repro.observe.tracing import span
from repro.programs import ast
from repro.restructure.operators import RestructuringOperator
from repro.schema.model import Schema


@dataclass(frozen=True)
class AnalystQuestion:
    """One issue raised to the Conversion Analyst."""

    kind: str       # 'pin-verb' | 'ambiguous-path' | 'unconvertible'
    program: str
    text: str
    options: tuple[str, ...] = ()

    def render(self) -> str:
        options = f" [{'/'.join(self.options)}]" if self.options else ""
        return f"({self.kind}) {self.text}{options}"


def pin_verb_question(program_name: str, failure: str) -> AnalystQuestion:
    """The Section 3.2 verb-variability refusal, as a question.

    Shared with the cascade's cost-based skip path: when the predictor
    proves the analyzer would refuse, the cascade poses this exact
    question without running the pipeline, so analyst transcripts are
    identical either way.
    """
    return AnalystQuestion("pin-verb", program_name, failure)


class Analyst:
    """Protocol: return an answer string, or None to decline."""

    def answer(self, question: AnalystQuestion) -> str | None:
        raise NotImplementedError


class AutoAnalyst(Analyst):
    """Answers with permissive defaults; can pin DML verbs.

    ``verb_pins`` maps program name -> {generic-call index -> verb}.
    """

    def __init__(self, verb_pins: dict[str, dict[int, str]] | None = None):
        self.verb_pins = verb_pins or {}

    def answer(self, question: AnalystQuestion) -> str | None:
        if question.kind == "pin-verb":
            pins = self.verb_pins.get(question.program)
            if pins:
                return "pinned"
            return None
        if question.kind == "ambiguous-path":
            return question.options[0] if question.options else "first"
        return None


class ScriptedAnalyst(Analyst):
    """Replays prepared answers keyed by question kind.

    A value may be a single string (repeated for every question of
    that kind) or a list of strings consumed front to first; an
    exhausted list declines further questions of that kind, modelling
    an analyst who walks away mid-batch.
    """

    def __init__(self, answers: dict[str, str | list[str]]):
        self.answers: dict[str, str | list[str]] = {
            kind: list(value) if isinstance(value, (list, tuple)) else value
            for kind, value in answers.items()
        }
        self.transcript: list[tuple[AnalystQuestion, str | None]] = []

    def answer(self, question: AnalystQuestion) -> str | None:
        value = self.answers.get(question.kind)
        if isinstance(value, list):
            answer = value.pop(0) if value else None
        else:
            answer = value
        self.transcript.append((question, answer))
        return answer


class RefusingAnalyst(Analyst):
    """Declines every question: measures mechanical automation only."""

    def __init__(self):
        self.declined: list[AnalystQuestion] = []

    def answer(self, question: AnalystQuestion) -> str | None:
        self.declined.append(question)
        return None


@dataclass
class ConversionOutcome:
    """Alias used by callers that want just the essentials."""

    report: ConversionReport

    @property
    def status(self) -> str:
        return self.report.status

    @property
    def program(self) -> ast.Program | None:
        return self.report.target_program


class ConversionSupervisor:
    """Drives one program (or a whole system) through Figure 4.1."""

    def __init__(self, source_schema: Schema,
                 operator: RestructuringOperator | None = None,
                 target_schema: Schema | None = None,
                 analyst: Analyst | None = None,
                 cost_model: CostModel | None = None,
                 optimizer_passes: tuple[str, ...] =
                 DEFAULT_OPTIMIZER_PASSES,
                 verb_pins: dict[str, dict[int, str]] | None = None,
                 rule_catalog=None):
        analyzer = ConversionAnalyzer()
        if operator is not None:
            self.catalog: ChangeCatalog = analyzer.analyze_operator(
                source_schema, operator
            )
        elif target_schema is not None:
            self.catalog = analyzer.analyze_schemas(source_schema,
                                                    target_schema)
        else:
            raise ValueError("supervisor needs an operator or a target schema")
        # ``rule_catalog`` accepts a RuleCatalog or a pre-compiled
        # CompiledRules; None keeps the builtin catalog (resolved
        # lazily by the converter, so this import stays conditional).
        compiled = None
        if rule_catalog is not None:
            from repro.catalog.compile import CompiledRules, compile_catalog
            compiled = rule_catalog \
                if isinstance(rule_catalog, CompiledRules) \
                else compile_catalog(rule_catalog)
        self.rule_catalog = compiled
        self.analyst = analyst if analyst is not None \
            else AutoAnalyst(verb_pins)
        self.program_analyzer = ProgramAnalyzer(source_schema)
        self.converter = ProgramConverter(compiled)
        passes = optimizer_passes if compiled is None \
            else compiled.gate_passes(optimizer_passes)
        self.optimizer = Optimizer(self.catalog.target_schema, cost_model,
                                   passes)
        self.generator = ProgramGenerator(
            self.catalog.target_schema,
            templates=None if compiled is None else compiled.templates)
        self.verb_pins = verb_pins or {}

    @classmethod
    def from_options(cls, source_schema: Schema,
                     operator: RestructuringOperator | None = None,
                     target_schema: Schema | None = None,
                     options: ConversionOptions | None = None
                     ) -> "ConversionSupervisor":
        """Build a supervisor from one :class:`ConversionOptions`
        (the :mod:`repro.api` construction path)."""
        options = options if options is not None else ConversionOptions()
        return cls(source_schema, operator, target_schema,
                   analyst=options.analyst,
                   optimizer_passes=options.optimizer_passes,
                   verb_pins=options.verb_pins,
                   rule_catalog=options.rule_catalog)

    # -- single program ----------------------------------------------------

    def _phase(self, phase: str, program_name: str, thunk):
        """Run one Figure 4.1 phase.  Pipeline errors get their
        ``program=``/``phase=`` context filled in; anything else is
        wrapped in a chained :class:`PipelineFault` so batch isolation
        can report the root cause structurally."""
        try:
            # Phases are pure AST work -- the engine counters only move
            # during reference runs and program execution -- so phase
            # spans skip the registry snapshots; the per-program delta
            # lives on the enclosing ``supervisor.convert`` span.
            with span(f"phase.{phase}", capture_metrics=False,
                      program=program_name):
                return thunk()
        except ConversionError as error:
            raise annotate(error, program=program_name, phase=phase)
        except Exception as exc:
            raise PipelineFault(
                f"{type(exc).__name__} escaped the {phase} phase: {exc}",
                program=program_name, phase=phase,
            ) from exc

    def convert_program(self, program: ast.Program,
                        target_model: str | None = None, *,
                        options: ConversionOptions | None = None
                        ) -> ConversionReport:
        """Convert one program, under a ``supervisor.convert`` span.

        The report comes back carrying the unified counter movement
        observed during the conversion (``report.metrics``).  The
        ``target_model=`` kwarg is a deprecated shim; pass
        ``options=ConversionOptions(target_model=...)``."""
        if target_model is not None:
            warn_deprecated(
                "ConversionSupervisor.convert_program:target_model",
                "convert_program(program, target_model=...) is "
                "deprecated; pass options="
                "ConversionOptions(target_model=...) instead",
            )
        elif options is not None:
            target_model = options.target_model
        registry = get_registry()
        before = registry.snapshot()
        # The span shares this wrapper's snapshots instead of taking
        # its own pair (capture_metrics=False, then stamped below).
        with span("supervisor.convert", capture_metrics=False,
                  program=program.name) as convert_span:
            report = self._convert_program(program, target_model)
        after = registry.snapshot()
        report.metrics = registry_delta(before, after)
        if convert_span:
            convert_span.metrics = {k: v for k, v in after.items() if v}
            convert_span.metrics_delta = dict(report.metrics)
        return report

    def _convert_program(self, program: ast.Program,
                         target_model: str | None = None
                         ) -> ConversionReport:
        target_model = target_model or program.model
        report = ConversionReport(program.name, STATUS_AUTOMATIC)

        # 1. Program Analyzer (with analyst-assisted verb pinning).
        try:
            abstract_source = self._phase(
                "analyze", program.name,
                lambda: self.program_analyzer.analyze(program))
        except AnalysisError as error:
            pins = self.verb_pins.get(program.name)
            question = pin_verb_question(program.name, str(error))
            answer = self.analyst.answer(question)
            report.questions.append(question.render())
            if answer is None or pins is None:
                report.status = STATUS_FAILED
                report.failure = str(error)
                return report
            try:
                abstract_source = self._phase(
                    "analyze", program.name,
                    lambda: self.program_analyzer.analyze(
                        program, pinned_verbs=pins))
                report.status = STATUS_ASSISTED
            except AnalysisError as retry_error:
                report.status = STATUS_FAILED
                report.failure = str(retry_error)
                return report
        report.abstract_source = abstract_source
        report.notes.extend(abstract_source.notes)

        # 2. Ambiguous access paths are an analyst question (Section 4).
        for ambiguity in self._ambiguous_paths(abstract_source):
            question = AnalystQuestion(
                "ambiguous-path", program.name, ambiguity,
                options=("keep-declared-set", "abort"),
            )
            answer = self.analyst.answer(question)
            report.questions.append(question.render())
            if answer in (None, "abort"):
                report.status = STATUS_FAILED
                report.failure = ambiguity
                return report
            if report.status == STATUS_AUTOMATIC:
                report.status = STATUS_ASSISTED

        # 3. Program Converter.
        try:
            artifacts = self._phase(
                "convert", program.name,
                lambda: self.converter.convert(abstract_source,
                                               self.catalog))
        except UnconvertiblePattern as error:
            question = AnalystQuestion("unconvertible", program.name,
                                       str(error))
            self.analyst.answer(question)
            report.questions.append(question.render())
            report.status = STATUS_FAILED
            report.failure = str(error)
            return report
        report.notes.extend(artifacts.notes)
        report.warnings.extend(artifacts.warnings)

        # 4. Optimizer.
        abstract_target = self._phase(
            "optimize", program.name,
            lambda: self.optimizer.optimize(artifacts.program))
        report.abstract_target = abstract_target

        # 5. Program Generator.
        try:
            target_program = self._phase(
                "generate", program.name,
                lambda: self.generator.generate(abstract_target,
                                                target_model))
        except GenerationError as error:
            report.status = STATUS_FAILED
            report.failure = str(error)
            return report
        report.target_program = target_program

        if report.status == STATUS_AUTOMATIC and report.warnings:
            report.status = STATUS_WARNINGS
        return report

    def _ambiguous_paths(self, abstract_source) -> list[str]:
        """Scans over sets with a parallel set in the target schema."""
        target = self.catalog.target_schema
        ambiguities = []
        for stmt in walk_abstract(abstract_source.statements):
            if not isinstance(stmt, AScan):
                continue
            source_set = self.catalog.source_schema.sets.get(stmt.via)
            if source_set is None:
                continue
            parallels = [
                other.name for other in target.sets.values()
                if other.owner == source_set.owner
                and other.member == source_set.member
                and other.name != stmt.via
                and stmt.via in target.sets
            ]
            if parallels:
                ambiguities.append(
                    f"access to {stmt.entity} can travel {stmt.via} or "
                    f"{parallels}; confirm the declared set"
                )
        return ambiguities

    # -- whole system ------------------------------------------------------------

    def convert_system(self, programs: list[ast.Program],
                       target_model: str | None = None, *,
                       options: ConversionOptions | None = None
                       ) -> BatchReport:
        """Convert every program.  ``target_model=`` is a deprecated
        shim; pass ``options=ConversionOptions(target_model=...)``."""
        if target_model is not None:
            warn_deprecated(
                "ConversionSupervisor.convert_system:target_model",
                "convert_system(programs, target_model=...) is "
                "deprecated; pass options="
                "ConversionOptions(target_model=...) instead",
            )
            options = (options or ConversionOptions()).replace(
                target_model=target_model)
        batch = BatchReport()
        for program in programs:
            batch.add(self.convert_program(program, options=options))
        return batch
