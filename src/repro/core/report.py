"""Conversion reports.

The Conversion Supervisor "oversees the operation of the other
modules" and surfaces what happened to the Conversion Analyst.  A
:class:`ConversionReport` is the per-program record: the status band,
the intermediate artifacts, the notes/warnings the rules produced, and
the analyst dialogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.abstract import AbstractProgram, render_abstract
from repro.programs.ast import Program, render_program
from repro.programs.parser import parse_program

#: Status bands, in decreasing order of automation (the E2 experiment
#: reports the corpus distribution across these, mirroring the paper's
#: "65-70 percent success rate" discussion of Section 2.1.1).
STATUS_AUTOMATIC = "automatic"
STATUS_WARNINGS = "converted-with-warnings"
STATUS_ASSISTED = "analyst-assisted"
#: The rewrite pipeline could not produce a validated program but one
#: of the runtime strategies (emulation, bridge) did -- the Section 2.1
#: fallback the paper keeps in reserve for "programs which cannot be
#: automatically rewritten".
STATUS_FELL_BACK = "fell-back"
STATUS_FAILED = "needs-manual-conversion"
#: The batch supervisor gave up on a poison program: its conversion
#: repeatedly killed the worker process running it (or, serially,
#: raised :class:`~repro.faultinject.WorkerKilled`), so the program was
#: pulled from the batch with a synthesized report instead of sinking
#: the run.  Like ``STATUS_FAILED`` this is a needs-manual band --
#: ``converted`` stays False -- but the distinct status tells the
#: analyst *why*: the program is hostile to the conversion machinery
#: itself, not merely unconvertible.
STATUS_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class StageOutcome:
    """One stage of the strategy fallback cascade.

    ``outcome`` is 'validated' | 'validated-reordered' | 'unconverted'
    | 'error' | 'divergent' | 'skipped'.
    """

    strategy: str
    outcome: str
    detail: str = ""

    def render(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.strategy}: {self.outcome}{suffix}"

    def to_dict(self) -> dict[str, str]:
        return {"strategy": self.strategy, "outcome": self.outcome,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "StageOutcome":
        return cls(data["strategy"], data["outcome"],
                   data.get("detail", ""))


@dataclass(frozen=True)
class FaultContext:
    """Structured context for a fault isolated by the batch supervisor:
    which program, which pipeline phase, which statement, and the full
    ``raise ... from`` cause chain down to the root."""

    error_type: str
    message: str
    program: str | None = None
    phase: str | None = None
    statement: str | None = None
    cause_chain: tuple[str, ...] = ()

    @classmethod
    def from_exception(cls, exc: BaseException,
                       program: str | None = None,
                       phase: str | None = None) -> "FaultContext":
        """Capture an exception plus its ``__cause__``/``__context__``
        chain.  Context carried on the exception itself (the
        ConversionError ``program=``/``phase=``/``statement=`` fields)
        wins over the caller's defaults."""
        message = str(exc.args[0]) if exc.args else str(exc)
        chain: list[str] = []
        seen = {id(exc)}
        cause = exc.__cause__ if exc.__cause__ is not None else exc.__context__
        while cause is not None and id(cause) not in seen:
            seen.add(id(cause))
            chain.append(f"{type(cause).__name__}: {cause}")
            cause = cause.__cause__ if cause.__cause__ is not None \
                else cause.__context__
        return cls(
            error_type=type(exc).__name__,
            message=message,
            program=getattr(exc, "program", None) or program,
            phase=getattr(exc, "phase", None) or phase,
            statement=getattr(exc, "statement", None),
            cause_chain=tuple(chain),
        )

    @property
    def root_cause(self) -> str:
        if self.cause_chain:
            return self.cause_chain[-1]
        return f"{self.error_type}: {self.message}"

    def render(self) -> str:
        where = ", ".join(
            f"{key}={value}" for key, value in (
                ("program", self.program), ("phase", self.phase),
                ("statement", self.statement),
            ) if value is not None
        )
        lines = [f"{self.error_type}: {self.message}"
                 + (f" [{where}]" if where else "")]
        for link in self.cause_chain:
            lines.append(f"  caused by {link}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "error_type": self.error_type,
            "message": self.message,
            "program": self.program,
            "phase": self.phase,
            "statement": self.statement,
            "cause_chain": list(self.cause_chain),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultContext":
        return cls(
            error_type=data["error_type"],
            message=data["message"],
            program=data.get("program"),
            phase=data.get("phase"),
            statement=data.get("statement"),
            cause_chain=tuple(data.get("cause_chain", ())),
        )


@dataclass
class ConversionReport:
    """Everything the supervisor learned converting one program."""

    program_name: str
    status: str
    target_program: Program | None = None
    abstract_source: AbstractProgram | None = None
    abstract_target: AbstractProgram | None = None
    notes: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    questions: list[str] = field(default_factory=list)
    failure: str | None = None
    #: The strategy that ended up serving the program ('rewrite' |
    #: 'emulation' | 'bridge'), when the fallback cascade decided.
    strategy: str | None = None
    #: Per-stage cascade outcomes, in attempt order.
    stages: list[StageOutcome] = field(default_factory=list)
    #: Structured context when the program faulted.
    fault: FaultContext | None = None
    #: Unified counter movement (:mod:`repro.observe`) observed while
    #: this program was converted, keyed by namespaced counter name.
    #: Observational only: counter deltas depend on run history (cache
    #: warm-up, index builds), so this field is deliberately left out
    #: of the checkpoint summary -- a resumed batch must reproduce the
    #: original batch's journaled reports exactly.
    metrics: dict[str, int] | None = None
    #: Cost-model verdict for this program when the cascade decided:
    #: ``{"predicted": {strategy: cost | None}, "measured": cost |
    #: None, "chosen_order": [strategy, ...]}``.  Observational like
    #: ``metrics`` and left out of the checkpoint summary for the same
    #: reason (cost-ordered and fixed-order runs must journal
    #: byte-identical checkpoints).
    cost: dict[str, Any] | None = None

    @property
    def converted(self) -> bool:
        """A program counts as converted when a rewritten target exists
        OR a runtime strategy (emulation/bridge) validated -- Section
        1.1's "each program actually existing in the source system has
        been converted" admits either."""
        if self.target_program is not None:
            return True
        return self.strategy is not None and self.status != STATUS_FAILED

    def render(self, include_programs: bool = False) -> str:
        lines = [f"=== {self.program_name}: {self.status} ==="]
        if self.strategy:
            lines.append(f"  strategy: {self.strategy}")
        for stage in self.stages:
            lines.append(f"  stage {stage.render()}")
        if self.failure:
            lines.append(f"  failure: {self.failure}")
        if self.fault is not None:
            for fault_line in self.fault.render().splitlines():
                lines.append(f"  fault: {fault_line}")
        for question in self.questions:
            lines.append(f"  analyst: {question}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if include_programs and self.abstract_source is not None:
            lines.append(render_abstract(self.abstract_source))
        if include_programs and self.target_program is not None:
            lines.append(render_program(self.target_program))
        return "\n".join(lines)

    # -- checkpoint serialization -------------------------------------

    def to_summary(self) -> dict[str, Any]:
        """A JSON-able summary carrying everything the batch checkpoint
        needs to resume: the status bookkeeping plus the rendered
        target program (the render/parse round trip is exact)."""
        return {
            "program": self.program_name,
            "status": self.status,
            "strategy": self.strategy,
            "target_text": (render_program(self.target_program)
                            if self.target_program is not None else None),
            "notes": list(self.notes),
            "warnings": list(self.warnings),
            "questions": list(self.questions),
            "failure": self.failure,
            "stages": [stage.to_dict() for stage in self.stages],
            "fault": self.fault.to_dict() if self.fault else None,
        }

    @classmethod
    def from_summary(cls, summary: dict[str, Any]) -> "ConversionReport":
        target = None
        if summary.get("target_text"):
            target = parse_program(summary["target_text"])
        return cls(
            program_name=summary["program"],
            status=summary["status"],
            target_program=target,
            notes=list(summary.get("notes", ())),
            warnings=list(summary.get("warnings", ())),
            questions=list(summary.get("questions", ())),
            failure=summary.get("failure"),
            strategy=summary.get("strategy"),
            stages=[StageOutcome.from_dict(stage)
                    for stage in summary.get("stages", ())],
            fault=(FaultContext.from_dict(summary["fault"])
                   if summary.get("fault") else None),
        )


@dataclass
class BatchReport:
    """A whole application system's conversion (Section 1.1: "a
    database application system is converted when each program actually
    existing in the source system has been converted")."""

    reports: list[ConversionReport] = field(default_factory=list)

    def add(self, report: ConversionReport) -> None:
        self.reports.append(report)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for report in self.reports:
            out[report.status] = out.get(report.status, 0) + 1
        return out

    def automation_rate(self) -> float:
        """Fraction converted without analyst involvement."""
        if not self.reports:
            return 0.0
        automatic = sum(
            1 for r in self.reports
            if r.status in (STATUS_AUTOMATIC, STATUS_WARNINGS)
        )
        return automatic / len(self.reports)

    def conversion_rate(self) -> float:
        """Fraction converted at all (with or without the analyst)."""
        if not self.reports:
            return 0.0
        converted = sum(1 for r in self.reports if r.converted)
        return converted / len(self.reports)

    def fallback_rate(self) -> float:
        """Fraction served by a runtime strategy instead of rewrite."""
        if not self.reports:
            return 0.0
        fell_back = sum(
            1 for r in self.reports if r.status == STATUS_FELL_BACK
        )
        return fell_back / len(self.reports)

    def faults(self) -> list[FaultContext]:
        """The structured fault contexts of every faulted program."""
        return [r.fault for r in self.reports if r.fault is not None]

    def render(self) -> str:
        lines = [f"{len(self.reports)} program(s) processed:"]
        for status, count in sorted(self.counts().items()):
            lines.append(f"  {status}: {count}")
        lines.append(
            f"  automation rate: {self.automation_rate():.0%}; "
            f"conversion rate: {self.conversion_rate():.0%}"
        )
        return "\n".join(lines)

    def to_summary(self) -> dict[str, Any]:
        return {"reports": [r.to_summary() for r in self.reports]}

    @classmethod
    def from_summary(cls, summary: dict[str, Any]) -> "BatchReport":
        return cls(reports=[
            ConversionReport.from_summary(entry)
            for entry in summary.get("reports", ())
        ])
