"""Conversion reports.

The Conversion Supervisor "oversees the operation of the other
modules" and surfaces what happened to the Conversion Analyst.  A
:class:`ConversionReport` is the per-program record: the status band,
the intermediate artifacts, the notes/warnings the rules produced, and
the analyst dialogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.abstract import AbstractProgram, render_abstract
from repro.programs.ast import Program, render_program

#: Status bands, in decreasing order of automation (the E2 experiment
#: reports the corpus distribution across these, mirroring the paper's
#: "65-70 percent success rate" discussion of Section 2.1.1).
STATUS_AUTOMATIC = "automatic"
STATUS_WARNINGS = "converted-with-warnings"
STATUS_ASSISTED = "analyst-assisted"
STATUS_FAILED = "needs-manual-conversion"


@dataclass
class ConversionReport:
    """Everything the supervisor learned converting one program."""

    program_name: str
    status: str
    target_program: Program | None = None
    abstract_source: AbstractProgram | None = None
    abstract_target: AbstractProgram | None = None
    notes: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    questions: list[str] = field(default_factory=list)
    failure: str | None = None

    @property
    def converted(self) -> bool:
        return self.target_program is not None

    def render(self, include_programs: bool = False) -> str:
        lines = [f"=== {self.program_name}: {self.status} ==="]
        if self.failure:
            lines.append(f"  failure: {self.failure}")
        for question in self.questions:
            lines.append(f"  analyst: {question}")
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if include_programs and self.abstract_source is not None:
            lines.append(render_abstract(self.abstract_source))
        if include_programs and self.target_program is not None:
            lines.append(render_program(self.target_program))
        return "\n".join(lines)


@dataclass
class BatchReport:
    """A whole application system's conversion (Section 1.1: "a
    database application system is converted when each program actually
    existing in the source system has been converted")."""

    reports: list[ConversionReport] = field(default_factory=list)

    def add(self, report: ConversionReport) -> None:
        self.reports.append(report)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for report in self.reports:
            out[report.status] = out.get(report.status, 0) + 1
        return out

    def automation_rate(self) -> float:
        """Fraction converted without analyst involvement."""
        if not self.reports:
            return 0.0
        automatic = sum(
            1 for r in self.reports
            if r.status in (STATUS_AUTOMATIC, STATUS_WARNINGS)
        )
        return automatic / len(self.reports)

    def conversion_rate(self) -> float:
        """Fraction converted at all (with or without the analyst)."""
        if not self.reports:
            return 0.0
        converted = sum(1 for r in self.reports if r.converted)
        return converted / len(self.reports)

    def render(self) -> str:
        lines = [f"{len(self.reports)} program(s) processed:"]
        for status, count in sorted(self.counts().items()):
            lines.append(f"  {status}: {count}")
        lines.append(
            f"  automation rate: {self.automation_rate():.0%}; "
            f"conversion rate: {self.conversion_rate():.0%}"
        )
        return "\n".join(lines)
