"""Florida access patterns (Section 4.1).

Su's group describes application programs "in terms of sequences of
access patterns to be performed on the network of association types".
Four basic patterns:

* ``ACCESS A via A`` -- locate instances of A by conditions on A;
* ``ACCESS A via B through (Ai, Bj)`` -- relate unassociated entity
  types by comparable fields;
* ``ACCESS AB via B`` -- reach association occurrences from B;
* ``ACCESS A via AB`` -- reach A instances through the association.

The paper's worked example ("Find the names of employees who work for
Manager Smith for more than ten years") produces::

    ACCESS DEPT via DEPT
    ACCESS EMP-DEPT via DEPT
    ACCESS EMP via EMP-DEPT
    RETRIEVE

This module derives exactly that sequence from an abstract program, and
renders it in the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import abstract
from repro.core.abstract import (
    AErase,
    AFirst,
    ALocate,
    AModify,
    AScan,
    AStore,
    AToOwner,
    AbstractProgram,
)
from repro.programs import ast


@dataclass(frozen=True)
class AccessPattern:
    """One step of a Florida access-pattern sequence."""

    verb: str          # 'ACCESS' | 'RETRIEVE' | 'STORE' | 'MODIFY' | 'ERASE'
    entity: str | None = None
    via: str | None = None
    conditions: tuple[str, ...] = ()

    def render(self) -> str:
        if self.verb != "ACCESS":
            if self.entity is None:
                return self.verb
            return f"{self.verb} {self.entity}"
        text = f"ACCESS {self.entity} via {self.via}"
        if self.conditions:
            text += f" [{'; '.join(self.conditions)}]"
        return text


def _is_association(schema, record_name: str) -> bool:
    """Su's association record heuristic: a record type connecting two
    or more entity types (member of >= 2 non-SYSTEM sets)."""
    if schema is None:
        return False
    memberships = [
        s for s in schema.sets_with_member(record_name)
        if not s.system_owned
    ]
    return len(memberships) >= 2


def _pattern_via(schema, entity: str, set_name: str,
                 upward: bool = False) -> str:
    """The paper's 'via' notation: the entity/association on the other
    end when the traversal crosses an association *record*, the set
    name (which then IS the association) otherwise."""
    if schema is None or set_name not in schema.sets:
        return set_name
    set_type = schema.set_type(set_name)
    other = set_type.owner if not upward else set_type.member
    if upward and _is_association(schema, set_type.member):
        # ACCESS A via AB: entity reached through the association.
        return set_type.member
    if not upward and _is_association(schema, entity):
        # ACCESS AB via B: association reached from the entity.
        return other
    return set_name


def access_pattern_sequence(program: AbstractProgram,
                            schema=None,
                            include_conditions: bool = False
                            ) -> list[AccessPattern]:
    """The flat access-pattern sequence of an abstract program.

    Control structure is flattened (the paper's sequences are linear);
    a RETRIEVE is recorded where bound fields reach observable output.
    With ``schema`` given, the 'via' column uses the paper's notation:
    association *records* print the related entity (ACCESS EMP-DEPT
    via DEPT; ACCESS EMP via EMP-DEPT); otherwise the set name is the
    association.
    """
    sequence: list[AccessPattern] = []

    def conditions_of(node) -> tuple[str, ...]:
        if not include_conditions:
            return ()
        return tuple(c.render() for c in node.conditions)

    def visit(statements) -> None:
        for stmt in statements:
            if isinstance(stmt, ALocate):
                sequence.append(AccessPattern(
                    "ACCESS", stmt.entity, stmt.entity,
                    conditions_of(stmt),
                ))
            elif isinstance(stmt, (AScan, AFirst)):
                conditions = conditions_of(stmt) \
                    if isinstance(stmt, AScan) else ()
                sequence.append(AccessPattern(
                    "ACCESS", stmt.entity,
                    _pattern_via(schema, stmt.entity, stmt.via),
                    conditions,
                ))
                retrieves = _body_retrieves(stmt)
                visit(stmt.body)
                if retrieves:
                    sequence.append(AccessPattern("RETRIEVE"))
            elif isinstance(stmt, AToOwner):
                sequence.append(AccessPattern(
                    "ACCESS", stmt.entity,
                    _pattern_via(schema, stmt.entity, stmt.via,
                                 upward=True),
                ))
            elif isinstance(stmt, AStore):
                sequence.append(AccessPattern("STORE", stmt.entity))
            elif isinstance(stmt, AModify):
                sequence.append(AccessPattern("MODIFY", stmt.entity))
            elif isinstance(stmt, AErase):
                sequence.append(AccessPattern("ERASE", stmt.entity))
            else:
                for block in abstract.children_of(stmt):
                    visit(block)

    visit(program.statements)
    return sequence


def _body_retrieves(node) -> bool:
    """Does the scan body surface bound database fields (RECORD.FIELD
    variables) to observable output?"""
    for stmt in abstract.walk(node.body):
        if isinstance(stmt, (ast.WriteTerminal, ast.WriteFile)):
            for expr in stmt.exprs:
                if _mentions_bound_field(expr):
                    return True
    return False


def _mentions_bound_field(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Var):
        return "." in expr.name
    if isinstance(expr, ast.Bin):
        return (_mentions_bound_field(expr.left)
                or _mentions_bound_field(expr.right))
    return False


def render_sequence(sequence: list[AccessPattern]) -> str:
    """The paper's vertical notation."""
    return "\n".join(pattern.render() for pattern in sequence)
