"""Abstract program representation.

Figure 4.1's Program Analyzer produces, and its Program Generator
consumes, an "abstract program": the host control structure with the
concrete DML replaced by data-model-independent access operations.
These are Su's access patterns given statement form -- ``ALocate`` is
"ACCESS A via A", ``AScan`` is "ACCESS A via AB", ``AToOwner`` is the
upward "ACCESS AB via B" -- so "conversion takes place at a level of
abstraction that is removed from an actual DBMS language" (Section 4.1).

Abstract statements nest host statements (If, While, Assign, I/O) and
vice versa; host expressions appear inside abstract conditions.
Successful ``bind`` operations make ``ENTITY.FIELD`` variables
available to the host code, mirroring GET.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Union

from repro.programs import ast
from repro.programs.ast import Expr


@dataclass(frozen=True)
class ACond:
    """One access condition: ``field op <host expression>``."""

    field: str
    op: str
    value: Expr

    def render(self) -> str:
        return f"{self.field} {self.op} {self.value.render()}"


@dataclass(frozen=True)
class ALocate:
    """Position at one instance of an entity by field conditions
    (Su's ``ACCESS A via A``).  Binds ENTITY.FIELD variables and sets
    DB-STATUS ('0000' found / '0326' not found)."""

    entity: str
    conditions: tuple[ACond, ...]
    bind: bool = True

    def render(self) -> str:
        conds = ", ".join(c.render() for c in self.conditions)
        return f"LOCATE {self.entity} [{conds}]"


@dataclass(frozen=True)
class AScan:
    """Iterate the members of an association occurrence (Su's
    ``ACCESS A via AB``), filtered by conditions, running ``body`` per
    member.  ``via`` is a set/association name; the owner occurrence is
    the nearest enclosing positioning on the owner entity.
    ``order_sensitive`` marks bodies whose observable I/O depends on
    member order (Section 3.2 order dependence)."""

    entity: str
    via: str
    conditions: tuple[ACond, ...]
    body: tuple["AStmt", ...]
    bind: bool = True
    order_sensitive: bool = False
    #: Set by the optimizer: equality conditions should drive a keyed
    #: retrieval (FIND ... USING) instead of a filter in the loop body.
    keyed: bool = False

    def render(self) -> str:
        conds = ", ".join(c.render() for c in self.conditions)
        keyed = " KEYED" if self.keyed else ""
        return f"SCAN {self.entity} VIA {self.via} [{conds}]{keyed}"


@dataclass(frozen=True)
class AFirst:
    """Process only the first member of an occurrence (the literal
    meaning of Section 3.2's 'process the first' programs; preserved,
    not 'fixed', because conversion must not change behaviour)."""

    entity: str
    via: str
    body: tuple["AStmt", ...]
    bind: bool = True

    def render(self) -> str:
        return f"FIRST {self.entity} VIA {self.via}"


@dataclass(frozen=True)
class ABind:
    """Re-read the current instance of an entity into its
    ENTITY.FIELD variables (a standalone GET under established
    currency, e.g. inside a status guard)."""

    entity: str

    def render(self) -> str:
        return f"BIND {self.entity}"


@dataclass(frozen=True)
class AToOwner:
    """Move from the current member to its owner through an
    association (Su's upward access pattern).  Binds owner fields."""

    entity: str  # the owner entity
    via: str
    bind: bool = True

    def render(self) -> str:
        return f"OWNER {self.entity} VIA {self.via}"


@dataclass(frozen=True)
class ARefind:
    """Re-establish positioning on an entity from its record-type
    currency (conversion-inserted after a hop to a related record)."""

    entity: str

    def render(self) -> str:
        return f"REFIND {self.entity}"


@dataclass(frozen=True)
class AStore:
    entity: str
    values: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        pairs = ", ".join(f"{k}={v.render()}" for k, v in self.values)
        return f"STORE {self.entity} ({pairs})"


@dataclass(frozen=True)
class AModify:
    entity: str
    updates: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        pairs = ", ".join(f"{k}={v.render()}" for k, v in self.updates)
        return f"MODIFY {self.entity} ({pairs})"


@dataclass(frozen=True)
class AErase:
    entity: str
    cascade: bool = False

    def render(self) -> str:
        return f"ERASE {self.entity}{' CASCADE' if self.cascade else ''}"


@dataclass(frozen=True)
class AReconnect:
    """Move the current instance of ``entity`` to the owner of ``via``
    identified by ``using_field = value`` -- the conversion-inserted
    operation replacing a MODIFY of a field that became VIRTUAL."""

    entity: str
    via: str
    using_field: str
    value: Expr
    ensure_owner: bool = False

    def render(self) -> str:
        return (f"RECONNECT {self.entity} VIA {self.via} TO "
                f"{self.using_field}={self.value.render()}")


@dataclass(frozen=True)
class AQuery:
    """A set-at-a-time query kept whole (relational programs): the
    parsed SEQUEL tree plus the variable receiving the rows."""

    sequel_text: str
    into_var: str
    parameters: tuple[str, ...] = ()

    def render(self) -> str:
        return f"QUERY [{self.sequel_text}] INTO {self.into_var}"


AStmt = Union[
    ALocate, AScan, AFirst, ABind, AToOwner, ARefind, AStore, AModify,
    AErase, AReconnect, AQuery,
    # host statements appear unchanged:
    ast.Assign, ast.If, ast.While, ast.ForEachRow, ast.BindFirstRow,
    ast.Call, ast.ReadTerminal, ast.WriteTerminal, ast.ReadFile,
    ast.WriteFile,
]

ABSTRACT_NODES = (ALocate, AScan, AFirst, ABind, AToOwner, ARefind,
                  AStore, AModify, AErase, AReconnect, AQuery)


@dataclass(frozen=True)
class AbstractProgram:
    """The analyzer's output: host structure + abstract access ops."""

    name: str
    source_model: str
    schema_name: str
    statements: tuple[AStmt, ...]
    notes: tuple[str, ...] = ()

    def with_statements(self,
                        statements: tuple[AStmt, ...]) -> "AbstractProgram":
        return replace(self, statements=statements)

    def add_notes(self, *notes: str) -> "AbstractProgram":
        return replace(self, notes=self.notes + notes)


def children_of(stmt: AStmt) -> tuple[tuple[AStmt, ...], ...]:
    """The nested blocks of a compound (abstract or host) statement."""
    if isinstance(stmt, (AScan, AFirst)):
        return (stmt.body,)
    if isinstance(stmt, ast.If):
        return (stmt.then, stmt.orelse)
    if isinstance(stmt, ast.While):
        return (stmt.body,)
    if isinstance(stmt, ast.ForEachRow):
        return (stmt.body,)
    return ()


def walk(statements: tuple[AStmt, ...]) -> Iterator[AStmt]:
    """Yield every statement depth-first, pre-order."""
    for stmt in statements:
        yield stmt
        for block in children_of(stmt):
            yield from walk(block)


def transform(statements: tuple[AStmt, ...], fn) -> tuple[AStmt, ...]:
    """Rebuild a block bottom-up; ``fn`` may return a statement, a
    sequence to splice, or None to drop."""
    out: list[AStmt] = []
    for stmt in statements:
        if isinstance(stmt, (AScan, AFirst)):
            stmt = replace(stmt, body=transform(stmt.body, fn))
        elif isinstance(stmt, ast.If):
            stmt = replace(stmt, then=transform(stmt.then, fn),
                           orelse=transform(stmt.orelse, fn))
        elif isinstance(stmt, ast.While):
            stmt = replace(stmt, body=transform(stmt.body, fn))
        elif isinstance(stmt, ast.ForEachRow):
            stmt = replace(stmt, body=transform(stmt.body, fn))
        result = fn(stmt)
        if result is None:
            continue
        if isinstance(result, (tuple, list)):
            out.extend(result)
        else:
            out.append(result)
    return tuple(out)


def render_abstract(program: AbstractProgram) -> str:
    """Readable text of an abstract program."""
    lines = [f"ABSTRACT {program.name} (from {program.source_model} / "
             f"{program.schema_name})."]

    def emit(statements: tuple[AStmt, ...], indent: int) -> None:
        pad = "  " * indent
        for stmt in statements:
            if isinstance(stmt, (AScan, AFirst)):
                lines.append(f"{pad}{stmt.render()}")
                emit(stmt.body, indent + 1)
                lines.append(f"{pad}END")
            elif isinstance(stmt, ast.If):
                lines.append(f"{pad}IF {stmt.condition.render()}")
                emit(stmt.then, indent + 1)
                if stmt.orelse:
                    lines.append(f"{pad}ELSE")
                    emit(stmt.orelse, indent + 1)
                lines.append(f"{pad}END-IF")
            elif isinstance(stmt, ast.While):
                lines.append(f"{pad}WHILE {stmt.condition.render()}")
                emit(stmt.body, indent + 1)
                lines.append(f"{pad}END-WHILE")
            elif isinstance(stmt, ast.ForEachRow):
                lines.append(f"{pad}FOR EACH {stmt.row_var} "
                             f"IN {stmt.rows_var}")
                emit(stmt.body, indent + 1)
                lines.append(f"{pad}END-FOR")
            else:
                lines.append(f"{pad}{stmt.render()}.")

    emit(program.statements, 1)
    for note in program.notes:
        lines.append(f"* NOTE: {note}")
    return "\n".join(lines) + "\n"
