"""Language templates: recognizers and emitters for canonical DML
statement sequences.

"The language templates are data manipulation language and/or host
language sequences which carry out data access and manipulation
operations which are meaningful and consistent with the source database
schema." (Section 4)  The Program Analyzer matches these against the
source program; the Program Generator expands them for the target.

The catalog covers the sequences the paper itself exhibits:

* FIND ANY by CALC key (the ``MOVE 'D2' TO D# ... FIND ANY DEPT``
  template);
* the member-scan loop (FIND FIRST + status-driven FIND NEXT);
* the keyed scan (``FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE``,
  the paper's template (B));
* process-first (FIND FIRST guarded by a status IF, Section 3.2);
* FIND OWNER;
* STORE/MODIFY/ERASE under established currency.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.abstract import (
    ABind,
    ACond,
    AErase,
    AFirst,
    ALocate,
    AModify,
    AScan,
    AStmt,
    AStore,
    AToOwner,
)
from repro.errors import AnalysisError
from repro.programs import ast
from repro.schema.model import Schema


def _is_status_ok(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.Bin) and expr.op == "="
            and isinstance(expr.left, ast.Var)
            and expr.left.name == "DB-STATUS"
            and isinstance(expr.right, ast.Const)
            and expr.right.value == "0000")


def _conds(pairs: tuple[tuple[str, ast.Expr], ...]) -> tuple[ACond, ...]:
    return tuple(ACond(name, "=", value) for name, value in pairs)


def _emits_io(statements: tuple[ast.Stmt, ...]) -> bool:
    for stmt in ast.walk(statements):
        if isinstance(stmt, (ast.WriteTerminal, ast.WriteFile,
                             ast.ReadTerminal, ast.ReadFile)):
            return True
    return False


# ---------------------------------------------------------------------------
# Matching (network source -> abstract)
# ---------------------------------------------------------------------------


class NetworkTemplateMatcher:
    """Matches the network template catalog against statement blocks."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def match_block(self, statements: tuple[ast.Stmt, ...]
                    ) -> tuple[AStmt, ...]:
        """Translate a whole block to abstract statements."""
        out: list[AStmt] = []
        index = 0
        while index < len(statements):
            node, consumed = self._match_at(statements, index)
            out.append(node)
            index += consumed
        return tuple(out)

    def _match_at(self, statements: tuple[ast.Stmt, ...],
                  index: int) -> tuple[AStmt, int]:
        stmt = statements[index]
        following = statements[index + 1] if index + 1 < len(statements) \
            else None

        if isinstance(stmt, ast.NetFindAny):
            bind = isinstance(following, ast.NetGet) and \
                following.record == stmt.record
            return ALocate(stmt.record, _conds(stmt.using), bind), \
                (2 if bind else 1)

        if isinstance(stmt, (ast.NetFindFirst, ast.NetFindNextUsing)):
            scan = self._match_scan(stmt, following)
            if scan is not None:
                return scan, 2
            first = self._match_first(stmt, following)
            if first is not None:
                return first, 2
            raise AnalysisError(
                f"no template matches navigation starting at "
                f"{stmt.render()!r}"
            )

        if isinstance(stmt, ast.NetFindOwner):
            set_type = self.schema.set_type(stmt.set_name)
            bind = isinstance(following, ast.NetGet) and \
                following.record == set_type.owner
            return AToOwner(set_type.owner, stmt.set_name, bind), \
                (2 if bind else 1)

        if isinstance(stmt, ast.NetStore):
            return AStore(stmt.record, stmt.values), 1
        if isinstance(stmt, ast.NetModify):
            return AModify(stmt.record, stmt.values), 1
        if isinstance(stmt, ast.NetErase):
            return AErase(stmt.record, stmt.all_members), 1

        if isinstance(stmt, ast.NetGenericCall):
            return self._match_generic(stmt), 1

        if isinstance(stmt, ast.NetGet):
            # Standalone GET under established currency (the idiom
            # FIND ANY ... IF status-ok THEN GET ...).
            return ABind(stmt.record), 1

        if isinstance(stmt, (ast.NetFindNext, ast.NetConnect,
                             ast.NetDisconnect)):
            raise AnalysisError(
                f"statement {stmt.render()!r} outside any recognized "
                "template (free navigation / manual set surgery needs "
                "the conversion analyst)"
            )

        # Host statements: recurse into nested blocks.
        if isinstance(stmt, ast.If):
            return replace(stmt, then=self.match_block(stmt.then),
                           orelse=self.match_block(stmt.orelse)), 1
        if isinstance(stmt, ast.While):
            return replace(stmt, body=self.match_block(stmt.body)), 1
        if isinstance(stmt, ast.ForEachRow):
            return replace(stmt, body=self.match_block(stmt.body)), 1
        return stmt, 1

    def _match_scan(self, head: ast.Stmt,
                    following: ast.Stmt | None) -> AScan | None:
        """FIND FIRST/NEXT-USING + WHILE status-ok loop ending in the
        matching FIND NEXT."""
        if not isinstance(following, ast.While):
            return None
        if not _is_status_ok(following.condition):
            return None
        body = following.body
        if not body:
            return None
        tail = body[-1]
        if isinstance(head, ast.NetFindFirst):
            if not (isinstance(tail, ast.NetFindNext)
                    and tail.record == head.record
                    and tail.set_name == head.set_name):
                return None
            conditions: tuple[ACond, ...] = ()
        else:  # NetFindNextUsing as loop head: the paper's template (B)
            if not (isinstance(tail, ast.NetFindNextUsing)
                    and tail.record == head.record
                    and tail.set_name == head.set_name
                    and tail.using == head.using):
                return None
            conditions = _conds(head.using)
        inner = body[:-1]
        bind = bool(inner) and isinstance(inner[0], ast.NetGet) and \
            inner[0].record == head.record
        if bind:
            inner = inner[1:]
        return AScan(
            head.record, head.set_name, conditions,
            self.match_block(inner), bind,
            order_sensitive=_emits_io(inner),
            keyed=isinstance(head, ast.NetFindNextUsing),
        )

    def _match_first(self, head: ast.Stmt,
                     following: ast.Stmt | None) -> AFirst | None:
        """FIND FIRST + IF status-ok {GET ...} -- process-first."""
        if not isinstance(head, ast.NetFindFirst):
            return None
        if not isinstance(following, ast.If):
            return None
        if not _is_status_ok(following.condition) or following.orelse:
            return None
        body = following.then
        bind = bool(body) and isinstance(body[0], ast.NetGet) and \
            body[0].record == head.record
        if bind:
            body = body[1:]
        return AFirst(head.record, head.set_name,
                      self.match_block(body), bind)

    def _match_generic(self, stmt: ast.NetGenericCall) -> AStmt:
        if not isinstance(stmt.verb, ast.Const):
            raise AnalysisError(
                f"DML verb of {stmt.render()!r} is not constant; the "
                "request may vary at run time (Section 3.2)"
            )
        verb = stmt.verb.value
        if verb == "FIND-ANY":
            return ALocate(stmt.record, _conds(stmt.values), bind=False)
        if verb == "GET":
            return ALocate(stmt.record, (), bind=True)
        if verb == "STORE":
            return AStore(stmt.record, stmt.values)
        if verb == "MODIFY":
            return AModify(stmt.record, stmt.values)
        if verb == "ERASE":
            return AErase(stmt.record)
        raise AnalysisError(f"unknown constant DML verb {verb!r}")


# ---------------------------------------------------------------------------
# Emission (abstract -> network)
# ---------------------------------------------------------------------------


def emit_locate_network(node: ALocate) -> list[ast.Stmt]:
    """Expand a LOCATE to FIND ANY (+ GET when binding)."""
    using = tuple((c.field, c.value) for c in node.conditions
                  if c.op == "=")
    if len(using) != len(node.conditions):
        raise AnalysisError(
            "network LOCATE supports equality conditions only; the "
            "optimizer should have rewritten this access"
        )
    out: list[ast.Stmt] = [ast.NetFindAny(node.entity, using)]
    if node.bind:
        out.append(ast.NetGet(node.entity))
    return out


def emit_scan_network(node: AScan, body: tuple[ast.Stmt, ...],
                      keyed: bool = True) -> list[ast.Stmt]:
    """The canonical loop, keyed (template (B)) when marked and all
    conditions are equalities; filtered otherwise.  ``keyed=False``
    forces the filtered loop (a rule catalog that disables the
    keyed-scan template)."""
    equalities = tuple((c.field, c.value) for c in node.conditions
                       if c.op == "=")
    all_equal = len(equalities) == len(node.conditions)
    inner: list[ast.Stmt] = []
    if node.bind:
        inner.append(ast.NetGet(node.entity))
    if keyed and node.keyed and all_equal and node.conditions:
        head: ast.Stmt = ast.NetFindNextUsing(node.entity, node.via,
                                              equalities)
        inner.extend(body)
        inner.append(ast.NetFindNextUsing(node.entity, node.via,
                                          equalities))
    else:
        head = ast.NetFindFirst(node.entity, node.via)
        filtered = body
        if node.conditions:
            condition = _conjunction(node)
            filtered = (ast.If(condition, tuple(body)),)
        inner.extend(filtered)
        inner.append(ast.NetFindNext(node.entity, node.via))
    return [head, ast.While(ast.status_ok(), tuple(inner))]


def _conjunction(node: AScan) -> ast.Expr:
    condition: ast.Expr | None = None
    for cond in node.conditions:
        comparison = ast.Bin(cond.op,
                             ast.Var(f"{node.entity}.{cond.field}"),
                             cond.value)
        condition = comparison if condition is None else \
            ast.Bin("AND", condition, comparison)
    assert condition is not None
    return condition


def emit_first_network(node: AFirst,
                       body: tuple[ast.Stmt, ...]) -> list[ast.Stmt]:
    """Expand a FIRST to FIND FIRST guarded by a status IF."""
    inner: list[ast.Stmt] = []
    if node.bind:
        inner.append(ast.NetGet(node.entity))
    inner.extend(body)
    return [
        ast.NetFindFirst(node.entity, node.via),
        ast.If(ast.status_ok(), tuple(inner)),
    ]


def emit_owner_network(node: AToOwner) -> list[ast.Stmt]:
    """Expand an OWNER hop to FIND OWNER (+ GET when binding)."""
    out: list[ast.Stmt] = [ast.NetFindOwner(node.via)]
    if node.bind:
        out.append(ast.NetGet(node.entity))
    return out
