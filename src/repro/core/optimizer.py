"""The Optimizer (Figure 4.1).

"The target program's representation is further processed by an
optimizer which refines the representation, improving access paths,
algorithms, and data handling." (Section 4)  Section 5.4 ties this to
the access-path-selection problem (the Selinger reference).

Passes, each individually toggleable for the E9 ablation:

* **keyed-scan selection** -- a scan whose conditions are all
  equalities on fields of the scanned entity becomes a keyed retrieval
  (the paper's FIND ... USING template (B)), cutting DML calls.
  Cost-gated: keyed retrieval only wins when the estimated occurrence
  cardinality exceeds the probe overhead, so tiny sets keep the
  sequential template;
* **condition pushdown** -- an IF at the head of a scan body whose
  condition tests only bound fields of the scanned entity moves into
  the scan conditions (enabling keyed-scan selection);
* **locate-by-calc preference** -- a locate mixing equality conditions
  that cover the entity's CALC key with non-equality residuals is
  rerouted through the CALC key, the residuals dropped into a filter
  inside the status guard.  Cost-gated like keyed selection (a CALC
  probe beats a half-scan only past the probe overhead).  Unlocks
  generation: the network LOCATE template accepts equality conditions
  only;
* **loop-invariant locate hoisting** -- a locate at the head of a
  While body whose condition values are all constants, in a body with
  no other database operation, moves before the loop when the
  estimated trip count makes the repeated probe dominate;
* **redundant-locate elimination** -- consecutive identical locates
  collapse;
* **redundant-owner elimination** -- AToOwner hops to an entity whose
  occurrence is already positioned by an enclosing locate/scan are
  dropped, with bound-variable references redirected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import abstract
from repro.core.abstract import (
    ABSTRACT_NODES,
    ACond,
    ALocate,
    AScan,
    AStmt,
    AToOwner,
    AbstractProgram,
)
from repro.programs import ast
from repro.schema.model import Schema

#: Probe overhead (in record accesses) charged to an index retrieval
#: when comparing it against a sequential alternative: below this
#: cardinality the plain scan wins.
KEYED_PROBE_OVERHEAD = 2

DEFAULT_PASSES = ("pushdown", "keyed", "calc-locate", "hoist-locate",
                  "dedup-locate", "owner-elim")


@dataclass
class CostModel:
    """Record counts used to reason about access paths (the paper's
    "database design research has not reached the point where all
    aspects of database performance can be predicted" -- ours is a
    simple cardinality model)."""

    record_counts: dict[str, int]
    default_count: int = 100

    def count(self, record_name: str) -> int:
        return self.record_counts.get(record_name, self.default_count)

    @classmethod
    def from_database(cls, db) -> "CostModel":
        return cls({
            name: db.count(name) for name in db.schema.records
        })


class Optimizer:
    """Pass-based abstract-program optimizer."""

    def __init__(self, schema: Schema, cost_model: CostModel | None = None,
                 passes: tuple[str, ...] = DEFAULT_PASSES):
        self.schema = schema
        self.cost_model = cost_model or CostModel({})
        self.passes = passes

    def optimize(self, program: AbstractProgram) -> AbstractProgram:
        statements = program.statements
        if "pushdown" in self.passes:
            statements = self._push_conditions(statements)
        if "keyed" in self.passes:
            statements = self._select_keyed_scans(statements)
        if "calc-locate" in self.passes:
            statements = self._prefer_calc_locates(statements)
        if "hoist-locate" in self.passes:
            statements = self._hoist_invariant_locates(statements)
        if "dedup-locate" in self.passes:
            statements = self._dedup_locates(statements)
        if "owner-elim" in self.passes:
            statements = self._eliminate_redundant_owner(statements, [])
        return program.with_statements(statements)

    # -- condition pushdown ------------------------------------------------

    def _push_conditions(self, statements: tuple[AStmt, ...]
                         ) -> tuple[AStmt, ...]:
        def fix(stmt: AStmt):
            if not isinstance(stmt, AScan) or not stmt.bind:
                return stmt
            if len(stmt.body) != 1 or not isinstance(stmt.body[0], ast.If):
                return stmt
            guard = stmt.body[0]
            if guard.orelse:
                return stmt
            extracted = _extract_entity_conditions(guard.condition,
                                                   stmt.entity)
            if extracted is None:
                return stmt
            return replace(stmt,
                           conditions=stmt.conditions + extracted,
                           body=guard.then)

        return abstract.transform(statements, fix)

    # -- keyed scan selection ---------------------------------------------

    def _select_keyed_scans(self, statements: tuple[AStmt, ...]
                            ) -> tuple[AStmt, ...]:
        def fix(stmt: AStmt):
            if not isinstance(stmt, AScan) or stmt.keyed:
                return stmt
            if not stmt.conditions:
                return stmt
            if any(c.op != "=" for c in stmt.conditions):
                return stmt
            # Plan costs: the sequential template reads every member
            # and filters in the body; the keyed template pays a probe
            # per match.  Tiny occurrences keep the plain scan.
            sequential = self.cost_model.count(stmt.entity)
            if sequential <= KEYED_PROBE_OVERHEAD:
                return stmt
            return replace(stmt, keyed=True)

        return abstract.transform(statements, fix)

    # -- locate-by-calc preference ------------------------------------------

    def _prefer_calc_locates(self, statements: tuple[AStmt, ...]
                             ) -> tuple[AStmt, ...]:
        """Reroute a mixed-condition locate through the CALC key.

        Pattern: ``LOCATE E [eq-conds covering E's CALC key +
        non-equality residuals]`` immediately followed by a
        ``DB-STATUS = '0000'`` guard.  The CALC key identifies at most
        one instance, so the residuals can move into the guard as a
        host filter over the bound fields; the not-matched branch
        restores the not-found status code before running the ELSE
        arm.  This both beats the half-scan (cost gate) and unlocks
        generation -- the network LOCATE template rejects
        non-equality conditions outright.
        """
        out: list[AStmt] = []
        index = 0
        while index < len(statements):
            stmt = statements[index]
            stmt = self._recurse_calc_locates(stmt)
            follower = (statements[index + 1]
                        if index + 1 < len(statements) else None)
            rewritten = None
            if isinstance(follower, ast.If):
                rewritten = self._calc_locate_rewrite(stmt, follower)
            if rewritten is not None:
                locate, guard = rewritten
                out.append(locate)
                out.append(self._recurse_calc_locates(guard))
                index += 2
                continue
            out.append(stmt)
            index += 1
        return tuple(out)

    def _recurse_calc_locates(self, stmt: AStmt) -> AStmt:
        for block_field, block in (
            ("body", getattr(stmt, "body", None)),
            ("then", getattr(stmt, "then", None)),
            ("orelse", getattr(stmt, "orelse", None)),
        ):
            if isinstance(block, tuple):
                stmt = replace(
                    stmt, **{block_field: self._prefer_calc_locates(block)}
                )
        return stmt

    def _calc_locate_rewrite(self, stmt: AStmt, guard: ast.If
                             ) -> tuple[ALocate, ast.If] | None:
        if not isinstance(stmt, ALocate) or not stmt.bind:
            return None
        if guard.condition != ast.status_ok():
            return None
        residual = tuple(c for c in stmt.conditions if c.op != "=")
        if not residual:
            return None
        equalities = tuple(c for c in stmt.conditions if c.op == "=")
        record = self.schema.records.get(stmt.entity)
        if record is None or not record.calc_keys:
            return None
        supplied = {c.field for c in equalities}
        if not all(key in supplied for key in record.calc_keys):
            return None
        if self.cost_model.count(stmt.entity) <= KEYED_PROBE_OVERHEAD:
            return None
        filter_cond = _conjunction(stmt.entity, residual)
        restore_status = ast.Assign("DB-STATUS", ast.Const("0326"))
        inner = ast.If(filter_cond, guard.then,
                       (restore_status,) + guard.orelse)
        return (replace(stmt, conditions=equalities),
                ast.If(guard.condition, (inner,), guard.orelse))

    # -- loop-invariant locate hoisting ---------------------------------------

    def _hoist_invariant_locates(self, statements: tuple[AStmt, ...]
                                 ) -> tuple[AStmt, ...]:
        """Move a loop-invariant locate out of a While body.

        Safe when the locate's condition values are all constants, the
        body contains no other database operation (so currency and
        DB-STATUS cannot change between iterations) and no assignment
        to DB-STATUS, and the loop condition reads neither DB-STATUS
        nor the fields the locate binds (hoisting moves the bind ahead
        of the first condition test).  The cost gate compares the
        per-iteration probe against paying it once.
        """
        def fix(stmt: AStmt):
            if not isinstance(stmt, ast.While):
                return stmt
            if not stmt.body or not isinstance(stmt.body[0], ALocate):
                return stmt
            locate = stmt.body[0]
            if not all(isinstance(c.value, ast.Const)
                       for c in locate.conditions):
                return stmt
            rest = stmt.body[1:]
            if any(isinstance(inner, ABSTRACT_NODES)
                   for inner in abstract.walk(rest)):
                return stmt
            if any(isinstance(inner, ast.Assign)
                   and inner.var == "DB-STATUS"
                   for inner in abstract.walk(rest)):
                return stmt
            bound_prefix = f"{locate.entity}."
            if _mentions_var(stmt.condition, "DB-STATUS") or \
                    _mentions_prefix_anywhere(stmt.condition, bound_prefix):
                return stmt
            probe = self._locate_cost(locate)
            trip = 2  # the dataflow "may repeat" convention
            in_loop_cost = trip * probe
            hoisted_cost = probe
            if hoisted_cost >= in_loop_cost:
                return stmt
            return (locate, replace(stmt, body=rest))

        return abstract.transform(statements, fix)

    def _locate_cost(self, locate: ALocate) -> int:
        """Estimated record accesses for one execution of a locate."""
        record = self.schema.records.get(locate.entity)
        supplied = {c.field for c in locate.conditions if c.op == "="}
        if record is not None and record.calc_keys and \
                all(key in supplied for key in record.calc_keys):
            return 1
        return max(1, self.cost_model.count(locate.entity) // 2)

    # -- duplicate locate elimination ---------------------------------------

    def _dedup_locates(self, statements: tuple[AStmt, ...]
                       ) -> tuple[AStmt, ...]:
        out: list[AStmt] = []
        for stmt in statements:
            if isinstance(stmt, AScan):
                stmt = replace(stmt, body=self._dedup_locates(stmt.body))
            elif isinstance(stmt, ast.If):
                stmt = replace(stmt,
                               then=self._dedup_locates(stmt.then),
                               orelse=self._dedup_locates(stmt.orelse))
            elif isinstance(stmt, ast.While):
                stmt = replace(stmt, body=self._dedup_locates(stmt.body))
            if (out and isinstance(stmt, ALocate)
                    and isinstance(out[-1], ALocate)
                    and out[-1] == stmt):
                continue  # exact duplicate: same currency, same binds
            out.append(stmt)
        return tuple(out)

    # -- redundant owner elimination ------------------------------------------

    def _eliminate_redundant_owner(self, statements: tuple[AStmt, ...],
                                   positioned: list[tuple[str, str]]
                                   ) -> tuple[AStmt, ...]:
        """Drop AToOwner hops when the owner is already positioned by
        an enclosing locate/scan and its fields are already bound."""
        out: list[AStmt] = []
        for stmt in statements:
            if isinstance(stmt, AToOwner):
                bound = [
                    entity for entity, how in positioned
                    if entity == stmt.entity and how == "bound"
                ]
                if bound and stmt.bind:
                    # Fields already available; the hop is pure cost.
                    continue
            if isinstance(stmt, ALocate):
                positioned = positioned + [(
                    stmt.entity, "bound" if stmt.bind else "positioned"
                )]
                out.append(stmt)
                continue
            if isinstance(stmt, AScan):
                inner_positioned = positioned + [(
                    stmt.entity, "bound" if stmt.bind else "positioned"
                )]
                out.append(replace(stmt, body=self._eliminate_redundant_owner(
                    stmt.body, inner_positioned
                )))
                continue
            if isinstance(stmt, ast.If):
                out.append(replace(
                    stmt,
                    then=self._eliminate_redundant_owner(stmt.then,
                                                         positioned),
                    orelse=self._eliminate_redundant_owner(stmt.orelse,
                                                           positioned),
                ))
                continue
            if isinstance(stmt, ast.While):
                out.append(replace(stmt, body=self._eliminate_redundant_owner(
                    stmt.body, positioned
                )))
                continue
            out.append(stmt)
        return tuple(out)


def _extract_entity_conditions(condition: ast.Expr, entity: str
                               ) -> tuple[ACond, ...] | None:
    """Turn ``ENTITY.F op const [AND ...]`` into scan conditions; None
    when any conjunct tests something else."""
    prefix = f"{entity}."
    conjuncts = _split_and(condition)
    out = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.Bin):
            return None
        if conjunct.op not in ("=", "<>", "<", "<=", ">", ">="):
            return None
        if not (isinstance(conjunct.left, ast.Var)
                and conjunct.left.name.startswith(prefix)):
            return None
        if _mentions_prefix_anywhere(conjunct.right, prefix):
            return None
        out.append(ACond(conjunct.left.name[len(prefix):], conjunct.op,
                         conjunct.right))
    return tuple(out)


def _split_and(condition: ast.Expr) -> list[ast.Expr]:
    if isinstance(condition, ast.Bin) and condition.op == "AND":
        return _split_and(condition.left) + _split_and(condition.right)
    return [condition]


def _mentions_prefix_anywhere(expr: ast.Expr, prefix: str) -> bool:
    if isinstance(expr, ast.Var):
        return expr.name.startswith(prefix)
    if isinstance(expr, ast.Bin):
        return (_mentions_prefix_anywhere(expr.left, prefix)
                or _mentions_prefix_anywhere(expr.right, prefix))
    return False


def _mentions_var(expr: ast.Expr, name: str) -> bool:
    if isinstance(expr, ast.Var):
        return expr.name == name
    if isinstance(expr, ast.Bin):
        return (_mentions_var(expr.left, name)
                or _mentions_var(expr.right, name))
    return False


def _conjunction(entity: str, conditions: tuple[ACond, ...]) -> ast.Expr:
    """Residual conditions as a host expression over bound fields."""
    expr: ast.Expr | None = None
    for cond in conditions:
        term = ast.Bin(cond.op, ast.Var(f"{entity}.{cond.field}"),
                       cond.value)
        expr = term if expr is None else ast.Bin("AND", expr, term)
    assert expr is not None
    return expr


__all__ = ["Optimizer", "CostModel", "DEFAULT_PASSES"]
