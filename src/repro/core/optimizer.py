"""The Optimizer (Figure 4.1).

"The target program's representation is further processed by an
optimizer which refines the representation, improving access paths,
algorithms, and data handling." (Section 4)  Section 5.4 ties this to
the access-path-selection problem (the Selinger reference).

Passes, each individually toggleable for the E9 ablation:

* **keyed-scan selection** -- a scan whose conditions are all
  equalities on fields of the scanned entity becomes a keyed retrieval
  (the paper's FIND ... USING template (B)), cutting DML calls;
* **condition pushdown** -- an IF at the head of a scan body whose
  condition tests only bound fields of the scanned entity moves into
  the scan conditions (enabling keyed-scan selection);
* **locate-by-calc preference** -- a locate on non-CALC fields is
  rerouted through the entity's CALC key when a condition on it exists
  (drop the rest into a residual filter);
* **redundant-locate elimination** -- consecutive identical locates
  collapse;
* **redundant-owner elimination** -- AToOwner hops to an entity whose
  occurrence is already positioned by an enclosing locate/scan are
  dropped, with bound-variable references redirected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import abstract
from repro.core.abstract import (
    ACond,
    ALocate,
    AScan,
    AStmt,
    AToOwner,
    AbstractProgram,
)
from repro.programs import ast
from repro.schema.model import Schema


@dataclass
class CostModel:
    """Record counts used to reason about access paths (the paper's
    "database design research has not reached the point where all
    aspects of database performance can be predicted" -- ours is a
    simple cardinality model)."""

    record_counts: dict[str, int]
    default_count: int = 100

    def count(self, record_name: str) -> int:
        return self.record_counts.get(record_name, self.default_count)

    @classmethod
    def from_database(cls, db) -> "CostModel":
        return cls({
            name: db.count(name) for name in db.schema.records
        })


class Optimizer:
    """Pass-based abstract-program optimizer."""

    def __init__(self, schema: Schema, cost_model: CostModel | None = None,
                 passes: tuple[str, ...] = ("pushdown", "keyed",
                                            "dedup-locate", "owner-elim")):
        self.schema = schema
        self.cost_model = cost_model or CostModel({})
        self.passes = passes

    def optimize(self, program: AbstractProgram) -> AbstractProgram:
        statements = program.statements
        if "pushdown" in self.passes:
            statements = self._push_conditions(statements)
        if "keyed" in self.passes:
            statements = self._select_keyed_scans(statements)
        if "dedup-locate" in self.passes:
            statements = self._dedup_locates(statements)
        if "owner-elim" in self.passes:
            statements = self._eliminate_redundant_owner(statements, [])
        return program.with_statements(statements)

    # -- condition pushdown ------------------------------------------------

    def _push_conditions(self, statements: tuple[AStmt, ...]
                         ) -> tuple[AStmt, ...]:
        def fix(stmt: AStmt):
            if not isinstance(stmt, AScan) or not stmt.bind:
                return stmt
            if len(stmt.body) != 1 or not isinstance(stmt.body[0], ast.If):
                return stmt
            guard = stmt.body[0]
            if guard.orelse:
                return stmt
            extracted = _extract_entity_conditions(guard.condition,
                                                   stmt.entity)
            if extracted is None:
                return stmt
            return replace(stmt,
                           conditions=stmt.conditions + extracted,
                           body=guard.then)

        return abstract.transform(statements, fix)

    # -- keyed scan selection ---------------------------------------------

    def _select_keyed_scans(self, statements: tuple[AStmt, ...]
                            ) -> tuple[AStmt, ...]:
        def fix(stmt: AStmt):
            if not isinstance(stmt, AScan) or stmt.keyed:
                return stmt
            if not stmt.conditions:
                return stmt
            if all(c.op == "=" for c in stmt.conditions):
                return replace(stmt, keyed=True)
            return stmt

        return abstract.transform(statements, fix)

    # -- duplicate locate elimination ---------------------------------------

    def _dedup_locates(self, statements: tuple[AStmt, ...]
                       ) -> tuple[AStmt, ...]:
        out: list[AStmt] = []
        for stmt in statements:
            if isinstance(stmt, AScan):
                stmt = replace(stmt, body=self._dedup_locates(stmt.body))
            elif isinstance(stmt, ast.If):
                stmt = replace(stmt,
                               then=self._dedup_locates(stmt.then),
                               orelse=self._dedup_locates(stmt.orelse))
            elif isinstance(stmt, ast.While):
                stmt = replace(stmt, body=self._dedup_locates(stmt.body))
            if (out and isinstance(stmt, ALocate)
                    and isinstance(out[-1], ALocate)
                    and out[-1] == stmt):
                continue  # exact duplicate: same currency, same binds
            out.append(stmt)
        return tuple(out)

    # -- redundant owner elimination ------------------------------------------

    def _eliminate_redundant_owner(self, statements: tuple[AStmt, ...],
                                   positioned: list[tuple[str, str]]
                                   ) -> tuple[AStmt, ...]:
        """Drop AToOwner hops when the owner is already positioned by
        an enclosing locate/scan and its fields are already bound."""
        out: list[AStmt] = []
        for stmt in statements:
            if isinstance(stmt, AToOwner):
                bound = [
                    entity for entity, how in positioned
                    if entity == stmt.entity and how == "bound"
                ]
                if bound and stmt.bind:
                    # Fields already available; the hop is pure cost.
                    continue
            if isinstance(stmt, ALocate):
                positioned = positioned + [(
                    stmt.entity, "bound" if stmt.bind else "positioned"
                )]
                out.append(stmt)
                continue
            if isinstance(stmt, AScan):
                set_type = self.schema.sets.get(stmt.via)
                inner_positioned = positioned + [(
                    stmt.entity, "bound" if stmt.bind else "positioned"
                )]
                del set_type
                out.append(replace(stmt, body=self._eliminate_redundant_owner(
                    stmt.body, inner_positioned
                )))
                continue
            if isinstance(stmt, ast.If):
                out.append(replace(
                    stmt,
                    then=self._eliminate_redundant_owner(stmt.then,
                                                         positioned),
                    orelse=self._eliminate_redundant_owner(stmt.orelse,
                                                           positioned),
                ))
                continue
            if isinstance(stmt, ast.While):
                out.append(replace(stmt, body=self._eliminate_redundant_owner(
                    stmt.body, positioned
                )))
                continue
            out.append(stmt)
        return tuple(out)


def _extract_entity_conditions(condition: ast.Expr, entity: str
                               ) -> tuple[ACond, ...] | None:
    """Turn ``ENTITY.F op const [AND ...]`` into scan conditions; None
    when any conjunct tests something else."""
    prefix = f"{entity}."
    conjuncts = _split_and(condition)
    out = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.Bin):
            return None
        if conjunct.op not in ("=", "<>", "<", "<=", ">", ">="):
            return None
        if not (isinstance(conjunct.left, ast.Var)
                and conjunct.left.name.startswith(prefix)):
            return None
        if _mentions_prefix_anywhere(conjunct.right, prefix):
            return None
        out.append(ACond(conjunct.left.name[len(prefix):], conjunct.op,
                         conjunct.right))
    return tuple(out)


def _split_and(condition: ast.Expr) -> list[ast.Expr]:
    if isinstance(condition, ast.Bin) and condition.op == "AND":
        return _split_and(condition.left) + _split_and(condition.right)
    return [condition]


def _mentions_prefix_anywhere(expr: ast.Expr, prefix: str) -> bool:
    if isinstance(expr, ast.Var):
        return expr.name.startswith(prefix)
    if isinstance(expr, ast.Bin):
        return (_mentions_prefix_anywhere(expr.left, prefix)
                or _mentions_prefix_anywhere(expr.right, prefix))
    return False


__all__ = ["Optimizer", "CostModel"]
