"""The Program Generator (Figure 4.1).

"The optimized target program representation is used by the Program
Generator to produce a target program."  One abstract program can be
lowered to any of the three data models -- the Section 4.1 claim that
"conversion from one DBMS to another to account for some schema changes
is possible" because "conversion takes place at a level of abstraction
that is removed from an actual DBMS language".

* **network** -- expands the language templates of
  :mod:`repro.core.templates` (FIND ANY, canonical scan loops, the
  keyed FIND ... USING template (B));
* **relational** -- produces SEQUEL queries (nested IN-subqueries for
  pure retrieval pipelines would be an optimization; the general
  lowering emits one parameterized query per access level with
  FOR-EACH iteration) plus INSERT/UPDATE/DELETE;
* **hierarchical** -- GU/GNP loops for located parents and
  single-level scans (deeper navigation is converted by command
  substitution instead, see :mod:`repro.core.command_substitution`).
"""

from __future__ import annotations

from typing import Any

from repro.core import templates
from repro.core.abstract import (
    ABind,
    AErase,
    ARefind,
    AFirst,
    ALocate,
    AModify,
    AQuery,
    AReconnect,
    AScan,
    AStmt,
    AStore,
    AToOwner,
    AbstractProgram,
)
from repro.errors import GenerationError
from repro.programs import ast
from repro.relational.database import fk_columns
from repro.schema.model import Schema


class ProgramGenerator:
    """Lowers abstract programs into concrete database programs.

    ``templates`` optionally restricts the network language templates
    the lowering may expand (a rule catalog's TEMPLATE entries via
    ``CompiledRules.templates``); ``None`` means no gating.  A
    disabled ``keyed-scan`` degrades to the filtered loop; the other
    templates have no fallback, so disabling them makes programs that
    need them raise :class:`~repro.errors.GenerationError`.
    """

    def __init__(self, schema: Schema,
                 templates: frozenset[str] | None = None):
        self.schema = schema
        self.templates = templates

    def generate(self, program: AbstractProgram,
                 target_model: str = "network") -> ast.Program:
        if target_model == "network":
            statements = _NetworkLowering(self.schema,
                                          self.templates).lower(
                program.statements
            )
        elif target_model == "relational":
            statements = _RelationalLowering(self.schema).lower(
                program.statements, {}
            )
        elif target_model == "hierarchical":
            statements = _HierarchicalLowering(self.schema).lower(
                program.statements
            )
        else:
            raise GenerationError(f"unknown target model {target_model!r}")
        return ast.Program(program.name, target_model, self.schema.name,
                           tuple(statements))


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------


class _NetworkLowering:
    def __init__(self, schema: Schema,
                 enabled: frozenset[str] | None = None):
        self.schema = schema
        self.enabled = enabled

    def _require(self, name: str, what: str) -> None:
        if self.enabled is not None and name not in self.enabled:
            raise GenerationError(
                f"{what} needs the {name!r} language template, which "
                f"the rule catalog disables"
            )

    def lower(self, statements: tuple[AStmt, ...]) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for stmt in statements:
            out.extend(self._lower_one(stmt))
        return out

    def _lower_one(self, stmt: AStmt) -> list[ast.Stmt]:
        if isinstance(stmt, ALocate):
            self._require("locate", f"LOCATE {stmt.entity}")
            return templates.emit_locate_network(stmt)
        if isinstance(stmt, AScan):
            self._require("scan", f"scan of {stmt.entity}")
            keyed = self.enabled is None or "keyed-scan" in self.enabled
            return templates.emit_scan_network(
                stmt, tuple(self.lower(stmt.body)), keyed=keyed
            )
        if isinstance(stmt, AFirst):
            self._require("process-first",
                          f"'process first' of {stmt.entity}")
            return templates.emit_first_network(
                stmt, tuple(self.lower(stmt.body))
            )
        if isinstance(stmt, ABind):
            return [ast.NetGet(stmt.entity)]
        if isinstance(stmt, ARefind):
            return [ast.NetFindCurrent(stmt.entity)]
        if isinstance(stmt, AToOwner):
            self._require("owner-hop", f"owner hop via {stmt.via}")
            return templates.emit_owner_network(stmt)
        if isinstance(stmt, AStore):
            return [ast.NetStore(stmt.entity, stmt.values)]
        if isinstance(stmt, AModify):
            return [ast.NetModify(stmt.entity, stmt.updates)]
        if isinstance(stmt, AErase):
            return [ast.NetErase(stmt.entity, stmt.cascade)]
        if isinstance(stmt, AReconnect):
            return [ast.NetReconnect(stmt.entity, stmt.via,
                                     stmt.using_field, stmt.value,
                                     stmt.ensure_owner)]
        if isinstance(stmt, AQuery):
            raise GenerationError(
                "set-at-a-time queries cannot be lowered to network DML"
            )
        if isinstance(stmt, ast.If):
            return [ast.If(stmt.condition, tuple(self.lower(stmt.then)),
                           tuple(self.lower(stmt.orelse)))]
        if isinstance(stmt, ast.While):
            return [ast.While(stmt.condition, tuple(self.lower(stmt.body)))]
        if isinstance(stmt, ast.ForEachRow):
            return [ast.ForEachRow(stmt.row_var, stmt.rows_var,
                                   tuple(self.lower(stmt.body)))]
        return [stmt]


# ---------------------------------------------------------------------------
# Relational
# ---------------------------------------------------------------------------


class _RelationalLowering:
    def __init__(self, schema: Schema):
        self.schema = schema
        self._counter = 0

    def _fresh(self, entity: str) -> str:
        self._counter += 1
        return f"$ROWS-{entity}-{self._counter}"

    def lower(self, statements: tuple[AStmt, ...],
              positioned: dict[str, tuple[str, str]]) -> list[ast.Stmt]:
        """``positioned`` maps entity name -> (bound variable prefix,
        positioning kind: 'locate' for single-row binds whose miss is
        visible in DB-STATUS, 'scan' for per-row loop binds)."""
        out: list[ast.Stmt] = []
        for stmt in statements:
            out.extend(self._lower_one(stmt, positioned))
        return out

    def _condition_sql(self, entity: str, conditions,
                       extra: list[tuple[str, ast.Expr]]
                       ) -> tuple[str, tuple[str, ...]]:
        """Build a WHERE fragment; expression values become ?params."""
        fragments: list[str] = []
        params: list[str] = []
        for cond in conditions:
            literal, param = self._value_sql(cond.value)
            fragments.append(f"{cond.field} {cond.op} {literal}")
            params.extend(param)
        for column, value in extra:
            literal, param = self._value_sql(value)
            fragments.append(f"{column} = {literal}")
            params.extend(param)
        return " AND ".join(fragments), tuple(params)

    def _value_sql(self, value: ast.Expr) -> tuple[str, list[str]]:
        if isinstance(value, ast.Const):
            if isinstance(value.value, str):
                return f"'{value.value}'", []
            return str(value.value), []
        if isinstance(value, ast.Var):
            return f"?{value.name}", [value.name]
        raise GenerationError(
            "relational lowering supports constant and variable "
            "condition values only"
        )

    def _lower_one(self, stmt: AStmt,
                   positioned: dict[str, str]) -> list[ast.Stmt]:
        if isinstance(stmt, ALocate):
            where, params = self._condition_sql(stmt.entity,
                                                stmt.conditions, [])
            text = f"SELECT * FROM {stmt.entity}"
            if where:
                text += f" WHERE {where}"
            rows_var = self._fresh(stmt.entity)
            positioned[stmt.entity] = (stmt.entity, "locate")
            return [
                ast.RelQuery(text, rows_var, params),
                ast.BindFirstRow(stmt.entity, rows_var),
            ]
        if isinstance(stmt, (AScan, AFirst)):
            return self._lower_scan(stmt, positioned)
        if isinstance(stmt, (ABind, ARefind)):
            # Relational locates/scans already bound the row variables,
            # and positioning is by bound variables, so both are no-ops.
            return []
        if isinstance(stmt, AToOwner):
            set_type = self.schema.set_type(stmt.via)
            member_position = positioned.get(set_type.member)
            if member_position is None:
                raise GenerationError(
                    f"owner access via {stmt.via} needs the member "
                    "positioned"
                )
            member_prefix = member_position[0]
            columns = fk_columns(self.schema, set_type)
            extra = [
                (column, ast.Var(f"{member_prefix}.{column}"))
                for column in columns
            ]
            where, params = self._condition_sql(stmt.entity, (), extra)
            rows_var = self._fresh(stmt.entity)
            positioned[stmt.entity] = (stmt.entity, "locate")
            return [
                ast.RelQuery(
                    f"SELECT * FROM {stmt.entity} WHERE {where}",
                    rows_var, params,
                ),
                ast.BindFirstRow(stmt.entity, rows_var),
            ]
        if isinstance(stmt, AStore):
            values = dict(stmt.values)
            for set_type in self.schema.sets_with_member(stmt.entity):
                if set_type.system_owned:
                    continue
                owner_position = positioned.get(set_type.owner)
                for column in fk_columns(self.schema, set_type):
                    if column in values:
                        continue
                    if owner_position is not None:
                        values[column] = ast.Var(
                            f"{owner_position[0]}.{column}")
            # Values routed through deeper virtual chains (e.g. the
            # division name on an employee two hops away) are derivable
            # via the foreign keys and are not columns of the relation.
            from repro.relational.database import relation_columns

            columns = set(relation_columns(self.schema, stmt.entity))
            values = {name: value for name, value in values.items()
                      if name in columns}
            return [ast.RelInsert(stmt.entity, tuple(values.items()))]
        if isinstance(stmt, (AModify, AErase, AReconnect)):
            return self._lower_update(stmt, positioned)
        if isinstance(stmt, AQuery):
            return [ast.RelQuery(stmt.sequel_text, stmt.into_var,
                                 stmt.parameters)]
        if isinstance(stmt, ast.If):
            return [ast.If(stmt.condition,
                           tuple(self.lower(stmt.then, dict(positioned))),
                           tuple(self.lower(stmt.orelse, dict(positioned))))]
        if isinstance(stmt, ast.While):
            return [ast.While(stmt.condition,
                              tuple(self.lower(stmt.body, dict(positioned))))]
        if isinstance(stmt, ast.ForEachRow):
            return [ast.ForEachRow(stmt.row_var, stmt.rows_var,
                                   tuple(self.lower(stmt.body,
                                                    dict(positioned))))]
        return [stmt]

    def _lower_scan(self, stmt: AScan | AFirst,
                    positioned: dict[str, str]) -> list[ast.Stmt]:
        set_type = self.schema.set_type(stmt.via)
        extra: list[tuple[str, ast.Expr]] = []
        if not set_type.system_owned:
            owner_position = positioned.get(set_type.owner)
            if owner_position is None:
                raise GenerationError(
                    f"scan via {stmt.via} needs owner {set_type.owner} "
                    "positioned"
                )
            for column in fk_columns(self.schema, set_type):
                extra.append((column,
                              ast.Var(f"{owner_position[0]}.{column}")))
        conditions = stmt.conditions if isinstance(stmt, AScan) else ()
        where, params = self._condition_sql(stmt.entity, conditions, extra)
        text = f"SELECT * FROM {stmt.entity}"
        if where:
            text += f" WHERE {where}"
        order_keys = [
            key for key in set_type.order_keys
            if not self.schema.record(stmt.entity).field(key).is_virtual
        ]
        if order_keys:
            text += f" ORDER BY {', '.join(order_keys)}"
        rows_var = self._fresh(stmt.entity)
        inner_positioned = dict(positioned)
        inner_positioned[stmt.entity] = (
            stmt.entity, "locate" if isinstance(stmt, AFirst) else "scan")
        body = tuple(self.lower(stmt.body, inner_positioned))
        query = ast.RelQuery(text, rows_var, params)
        if isinstance(stmt, AFirst):
            return [
                query,
                ast.BindFirstRow(stmt.entity, rows_var),
                ast.If(ast.status_ok(), body),
            ]
        return [query, ast.ForEachRow(stmt.entity, rows_var, body)]

    def _lower_update(self, stmt: AStmt,
                      positioned: dict[str, str]) -> list[ast.Stmt]:
        entity = stmt.entity
        record = self.schema.record(entity)
        if not record.calc_keys:
            raise GenerationError(
                f"relational UPDATE/DELETE of {entity} needs a CALC key "
                "to identify the current instance"
            )
        position = positioned.get(entity)
        if position is None:
            raise GenerationError(
                f"UPDATE/DELETE of {entity} needs it positioned"
            )
        prefix, kind = position

        def guarded(statement: ast.Stmt) -> list[ast.Stmt]:
            # A locate-positioned update must not run (and must not
            # evaluate unbound row variables) when the locate missed;
            # DB-STATUS carries the miss, exactly as in the source.
            if kind == "locate":
                return [ast.If(ast.status_ok(), (statement,))]
            return [statement]

        equal = tuple(
            (key, ast.Var(f"{prefix}.{key}")) for key in record.calc_keys
        )
        if isinstance(stmt, AModify):
            return guarded(ast.RelUpdate(entity, equal, stmt.updates))
        if isinstance(stmt, AErase):
            return guarded(ast.RelDelete(entity, equal))
        # AReconnect: point the member's FK at the new owner value,
        # inserting the owner first when missing (ensure_owner).
        assert isinstance(stmt, AReconnect)
        set_type = self.schema.set_type(stmt.via)
        columns = fk_columns(self.schema, set_type)
        if columns != [stmt.using_field]:
            raise GenerationError(
                f"relational reconnect via {stmt.via} expects FK column "
                f"{stmt.using_field}, schema has {columns}"
            )
        out: list[ast.Stmt] = []
        if stmt.ensure_owner:
            literal, params = self._value_sql(stmt.value)
            rows_var = self._fresh(set_type.owner)
            out.append(ast.RelQuery(
                f"SELECT * FROM {set_type.owner} WHERE "
                f"{stmt.using_field} = {literal}",
                rows_var, tuple(params),
            ))
            out.append(ast.BindFirstRow(set_type.owner, rows_var))
            out.append(ast.If(
                ast.Bin("<>", ast.Var("DB-STATUS"), ast.Const("0000")),
                (ast.RelInsert(set_type.owner,
                               ((stmt.using_field, stmt.value),)),),
            ))
        out.append(ast.RelUpdate(entity, equal,
                                 ((stmt.using_field, stmt.value),)))
        return out


# ---------------------------------------------------------------------------
# Hierarchical
# ---------------------------------------------------------------------------


class _HierarchicalLowering:
    def __init__(self, schema: Schema):
        self.schema = schema

    def lower(self, statements: tuple[AStmt, ...]) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for stmt in statements:
            out.extend(self._lower_one(stmt))
        return out

    def _ssa(self, entity: str, conditions) -> tuple[ast.SsaSpec, list]:
        if not conditions:
            return ast.SsaSpec(entity), []
        head, *rest = conditions
        ssa = ast.SsaSpec(entity, head.field, head.op, head.value)
        return ssa, rest

    def _guard(self, entity: str, rest, body: tuple[ast.Stmt, ...]
               ) -> tuple[ast.Stmt, ...]:
        if not rest:
            return body
        condition: ast.Expr | None = None
        for cond in rest:
            comparison = ast.Bin(cond.op,
                                 ast.Var(f"{entity}.{cond.field}"),
                                 cond.value)
            condition = comparison if condition is None else \
                ast.Bin("AND", condition, comparison)
        return (ast.If(condition, body),)

    def _lower_one(self, stmt: AStmt) -> list[ast.Stmt]:
        if isinstance(stmt, ALocate):
            ssa, rest = self._ssa(stmt.entity, stmt.conditions)
            if rest:
                raise GenerationError(
                    "hierarchical LOCATE supports one qualification; "
                    "use command substitution for richer access"
                )
            return [ast.HierGU((ssa,))]
        if isinstance(stmt, AScan):
            set_type = self.schema.set_type(stmt.via)
            if set_type.system_owned:
                # Root sweep: GN(SSA) walks every root occurrence and
                # (unlike GNP) re-establishes parentage each time, so
                # nested GNP scans work under it.
                ssa, rest = self._ssa(stmt.entity, stmt.conditions)
                body = self._guard(stmt.entity, rest,
                                   tuple(self.lower(stmt.body)))
                loop_body = body + (ast.HierGN((ssa,)),)
                return [
                    ast.HierGN((ssa,)),
                    ast.While(_hier_status_ok(), loop_body),
                ]
            ssa, rest = self._ssa(stmt.entity, stmt.conditions)
            body = self._guard(stmt.entity, rest,
                               tuple(self.lower(stmt.body)))
            loop_body = body + (ast.HierGNP((ssa,)),)
            return [
                # Scan the parent's subtree from its top, regardless of
                # where a preceding sibling scan left the position.
                ast.HierPositionParent(),
                ast.HierGNP((ssa,)),
                ast.While(_hier_status_ok(), loop_body),
            ]
        if isinstance(stmt, AFirst):
            ssa, rest = self._ssa(stmt.entity, ())
            del rest
            body = tuple(self.lower(stmt.body))
            return [
                ast.HierGNP((ssa,)),
                ast.If(_hier_status_ok(), body),
            ]
        if isinstance(stmt, ABind):
            return []  # GU/GN/GNP already bound the segment fields
        if isinstance(stmt, ARefind):
            raise GenerationError(
                "hierarchical lowering has no currency re-establishment;"
                " use command substitution"
            )
        if isinstance(stmt, AStore):
            return [ast.HierISRT(stmt.entity, stmt.values)]
        if isinstance(stmt, AModify):
            return [ast.HierREPL(stmt.updates)]
        if isinstance(stmt, AErase):
            return [ast.HierDLET()]
        if isinstance(stmt, (AToOwner, AReconnect, AQuery)):
            raise GenerationError(
                f"{type(stmt).__name__} has no hierarchical lowering; "
                "route this program through command substitution"
            )
        if isinstance(stmt, ast.If):
            return [ast.If(stmt.condition, tuple(self.lower(stmt.then)),
                           tuple(self.lower(stmt.orelse)))]
        if isinstance(stmt, ast.While):
            return [ast.While(stmt.condition, tuple(self.lower(stmt.body)))]
        return [stmt]


def _hier_status_ok() -> ast.Bin:
    return ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))


def lower_value(value: Any) -> ast.Expr:
    """Convenience: wrap plain values for generated statements."""
    if isinstance(value, (ast.Const, ast.Var, ast.Bin)):
        return value
    return ast.Const(value)
