"""Transformation rules: the primitive combinators.

"The internal representation of how the database schema has been
changed is used by a Program Converter to select the proper
transformation rules for use in mapping the source program
representation to the target program representation." (Figure 4.1)

Each rule handles one :class:`~repro.schema.diff.SchemaChange` kind.
A rule rewrites the abstract program and may append analyst notes; a
change a rule cannot absorb raises
:class:`~repro.errors.UnconvertiblePattern`, which the supervisor turns
into an analyst question.

Since the rules-as-data redesign this module holds only the
*primitives*: structural rewrites too entangled with the abstract
syntax to express as data (renames, interposition, merges, vertical
partitioning) and a small set of parameterized combinators
(note/warn/refuse on an access-pattern match).  Which combinator
handles which change kind, with which analyst message templates, is
declared by the shipped catalog ``repro/catalog/data/builtin.rules``
and compiled back onto these classes by :mod:`repro.catalog.compile`.
The pre-redesign module globals ``RULES`` and ``rule_for`` remain as
warn-once deprecation shims over the compiled default catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, \
    replace

from repro.core import abstract
from repro.core.abstract import (
    ACond,
    AErase,
    AFirst,
    ALocate,
    AModify,
    AQuery,
    AReconnect,
    ARefind,
    AScan,
    AStmt,
    AStore,
    AToOwner,
    AbstractProgram,
)
from repro._deprecation import warn_deprecated
from repro.errors import UnconvertiblePattern
from repro.programs import ast
from repro.relational.sequel import (
    Comparison,
    InSubquery,
    SequelQuery,
    parse_sequel,
)
from repro.schema.constraints import Constraint
from repro.schema.diff import (
    FieldRenamed,
    FieldsExtracted,
    FieldsInlined,
    RecordAdded,
    RecordInterposed,
    RecordRenamed,
    RecordsMerged,
    SchemaChange,
    SetRenamed,
    VirtualizedField,
)
from repro.schema.model import Schema


@dataclass
class RuleContext:
    """Shared state while converting one program."""

    source_schema: Schema
    target_schema: Schema
    notes: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def warn(self, text: str) -> None:
        self.warnings.append(text)


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def _rename_var_prefix(expr: ast.Expr, old_prefix: str,
                       new_prefix: str) -> ast.Expr:
    """Rewrite bound-variable references ``OLD.FIELD`` -> ``NEW.FIELD``."""
    if isinstance(expr, ast.Var) and expr.name.startswith(old_prefix):
        return ast.Var(new_prefix + expr.name[len(old_prefix):])
    if isinstance(expr, ast.Bin):
        return ast.Bin(expr.op,
                       _rename_var_prefix(expr.left, old_prefix, new_prefix),
                       _rename_var_prefix(expr.right, old_prefix, new_prefix))
    return expr


def _rewrite_exprs(statements: tuple[AStmt, ...], fn) -> tuple[AStmt, ...]:
    """Apply an expression rewriter to every expression in a block."""

    def fix(stmt: AStmt):
        if isinstance(stmt, ast.Assign):
            return replace(stmt, expr=fn(stmt.expr))
        if isinstance(stmt, ast.If):
            return replace(stmt, condition=fn(stmt.condition))
        if isinstance(stmt, ast.While):
            return replace(stmt, condition=fn(stmt.condition))
        if isinstance(stmt, ast.WriteTerminal):
            return replace(stmt, exprs=tuple(fn(e) for e in stmt.exprs))
        if isinstance(stmt, ast.WriteFile):
            return replace(stmt, exprs=tuple(fn(e) for e in stmt.exprs))
        if isinstance(stmt, (ALocate, AScan)):
            return replace(stmt, conditions=tuple(
                replace(c, value=fn(c.value)) for c in stmt.conditions
            ))
        if isinstance(stmt, (AStore, AModify)):
            key = "values" if isinstance(stmt, AStore) else "updates"
            pairs = getattr(stmt, key)
            return replace(stmt, **{key: tuple(
                (name, fn(value)) for name, value in pairs
            )})
        if isinstance(stmt, AReconnect):
            return replace(stmt, value=fn(stmt.value))
        return stmt

    return abstract.transform(statements, fix)


def _mentions_entity(statements: tuple[AStmt, ...], entity: str) -> bool:
    for stmt in abstract.walk(statements):
        if getattr(stmt, "entity", None) == entity:
            return True
    return False


def _mentions_field(statements: tuple[AStmt, ...], entity: str,
                    field_name: str) -> bool:
    var_name = f"{entity}.{field_name}"

    def in_expr(expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Var):
            return expr.name == var_name
        if isinstance(expr, ast.Bin):
            return in_expr(expr.left) or in_expr(expr.right)
        return False

    for stmt in abstract.walk(statements):
        if getattr(stmt, "entity", None) == entity:
            for cond in getattr(stmt, "conditions", ()):
                if cond.field == field_name:
                    return True
            for name, _value in getattr(stmt, "values", ()):
                if name == field_name:
                    return True
            for name, _value in getattr(stmt, "updates", ()):
                if name == field_name:
                    return True
        for attribute in ("condition", "expr"):
            expr = getattr(stmt, attribute, None)
            if expr is not None and in_expr(expr):
                return True
        for expr in getattr(stmt, "exprs", ()):
            if in_expr(expr):
                return True
    return False


# ---------------------------------------------------------------------------
# Catalog message templating
# ---------------------------------------------------------------------------


def change_namespace(change: SchemaChange) -> dict[str, object]:
    """The namespace a catalog message template formats against: one
    name per dataclass field of the change.  Tuples render as lists
    and constraints as their ``describe()`` text, so a template can
    say ``{old_keys}`` or ``{constraint}`` directly -- ``str.format``
    supports attribute access but never method calls."""
    namespace: dict[str, object] = {}
    for spec in dataclass_fields(change):
        value = getattr(change, spec.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, Constraint):
            value = value.describe()
        namespace[spec.name] = value
    return namespace


def format_message(template: str, change: SchemaChange,
                   extras: dict[str, object] | None = None) -> str:
    """Render one catalog message template for a concrete change."""
    namespace = change_namespace(change)
    if extras:
        namespace.update(extras)
    return template.format(**namespace)


# ---------------------------------------------------------------------------
# Rule base
# ---------------------------------------------------------------------------


class TransformationRule:
    """One rule: rewrites a program for one change kind."""

    change_type: type[SchemaChange]

    def apply(self, program: AbstractProgram, change: SchemaChange,
              ctx: RuleContext) -> AbstractProgram:
        raise NotImplementedError


class RenameRecordRule(TransformationRule):
    """Rename an entity everywhere: access ops, query text, bound variables."""

    change_type = RecordRenamed

    def apply(self, program, change, ctx):
        old, new = change.old_name, change.new_name

        def fix(stmt: AStmt):
            if getattr(stmt, "entity", None) == old:
                stmt = replace(stmt, entity=new)
            if isinstance(stmt, AQuery):
                stmt = replace(stmt, sequel_text=_rename_query_table(
                    stmt.sequel_text, old, new
                ))
            return stmt

        statements = abstract.transform(program.statements, fix)
        statements = _rewrite_exprs(
            statements,
            lambda e: _rename_var_prefix(e, f"{old}.", f"{new}."),
        )
        return program.with_statements(statements)


class RenameFieldRule(TransformationRule):
    """Rename a field in conditions, value lists, query text, and bound variables."""

    change_type = FieldRenamed

    def apply(self, program, change, ctx):
        record, old, new = change.record, change.old_name, change.new_name

        def fix(stmt: AStmt):
            if getattr(stmt, "entity", None) == record:
                if isinstance(stmt, (ALocate, AScan)):
                    stmt = replace(stmt, conditions=tuple(
                        replace(c, field=new) if c.field == old else c
                        for c in stmt.conditions
                    ))
                if isinstance(stmt, AStore):
                    stmt = replace(stmt, values=tuple(
                        (new if name == old else name, value)
                        for name, value in stmt.values
                    ))
                if isinstance(stmt, AModify):
                    stmt = replace(stmt, updates=tuple(
                        (new if name == old else name, value)
                        for name, value in stmt.updates
                    ))
            if isinstance(stmt, AQuery):
                stmt = replace(stmt, sequel_text=_rename_query_column(
                    stmt.sequel_text, record, old, new
                ))
            return stmt

        statements = abstract.transform(program.statements, fix)
        statements = _rewrite_exprs(
            statements,
            lambda e: _rename_var_prefix(e, f"{record}.{old}",
                                         f"{record}.{new}"),
        )
        # Row variables bound from queries over the renamed record
        # (FOR EACH ROW IN $ROWS / BIND FIRST) carry the renamed
        # column too: ROW.OLD -> ROW.NEW.
        for row_var in _row_vars_over(statements, record):
            statements = _rewrite_exprs(
                statements,
                lambda e, rv=row_var: _rename_var_prefix(
                    e, f"{rv}.{old}", f"{rv}.{new}"),
            )
        return program.with_statements(statements)


def _row_vars_over(statements: tuple[AStmt, ...],
                   record: str) -> set[str]:
    """Row variables whose rows come from a query over ``record``."""
    rows_vars: set[str] = set()
    for stmt in abstract.walk(statements):
        if isinstance(stmt, AQuery):
            try:
                table = parse_sequel(stmt.sequel_text).table
            except Exception:
                continue
            if table == record:
                rows_vars.add(stmt.into_var)
    row_vars: set[str] = set()
    for stmt in abstract.walk(statements):
        if isinstance(stmt, ast.ForEachRow) and \
                stmt.rows_var in rows_vars:
            row_vars.add(stmt.row_var)
        if isinstance(stmt, ast.BindFirstRow) and \
                stmt.rows_var in rows_vars:
            row_vars.add(stmt.row_var)
    return row_vars


class RenameSetRule(TransformationRule):
    """Rename a set in every via reference."""

    change_type = SetRenamed

    def apply(self, program, change, ctx):
        old, new = change.old_name, change.new_name

        def fix(stmt: AStmt):
            if getattr(stmt, "via", None) == old:
                return replace(stmt, via=new)
            return stmt

        return program.with_statements(
            abstract.transform(program.statements, fix)
        )


# ---------------------------------------------------------------------------
# Catalog combinators: parameterized by the compiled catalog with a
# change kind and analyst message templates (see repro.catalog).
# ---------------------------------------------------------------------------


class NoopRule(TransformationRule):
    """Changes with no program impact (pure additions, or changes the
    target model absorbs elsewhere -- e.g. sibling order, which only
    affects hierarchical GN sequences converted by command
    substitution)."""

    def __init__(self, change_type: type[SchemaChange] = RecordAdded):
        self.change_type = change_type

    def apply(self, program, change, ctx):
        return program


class NoteOnStoreRule(TransformationRule):
    """Note the message when the program STOREs the changed record."""

    def __init__(self, change_type: type[SchemaChange], note: str):
        self.change_type = change_type
        self.note = note

    def apply(self, program, change, ctx):
        stores = any(
            isinstance(stmt, AStore) and stmt.entity == change.record
            for stmt in abstract.walk(program.statements)
        )
        if stores:
            ctx.note(format_message(self.note, change))
        return program


class RefuseOnFieldUseRule(TransformationRule):
    """Refuse when the program references the changed record's field."""

    def __init__(self, change_type: type[SchemaChange], refusal: str):
        self.change_type = change_type
        self.refusal = refusal

    def apply(self, program, change, ctx):
        if _mentions_field(program.statements, change.record,
                           change.field_name):
            raise UnconvertiblePattern(
                format_message(self.refusal, change)
            )
        return program


class RefuseOnRecordUseRule(TransformationRule):
    """Refuse when the program accesses the changed record type."""

    def __init__(self, change_type: type[SchemaChange], refusal: str):
        self.change_type = change_type
        self.refusal = refusal

    def apply(self, program, change, ctx):
        if _mentions_entity(program.statements, change.record):
            raise UnconvertiblePattern(
                format_message(self.refusal, change)
            )
        return program


class RefuseOnSetUseRule(TransformationRule):
    """Refuse when the program traverses the changed set."""

    def __init__(self, change_type: type[SchemaChange], refusal: str):
        self.change_type = change_type
        self.refusal = refusal

    def apply(self, program, change, ctx):
        uses = any(
            getattr(stmt, "via", None) == change.set_name
            for stmt in abstract.walk(program.statements)
        )
        if uses:
            raise UnconvertiblePattern(
                format_message(self.refusal, change)
            )
        return program


class WarnOnReorderRule(TransformationRule):
    """Warn when order-sensitive scans or process-first touch the
    changed set: the Section 3.2 order-dependence pathology."""

    def __init__(self, change_type: type[SchemaChange],
                 scan_warning: str, first_warning: str):
        self.change_type = change_type
        self.scan_warning = scan_warning
        self.first_warning = first_warning

    def apply(self, program, change, ctx):
        for stmt in abstract.walk(program.statements):
            if isinstance(stmt, AScan) and stmt.via == change.set_name \
                    and stmt.order_sensitive:
                ctx.warn(format_message(self.scan_warning, change))
            if isinstance(stmt, AFirst) and stmt.via == change.set_name:
                ctx.warn(format_message(self.first_warning, change))
        return program


class NoteOnMembershipRule(TransformationRule):
    """Note behaviour changes for STORE/ERASE of the changed set's
    member (available to the template as ``{member}``)."""

    def __init__(self, change_type: type[SchemaChange], note: str):
        self.change_type = change_type
        self.note = note

    def apply(self, program, change, ctx):
        member = ctx.source_schema.set_type(change.set_name).member
        touches = any(
            isinstance(stmt, (AStore, AErase)) and stmt.entity == member
            for stmt in abstract.walk(program.statements)
        )
        if touches:
            ctx.note(format_message(self.note, change,
                                    {"member": member}))
        return program


class NoteRule(TransformationRule):
    """Unconditionally note the message (behaviour-change advisories
    that apply to every program, e.g. constraint changes)."""

    def __init__(self, change_type: type[SchemaChange], note: str):
        self.change_type = change_type
        self.note = note

    def apply(self, program, change, ctx):
        ctx.note(format_message(self.note, change))
        return program


class VirtualizedFieldRule(TransformationRule):
    """Reads survive virtualization; MODIFY becomes a reconnection."""

    change_type = VirtualizedField

    def apply(self, program, change, ctx):
        if not change.now_virtual:
            return program  # materialization: reads/writes keep working
        record, field_name = change.record, change.field_name
        via = change.via_set

        def fix(stmt: AStmt):
            if isinstance(stmt, AModify) and stmt.entity == record:
                moved = [
                    (name, value) for name, value in stmt.updates
                    if name == field_name
                ]
                if not moved:
                    return stmt
                remaining = tuple(
                    (name, value) for name, value in stmt.updates
                    if name != field_name
                )
                ctx.note(
                    f"MODIFY of {record}.{field_name} became a "
                    f"reconnection through {via} "
                    "(conversion-inserted statements)"
                )
                out: list[AStmt] = []
                if remaining:
                    out.append(replace(stmt, updates=remaining))
                out.append(AReconnect(record, via, field_name,
                                      moved[0][1], ensure_owner=False))
                return out
            return stmt

        return program.with_statements(
            abstract.transform(program.statements, fix)
        )


class InterposeRule(TransformationRule):
    """The Figure 4.2 -> 4.4 rule: nest scans, guard stores, reroute hops."""

    change_type = RecordInterposed

    def apply(self, program, change, ctx):
        if change.member:
            member, owner = change.member, change.owner
            order_keys = change.order_keys
        else:  # diff-inferred change without the snapshot
            source_set = ctx.source_schema.set_type(change.old_set)
            member, owner = source_set.member, source_set.owner
            order_keys = source_set.order_keys
        key_fields = set(change.key_fields)

        def split(conditions: tuple[ACond, ...]):
            key_conds = tuple(c for c in conditions
                              if c.field in key_fields)
            rest = tuple(c for c in conditions if c.field not in key_fields)
            pinned = {
                c.field for c in key_conds if c.op == "="
            } == key_fields
            return key_conds, rest, pinned

        def fix(stmt: AStmt):
            if isinstance(stmt, AScan) and stmt.via == change.old_set:
                if stmt.entity == member:
                    key_conds, rest, pinned = split(stmt.conditions)
                    inner = AScan(member, change.lower_set, rest,
                                  stmt.body, stmt.bind,
                                  stmt.order_sensitive, stmt.keyed)
                    outer = AScan(change.new_record, change.upper_set,
                                  key_conds, (inner,), bind=False)
                    if stmt.order_sensitive and not pinned:
                        ctx.warn(
                            f"scan of {member} via {change.old_set} is "
                            "order-sensitive; after interposition members "
                            f"arrive grouped by {change.new_record} "
                            "(level-2 conversion, Section 5.2)"
                        )
                    return outer
                if stmt.entity == owner:
                    raise UnconvertiblePattern(
                        f"upward scan of owners via {change.old_set} has "
                        "no mechanical equivalent after interposition"
                    )
            if isinstance(stmt, AFirst) and stmt.via == change.old_set \
                    and stmt.entity == member:
                rewritten = _first_member_min_rewrite(stmt, change,
                                                      order_keys, ctx)
                if rewritten is not None:
                    return rewritten
                ctx.warn(
                    f"'process first' of {change.old_set}: after "
                    f"interposition the first member of the first "
                    f"{change.new_record} group is processed, which may "
                    "be a different record (Section 3.2)"
                )
                inner = AFirst(member, change.lower_set, stmt.body,
                               stmt.bind)
                return AFirst(change.new_record, change.upper_set,
                              (inner,), bind=False)
            if isinstance(stmt, AToOwner) and stmt.via == change.old_set:
                return [
                    AToOwner(change.new_record, change.lower_set,
                             bind=False),
                    AToOwner(owner, change.upper_set, stmt.bind),
                ]
            if isinstance(stmt, AStore) and stmt.entity == member:
                stored = {name for name, _ in stmt.values}
                if stored & key_fields:
                    ctx.note(
                        f"STORE {member} now routes through interposed "
                        f"{change.new_record}; conversion inserts a "
                        "guarded STORE of the missing group record"
                    )
                    return _ensure_group_then_store(
                        stmt, change, ctx.target_schema)
            if isinstance(stmt, AModify) and stmt.entity == member:
                moved = [(name, value) for name, value in stmt.updates
                         if name in key_fields]
                if moved:
                    remaining = tuple(
                        (name, value) for name, value in stmt.updates
                        if name not in key_fields
                    )
                    ctx.note(
                        f"MODIFY of {member} group key became a "
                        f"reconnection through {change.lower_set}, "
                        f"creating the {change.new_record} group when "
                        "missing"
                    )
                    out: list[AStmt] = []
                    if remaining:
                        out.append(replace(stmt, updates=remaining))
                    out.extend(
                        AReconnect(member, change.lower_set, name, value,
                                   ensure_owner=True)
                        for name, value in moved
                    )
                    return out
            return stmt

        return program.with_statements(
            abstract.transform(program.statements, fix)
        )


def _first_member_min_rewrite(stmt: AFirst, change: RecordInterposed,
                              order_keys: tuple[str, ...],
                              ctx: RuleContext):
    """Strictly preserve 'process first' when the source set's single
    order key is also the member's CALC key: the first member overall
    is the minimum of the per-group firsts, found by a min-tracking
    sweep and then re-located directly.

    Returns None when the rewrite does not apply (multi-key or
    non-locatable ordering), in which case the caller falls back to the
    warned first-of-first-group form (Section 5.2 level 2).
    """
    member = change.member or \
        ctx.source_schema.set_type(change.old_set).member
    member_type = ctx.source_schema.record(member)
    if len(order_keys) != 1:
        return None
    order_key = order_keys[0]
    if member_type.calc_keys != (order_key,):
        return None
    min_var = f"FIRST-{member}-KEY"
    key_var = ast.Var(f"{member}.{order_key}")
    track = AScan(
        change.new_record, change.upper_set, (),
        (
            AFirst(member, change.lower_set, (
                ast.If(
                    ast.Bin("OR",
                            ast.Bin("=", ast.Var(min_var),
                                    ast.Const(None)),
                            ast.Bin("<", key_var, ast.Var(min_var))),
                    (ast.Assign(min_var, key_var),),
                ),
            ), bind=True),
        ),
        bind=False,
    )
    ctx.note(
        f"'process first' of {change.old_set} preserved exactly: the "
        f"conversion sweeps the {change.new_record} groups for the "
        f"minimal {order_key} and re-locates it"
    )
    process = ALocate(member, (ACond(order_key, "=",
                                     ast.Var(min_var)),),
                      bind=stmt.bind)
    return [
        ast.Assign(min_var, ast.Const(None)),
        track,
        ast.If(
            ast.Bin("<>", ast.Var(min_var), ast.Const(None)),
            (process,) + stmt.body,
        ),
    ]


def _ensure_group_then_store(store: AStore, change: RecordInterposed,
                             target_schema: Schema) -> list[AStmt]:
    """Insert the missing group record before the member store.

    Two scopings, mirroring CODASYL's two set-selection modes:

    * when the store values identify the *upper* owner by value (e.g.
      the member carried DIV-NAME, now a virtual field on the group),
      the check is a value-scoped LOCATE -- which works without any
      currency, so it survives retargeting to the relational model;
    * otherwise the check scans the upper set under the current owner
      occurrence (currency scoping), so same-named groups under other
      owners don't satisfy the existence test.
    """
    key_values = {
        name: value for name, value in store.values
        if name in change.key_fields
    }
    new_record = target_schema.record(change.new_record)
    chain_values = {
        name: value for name, value in store.values
        if name not in change.key_fields
        and new_record.has_field(name)
        and new_record.field(name).is_virtual
    }
    if chain_values:
        conditions = tuple(
            ACond(name, "=", value)
            for name, value in {**key_values, **chain_values}.items()
        )
        group_values = tuple({**key_values, **chain_values}.items())
        return [
            ALocate(change.new_record, conditions, bind=False),
            ast.If(
                ast.Bin("<>", ast.Var("DB-STATUS"), ast.Const("0000")),
                (AStore(change.new_record, group_values),),
            ),
            store,
        ]
    found_var = f"FOUND-{change.new_record}"
    key_conds = tuple(
        ACond(name, "=", value) for name, value in key_values.items()
    )
    return [
        ast.Assign(found_var, ast.Const(0)),
        AScan(change.new_record, change.upper_set, key_conds,
              (ast.Assign(found_var, ast.Const(1)),), bind=False),
        ast.If(
            ast.Bin("=", ast.Var(found_var), ast.Const(0)),
            (AStore(change.new_record, tuple(key_values.items())),),
        ),
        store,
    ]


class MergeRule(TransformationRule):
    """Inverse of interposition: collapse nested scans, inline bound variables."""

    change_type = RecordsMerged

    def apply(self, program, change, ctx):
        middle = change.removed_record
        lower = ctx.source_schema.set_type(change.lower_set)
        member = lower.member
        inherited = set(change.inherited_fields)

        def fix(stmt: AStmt):
            if isinstance(stmt, AScan) and stmt.via == change.upper_set \
                    and stmt.entity == middle:
                # Outer scan of the middle record: absorb a nested scan
                # of the member when there is one.
                nested = [
                    s for s in stmt.body
                    if isinstance(s, AScan) and s.via == change.lower_set
                ]
                others = [
                    s for s in stmt.body
                    if not (isinstance(s, AScan)
                            and s.via == change.lower_set)
                ]
                if not nested or others:
                    raise UnconvertiblePattern(
                        f"scan of merged record {middle} does more than "
                        "iterate its members; analyst must redesign"
                    )
                inner = nested[0]
                merged_conditions = stmt.conditions + inner.conditions
                body = _rewrite_exprs(
                    inner.body,
                    lambda e: _rename_var_prefix(e, f"{middle}.",
                                                 f"{member}."),
                )
                pinned = {
                    c.field for c in stmt.conditions if c.op == "="
                } >= inherited
                if inner.order_sensitive and not pinned:
                    ctx.warn(
                        f"merged scan loses grouping by {middle}; member "
                        "order within the new set follows its restored "
                        "keys (level-2 conversion)"
                    )
                return AScan(member, change.new_set, merged_conditions,
                             body, inner.bind, inner.order_sensitive,
                             inner.keyed)
            if isinstance(stmt, AToOwner) and stmt.via == change.lower_set \
                    and stmt.entity == middle:
                # Member -> middle hop: the middle's fields now live on
                # the member; drop the hop and rewrite references.
                ctx.note(
                    f"owner access to merged {middle} removed; its "
                    f"fields are stored on {member}"
                )
                return None
            if isinstance(stmt, AToOwner) and stmt.via == change.upper_set:
                return replace(stmt, via=change.new_set)
            if getattr(stmt, "entity", None) == middle:
                raise UnconvertiblePattern(
                    f"program accesses merged-away record {middle}"
                )
            return stmt

        statements = abstract.transform(program.statements, fix)
        statements = _rewrite_exprs(
            statements,
            lambda e: _rename_var_prefix(e, f"{middle}.", f"{member}."),
        )
        return program.with_statements(statements)


class ExtractFieldsRule(TransformationRule):
    """Vertical partition: reads keep working through the VIRTUAL
    fields; writes of moved fields are routed to the extracted record
    through conversion-inserted hops."""

    change_type = FieldsExtracted

    def apply(self, program, change, ctx):
        record = change.record
        moved = set(change.fields)
        new_record = change.new_record
        link = change.link_set

        def fix(stmt: AStmt):
            if isinstance(stmt, AStore) and stmt.entity == record:
                extracted = tuple(
                    (name, value) for name, value in stmt.values
                    if name in moved
                )
                rest = tuple(
                    (name, value) for name, value in stmt.values
                    if name not in moved
                )
                if not extracted:
                    # Still must create the 1:1 partner (MANDATORY link).
                    extracted = ()
                ctx.note(
                    f"STORE {record} splits across {record} and the "
                    f"extracted {new_record}"
                )
                return [AStore(new_record, extracted),
                        replace(stmt, values=rest)]
            if isinstance(stmt, AModify) and stmt.entity == record:
                extracted = tuple(
                    (name, value) for name, value in stmt.updates
                    if name in moved
                )
                if not extracted:
                    return stmt
                rest = tuple(
                    (name, value) for name, value in stmt.updates
                    if name not in moved
                )
                ctx.note(
                    f"MODIFY of extracted field(s) "
                    f"{[name for name, _ in extracted]} routed to "
                    f"{new_record} (conversion-inserted hop)"
                )
                out: list[AStmt] = []
                if rest:
                    out.append(replace(stmt, updates=rest))
                out.append(AToOwner(new_record, link, bind=False))
                out.append(AModify(new_record, extracted))
                out.append(ARefind(record))
                return out
            if isinstance(stmt, AErase) and stmt.entity == record:
                ctx.note(
                    f"ERASE {record} also erases its extracted "
                    f"{new_record} partner"
                )
                return [
                    AToOwner(new_record, link, bind=False),
                    ARefind(record),
                    stmt,
                    ARefind(new_record),
                    AErase(new_record),
                ]
            return stmt

        return program.with_statements(
            abstract.transform(program.statements, fix)
        )


class InlineFieldsRule(TransformationRule):
    """Inverse of extraction: hops to the removed record disappear and
    its bound variables live on the merged record."""

    change_type = FieldsInlined

    def apply(self, program, change, ctx):
        removed = change.removed_record
        record = change.record

        def fix(stmt: AStmt):
            if isinstance(stmt, AToOwner) and stmt.via == change.link_set:
                ctx.note(
                    f"hop to inlined record {removed} removed; its "
                    f"fields are stored on {record}"
                )
                return None
            if isinstance(stmt, AModify) and stmt.entity == removed:
                return replace(stmt, entity=record)
            if getattr(stmt, "entity", None) == removed:
                raise UnconvertiblePattern(
                    f"program accesses inlined-away record {removed}"
                )
            return stmt

        statements = abstract.transform(program.statements, fix)
        statements = _rewrite_exprs(
            statements,
            lambda e: _rename_var_prefix(e, f"{removed}.", f"{record}."),
        )
        return program.with_statements(statements)


def _rename_query_table(sequel_text: str, old: str, new: str) -> str:
    query = parse_sequel(sequel_text)
    return _rename_tables(query, old, new).render()


def _rename_tables(query: SequelQuery, old: str, new: str) -> SequelQuery:
    where = tuple(
        InSubquery(c.column, _rename_tables(c.query, old, new))
        if isinstance(c, InSubquery) else c
        for c in query.where
    )
    return replace(query,
                   table=new if query.table == old else query.table,
                   where=where)


def _rename_query_column(sequel_text: str, record: str, old: str,
                         new: str) -> str:
    query = parse_sequel(sequel_text)
    return _rename_columns(query, record, old, new).render()


def _rename_columns(query: SequelQuery, record: str, old: str,
                    new: str) -> SequelQuery:
    def fix_condition(condition):
        if isinstance(condition, InSubquery):
            inner = _rename_columns(condition.query, record, old, new)
            column = condition.column
            if query.table == record and column == old:
                column = new
            return InSubquery(column, inner)
        if query.table == record and condition.column == old:
            return Comparison(new, condition.op, condition.value)
        return condition

    columns = query.columns
    order_by = query.order_by
    if query.table == record:
        columns = tuple(new if c == old else c for c in columns)
        order_by = tuple(new if c == old else c for c in order_by)
    return replace(query, columns=columns, order_by=order_by,
                   where=tuple(fix_condition(c) for c in query.where))


# ---------------------------------------------------------------------------
# Deprecation shims: the pre-catalog registry globals
# ---------------------------------------------------------------------------


def __getattr__(name: str):
    """PEP 562 shims: ``RULES`` and ``rule_for`` were module globals
    before the rules-as-data redesign.  Both now resolve (warn-once)
    to views over the compiled default catalog, so existing imports
    keep selecting byte-identical rules."""
    if name == "RULES":
        warn_deprecated(
            "repro.core.rules:RULES",
            "repro.core.rules.RULES is deprecated; use "
            "repro.catalog.default_rules().rules (the compiled "
            "default catalog)",
        )
        from repro.catalog import default_rules

        return default_rules().rules
    if name == "rule_for":
        warn_deprecated(
            "repro.core.rules:rule_for",
            "repro.core.rules.rule_for is deprecated; use "
            "repro.catalog.default_rules().rule_for (the compiled "
            "default catalog)",
        )
        from repro.catalog import default_rules

        return default_rules().rule_for
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
