"""The Program Converter (Figure 4.1).

Applies the selected transformation rules to the abstract source
program, producing the abstract target program.  "The transformation
rules map the access patterns and the application program structure to
account for the database changes made."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.abstract import AbstractProgram
from repro.core.analyzer_db import ChangeCatalog
from repro.core.rules import RuleContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.compile import CompiledRules


@dataclass(frozen=True)
class ConversionArtifacts:
    """The converter's output: the target abstract program plus the
    notes and warnings gathered while rewriting."""

    program: AbstractProgram
    notes: tuple[str, ...]
    warnings: tuple[str, ...]

    @property
    def clean(self) -> bool:
        """True when conversion required no behaviour caveats."""
        return not self.warnings


class ProgramConverter:
    """Rule-driven abstract-to-abstract mapping.

    Dispatches through a compiled rule catalog
    (:class:`repro.catalog.compile.CompiledRules`); ``None`` resolves
    to the shipped builtin catalog lazily, so importing this module
    never loads catalog data.
    """

    def __init__(self, rules: "CompiledRules | None" = None):
        self._rules = rules

    def convert(self, program: AbstractProgram,
                catalog: ChangeCatalog) -> ConversionArtifacts:
        """Apply one rule per classified change, in change order.

        Raises :class:`~repro.errors.UnconvertiblePattern` when a
        change has no applicable rule or a rule cannot absorb the
        change for this program; the supervisor catches this and asks
        the analyst.
        """
        rules = self._rules
        if rules is None:
            from repro.catalog.compile import default_rules
            rules = default_rules()
        ctx = RuleContext(catalog.source_schema, catalog.target_schema)
        for change in catalog.changes:
            rule = rules.rule_for(change)
            program = rule.apply(program, change, ctx)
        return ConversionArtifacts(program, tuple(ctx.notes),
                                   tuple(ctx.warnings))
