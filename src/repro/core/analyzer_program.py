"""The Program Analyzer (Figure 4.1).

"The Program Analyzer uses the source database description and matches
candidate language templates against the source application program to
produce a representation of the database operations and data access
patterns made by the program."

Analysis steps:

1. run the Section 3.2 pathology detectors; *blocking* findings
   (run-time verb variability) abort analysis unless the conversion
   analyst has pinned the verb to a constant;
2. template-match the statement tree into an abstract program
   (:mod:`repro.core.abstract`);
3. attach warnings (order dependence, process-first, status-code
   dependence) as notes for the supervisor's report.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.variability import detect_pathologies
from repro.core.abstract import ALocate, AQuery, AScan, AbstractProgram
from repro.core.templates import NetworkTemplateMatcher, _conds
from repro.errors import AnalysisError
from repro.programs import ast
from repro.schema.model import Schema


def blocking_failure(details: list[str] | tuple[str, ...]) -> str:
    """The analyzer's refusal message for blocking findings.

    Shared with :mod:`repro.cost`, whose static prediction of "this
    program will fall back" must synthesize the exact same failure
    text the real analyzer raises.
    """
    return ("program cannot be analyzed mechanically: "
            + "; ".join(details))


class ProgramAnalyzer:
    """Derives abstract programs from concrete database programs."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def analyze(self, program: ast.Program,
                pinned_verbs: dict[int, str] | None = None
                ) -> AbstractProgram:
        """Produce the abstract program.

        ``pinned_verbs`` maps the position (index among NetGenericCall
        statements, in walk order) to a verb string the analyst has
        asserted constant -- the interactive resolution the paper
        expects for Section 3.2 variability.
        """
        findings = detect_pathologies(program)
        blocking = [f for f in findings if f.blocking]
        if pinned_verbs:
            program = _pin_verbs(program, pinned_verbs)
            findings = detect_pathologies(program)
            blocking = [f for f in findings if f.blocking]
        if blocking:
            raise AnalysisError(
                blocking_failure([f.detail for f in blocking])
            )
        if program.procedures:
            # Inline-free analysis: procedures are analyzed but calls
            # are left opaque only if a procedure contains DML.
            for procedure in program.procedures:
                for stmt in ast.walk(procedure.body):
                    if isinstance(stmt, ast.DML_NODES):
                        raise AnalysisError(
                            f"procedure {procedure.name} contains DML; "
                            "inline it before analysis (sub-program DML "
                            "analysis is future work, Section 5.3)"
                        )
        statements = self._analyze_block(program)
        notes = tuple(f.render() for f in findings)
        return AbstractProgram(program.name, program.model,
                               program.schema_name, statements, notes)

    def _analyze_block(self, program: ast.Program):
        if program.model == "network":
            matcher = NetworkTemplateMatcher(self.schema)
            return matcher.match_block(program.statements)
        if program.model == "relational":
            return _match_relational(program.statements)
        if program.model == "hierarchical":
            raise AnalysisError(
                "hierarchical programs are converted by command "
                "substitution (Mehl & Wang, Section 2.2); use "
                "repro.core.command_substitution"
            )
        raise AnalysisError(f"unknown program model {program.model!r}")


def _match_relational(statements: tuple[ast.Stmt, ...]):
    out = []
    for stmt in statements:
        if isinstance(stmt, ast.RelQuery):
            out.append(AQuery(stmt.sequel, stmt.into_var, stmt.parameters))
        elif isinstance(stmt, ast.RelInsert):
            from repro.core.abstract import AStore

            out.append(AStore(stmt.relation, stmt.values))
        elif isinstance(stmt, ast.RelDelete):
            from repro.core.abstract import AErase

            out.append(ALocate(stmt.relation, _conds(stmt.equal),
                               bind=False))
            out.append(AErase(stmt.relation))
        elif isinstance(stmt, ast.RelUpdate):
            from repro.core.abstract import AModify

            out.append(ALocate(stmt.relation, _conds(stmt.equal),
                               bind=False))
            out.append(AModify(stmt.relation, stmt.updates))
        elif isinstance(stmt, ast.If):
            out.append(replace(stmt,
                               then=_match_relational(stmt.then),
                               orelse=_match_relational(stmt.orelse)))
        elif isinstance(stmt, ast.While):
            out.append(replace(stmt, body=_match_relational(stmt.body)))
        elif isinstance(stmt, ast.ForEachRow):
            out.append(replace(stmt, body=_match_relational(stmt.body)))
        else:
            out.append(stmt)
    return tuple(out)


def _pin_verbs(program: ast.Program,
               pinned: dict[int, str]) -> ast.Program:
    """Replace NetGenericCall verbs with analyst-asserted constants."""
    counter = {"index": -1}

    def fix(stmt: ast.Stmt):
        if isinstance(stmt, ast.NetGenericCall):
            counter["index"] += 1
            verb = pinned.get(counter["index"])
            if verb is not None:
                return replace(stmt, verb=ast.Const(verb))
        return stmt

    return ast.transform_program(program, fix)


def scan_order_warnings(abstract: AbstractProgram) -> list[str]:
    """Order-sensitive scans, for the supervisor's change-impact check."""
    from repro.core.abstract import walk

    warnings = []
    for stmt in walk(abstract.statements):
        if isinstance(stmt, AScan) and stmt.order_sensitive:
            warnings.append(
                f"scan of {stmt.entity} via {stmt.via} emits output per "
                "member (order dependent)"
            )
    return warnings
