"""The conversion service's HTTP front end.

Pure standard library: a :class:`http.server.ThreadingHTTPServer`
whose handler threads are all daemons, fronting one
:class:`~repro.service.jobs.JobManager`.  The surface is small and
JSON-only:

========  =======================  =======================================
method    path                     meaning
========  =======================  =======================================
POST      ``/jobs``                submit a batch (``202``), resume an
                                   interrupted one (``{"resume": id}``),
                                   ``400`` malformed, ``409`` not
                                   resumable, ``503`` queue full
GET       ``/jobs``                every job's snapshot
GET       ``/jobs/<id>``           one job's snapshot
GET       ``/jobs/<id>/events``    the job's server-sent-event stream:
                                   replay from ``Last-Event-ID`` (or 0),
                                   then live until the job is terminal
GET       ``/jobs/<id>/report``    the report artifact -- byte-identical
                                   to ``repro convert --report-json``
GET       ``/jobs/<id>/checkpoint``  the batch journal (resumable)
GET       ``/healthz``             liveness + queue stats
========  =======================  =======================================

:class:`ConversionService` owns the manager/server pair for embedding
(the tests run it in-process on port 0); :func:`serve` is the blocking
entry point behind ``repro serve``, wiring SIGTERM/SIGINT to the
graceful drain: the running job is interrupted at its next program
boundary with a resumable checkpoint on disk, and the process exits 0.
"""

from __future__ import annotations

import json
import logging
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro import __version__
from repro.service.jobs import (
    JobManager,
    QueueFullError,
    SubmissionError,
)
from repro.service.sse import format_event

log = logging.getLogger(__name__)

#: ``repro serve`` exit codes (also in the CLI epilog and README).
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_STARTUP = 4


class ServiceHandler(BaseHTTPRequestHandler):
    """One HTTP exchange against the job manager."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("service: %s " + format, self.address_string(), *args)

    # -- response helpers ----------------------------------------------

    def _send_json(
        self,
        code: int,
        payload: Any,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        code: int,
        message: str,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self._send_json(code, {"error": message}, headers=headers)

    def _send_artifact(self, path: Path, missing: str) -> None:
        """Serve a spool artifact verbatim -- the bytes on disk ARE the
        contract (byte-identical to the CLI's), so no re-serialization."""
        try:
            body = path.read_bytes()
        except OSError:
            self._send_error_json(404, missing)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts == ["healthz"]:
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": __version__,
                    **self.manager.stats(),
                },
            )
            return
        if parts == ["jobs"]:
            self._send_json(200, {"jobs": self.manager.list_jobs()})
            return
        if len(parts) in (2, 3) and parts[0] == "jobs":
            job = self.manager.jobs.get(parts[1])
            if job is None:
                self._send_error_json(404, f"no such job: {parts[1]}")
                return
            tail = parts[2] if len(parts) == 3 else None
            if tail is None:
                self._send_json(200, job.snapshot())
            elif tail == "events":
                self._stream_events(job)
            elif tail == "report":
                missing = f"job {job.id} has no report yet (state: {job.state})"
                self._send_artifact(job.report_path, missing)
            elif tail == "checkpoint":
                missing = f"job {job.id} has no checkpoint yet (state: {job.state})"
                self._send_artifact(job.checkpoint_path, missing)
            else:
                self._send_error_json(404, f"unknown resource: {self.path}")
            return
        self._send_error_json(404, f"unknown resource: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts != ["jobs"]:
            self._send_error_json(404, f"unknown resource: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_error_json(400, "bad Content-Length")
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"null")
        except ValueError:
            self._send_error_json(400, "request body is not valid JSON")
            return
        resuming = isinstance(payload, dict) and "resume" in payload
        try:
            if resuming:
                job_id = payload["resume"]
                if not isinstance(job_id, str):
                    raise SubmissionError("'resume' must be a job id")
                try:
                    job = self.manager.resume_job(job_id)
                except KeyError:
                    self._send_error_json(404, f"no such job: {job_id}")
                    return
            else:
                job = self.manager.submit(payload)
        except QueueFullError as exc:
            self._send_error_json(503, str(exc), headers=(("Retry-After", "1"),))
            return
        except SubmissionError as exc:
            self._send_error_json(409 if resuming else 400, str(exc))
            return
        self._send_json(
            202,
            job.snapshot(),
            headers=(("Location", f"/jobs/{job.id}"),),
        )

    # -- SSE -----------------------------------------------------------

    def _stream_events(self, job: Any) -> None:
        """Replay buffered events, then follow live ones until the job
        is terminal or the service is stopping.  ``Connection: close``
        delimits the stream -- no chunked framing needed, and clients
        resume with ``Last-Event-ID``."""
        start = 0
        last_seen = self.headers.get("Last-Event-ID")
        if last_seen is not None:
            try:
                start = int(last_seen) + 1
            except ValueError:
                start = 0
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        stopping = self.manager.stopping
        try:
            for seq, event, data in job.follow(start=start, stop=stopping):
                self.wfile.write(format_event(event, data, event_id=seq))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up


class ConversionService:
    """The embeddable manager/server pair.

    ``port=0`` binds an ephemeral port (``service.address`` has the
    real one), which is how the tests and the CI smoke run it without
    port collisions.  :meth:`stop` is the full graceful drain --
    interrupt the running job at a program boundary, park the queue,
    close the warm pool, end every SSE stream, close the listener.
    """

    def __init__(
        self,
        spool: "str | Path",
        host: str = "127.0.0.1",
        port: int = 8979,
        queue_limit: int = 16,
        warm_pools: bool = True,
    ):
        self.manager = JobManager(
            spool, queue_limit=queue_limit, warm_pools=warm_pools
        )
        self.httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self.httpd.daemon_threads = True
        self.httpd.manager = self.manager  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ConversionService":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 60.0) -> None:
        self.manager.stop(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve(
    spool: "str | Path",
    host: str = "127.0.0.1",
    port: int = 8979,
    queue_limit: int = 16,
    warm_pools: bool = True,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Returns the process exit code: 0 after a clean drain (any
    interrupted job left a resumable checkpoint), 4 when the spool or
    listener could not be set up.
    """
    try:
        service = ConversionService(
            spool,
            host=host,
            port=port,
            queue_limit=queue_limit,
            warm_pools=warm_pools,
        )
    except OSError as exc:
        print(f"repro serve: cannot start: {exc}", file=sys.stderr)
        return EXIT_STARTUP
    service.start()
    bound_host, bound_port = service.address
    url = f"http://{bound_host}:{bound_port}"
    print(
        f"repro serve: listening on {url} (spool: {spool})",
        file=sys.stderr,
        flush=True,
    )

    stop = threading.Event()

    def _request_stop(signum: int, frame: Any) -> None:
        stop.set()

    previous: dict[int, Any] = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        drain = "repro serve: draining (in-flight job checkpoints, then exit) ..."
        print(drain, file=sys.stderr, flush=True)
        service.stop()
        print("repro serve: drained; shut down cleanly", file=sys.stderr, flush=True)
    return EXIT_OK


__all__ = [
    "ConversionService",
    "EXIT_OK",
    "EXIT_STARTUP",
    "EXIT_USAGE",
    "ServiceHandler",
    "serve",
]
