"""Server-sent events: the service's streaming wire format.

One event per line group, exactly as the WHATWG ``text/event-stream``
grammar specifies::

    id: 3
    event: program
    data: {"job":"job-000001","program":"P-0003","status":"automatic"}

:func:`format_event` renders one event; :func:`parse_events` is the
matching client-side parser used by the tests and the CI smoke client
(keeping both ends of the wire in one module means the schema cannot
drift between them).  Payloads are JSON with sorted keys and no
whitespace, so identical events serialize to identical bytes.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator


def format_event(event: str, data: Any, event_id: int | None = None) -> bytes:
    """One ``text/event-stream`` event as wire bytes."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {event}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    lines.append(f"data: {payload}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_events(
    lines: Iterable[bytes],
) -> Iterator[tuple[str, dict[str, Any]]]:
    """Parse an SSE byte stream into ``(event, data)`` pairs.

    ``lines`` is any iterable of byte lines (an ``http.client``
    response object works directly).  Comment lines (``:`` prefix,
    used as keep-alives) and ``id:`` fields are consumed but not
    yielded; multi-line ``data:`` fields are joined per the spec.
    """
    event: str | None = None
    data_lines: list[str] = []
    for raw in lines:
        line = raw.decode("utf-8").rstrip("\r\n")
        if not line:
            if event is not None or data_lines:
                payload = json.loads("\n".join(data_lines) or "null")
                yield (event or "message", payload)
            event, data_lines = None, []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value.removeprefix(" ")
        if field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)
        # id / retry fields: consumed, nothing to do client-side here


__all__ = ["format_event", "parse_events"]
