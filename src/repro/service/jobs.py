"""The conversion service's job engine: queue, spool, and executor.

A *job* is one batch conversion submitted over HTTP: schema DDL, a
restructuring spec, program sources, an optional loader program and
terminal inputs, plus a bag of conversion options -- exactly the
artifacts ``repro convert`` takes on the shell, normalized by
:func:`validate_submission`.  The :class:`JobManager` owns a bounded
queue of jobs, one executor thread draining it, and a *spool*
directory in which every job keeps its manifest (``job.json``), its
batch checkpoint (``checkpoint.json``, the same journal format the
CLI writes), and its report artifact (``report.json``) -- all written
through :func:`repro.jsonio.write_json_atomic`, so a crash at any
instant leaves parseable state.

Execution routes through the public facade
(:func:`repro.api.build_cascade` + :func:`repro.api.convert_batch`),
which is the byte-identity contract: a served job's checkpoint and
report are the same bytes a ``repro convert`` run of the same
artifacts produces.  Progress streams out as in-memory events (see
:meth:`Job.follow`): per-program events from the batch layer's
progress callback, span events from a
:class:`~repro.observe.stream.StreamingTracer`, and a final counter
delta of the ``supervision.*`` / ``cost.*`` registries.

Shutdown is cooperative: :meth:`JobManager.stop` sets a flag the
running job's progress callback checks after every settled program,
raising ``KeyboardInterrupt`` -- the batch layer's graceful-interrupt
path, which finishes in-flight parallel chunks and folds every shard
into the checkpoint before unwinding.  The interrupted job lands in
state ``interrupted`` with a resumable journal; resubmitting it (the
``{"resume": "<job-id>"}`` form of ``POST /jobs``) completes only the
unfinished programs and produces a final report byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import logging
import queue
import threading
from pathlib import Path
from typing import Any, Iterator

from repro import api
from repro.core.report import ConversionReport
from repro.errors import ReproError
from repro.jsonio import write_json_atomic
from repro.observe.registry import get_registry, registry_delta
from repro.observe.stream import (
    EVENT_COUNTER_PREFIXES,
    StreamingTracer,
    span_event,
)
from repro.options import ConversionOptions
from repro.parallel import ParallelExecutionError, WorkerPool
from repro.programs.interpreter import ProgramInputs
from repro.programs.parser import parse_program

log = logging.getLogger(__name__)

MANIFEST_VERSION = 1

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"
STATE_FAILED = "failed"
STATE_INTERRUPTED = "interrupted"

#: States a job never leaves on its own; only a resume resubmission
#: moves ``interrupted`` / ``failed`` back to ``queued``.
TERMINAL_STATES = (STATE_COMPLETED, STATE_FAILED, STATE_INTERRUPTED)

#: Option fields a submission's ``"options"`` object may set, with the
#: accepted JSON types.  Everything else about a conversion (journal
#: paths, resume, fault plans) is owned by the service.
SUBMISSION_OPTIONS: dict[str, tuple[type, ...]] = {
    "jobs": (int,),
    "chunk_size": (int,),
    "parallel_threshold": (int,),
    "strategy_order": (str,),
    "cost_model": (str,),
    "program_timeout": (int, float),
}


class SubmissionError(ReproError):
    """A job submission is malformed (HTTP 400) or not resumable in
    its current state (HTTP 409)."""


class QueueFullError(ReproError):
    """The bounded job queue is at capacity (HTTP 503)."""


def validate_submission(payload: Any) -> dict[str, Any]:
    """Normalize and validate one job submission.

    Artifacts are parsed *now*, so a submission with a DDL typo is
    refused at the front door (HTTP 400 with the parse error) instead
    of burning a queue slot to fail later.  Returns the normalized
    submission dict that is persisted in the job manifest.
    """
    if not isinstance(payload, dict):
        raise SubmissionError("submission must be a JSON object")
    for field in ("ddl", "spec"):
        if not isinstance(payload.get(field), str) or not payload[field]:
            message = f"submission field {field!r} must be non-empty DDL/spec text"
            raise SubmissionError(message)
    programs = payload.get("programs")
    valid_programs = isinstance(programs, list) and bool(programs)
    if valid_programs:
        valid_programs = all(isinstance(p, str) and p for p in programs)
    if not valid_programs:
        message = "submission field 'programs' must be a non-empty list of texts"
        raise SubmissionError(message)
    data = payload.get("data")
    if data is not None and not isinstance(data, str):
        raise SubmissionError("submission field 'data' must be loader program text")
    rules = payload.get("rules")
    if rules is not None and not isinstance(rules, str):
        raise SubmissionError(
            "submission field 'rules' must be rule-catalog text")
    inputs = payload.get("inputs", [])
    valid_inputs = isinstance(inputs, list)
    if valid_inputs:
        valid_inputs = all(isinstance(line, str) for line in inputs)
    if not valid_inputs:
        message = "submission field 'inputs' must be a list of terminal input lines"
        raise SubmissionError(message)
    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise SubmissionError("submission field 'options' must be an object")
    for key, value in options.items():
        accepted = SUBMISSION_OPTIONS.get(key)
        if accepted is None:
            message = f"unknown option {key!r}; accepted: {sorted(SUBMISSION_OPTIONS)}"
            raise SubmissionError(message)
        if not isinstance(value, accepted) or isinstance(value, bool):
            type_names = "/".join(t.__name__ for t in accepted)
            raise SubmissionError(f"option {key!r} must be of type {type_names}")
    if options.get("strategy_order") not in (None, "cost", "fixed"):
        raise SubmissionError("option 'strategy_order' must be 'cost' or 'fixed'")
    if options.get("cost_model") not in (None, "auto", "default"):
        raise SubmissionError("option 'cost_model' must be 'auto' or 'default'")

    try:
        api.load_schema(payload["ddl"])
        from repro.restructure.spec import parse_spec

        parse_spec(payload["spec"])
        names = [parse_program(text).name for text in programs]
        if data is not None:
            parse_program(data)
        if rules is not None:
            api.load_rule_catalog(rules)
    except ReproError as exc:
        raise SubmissionError(f"unparseable submission artifact: {exc}") from exc
    if len(set(names)) != len(names):
        raise SubmissionError(f"duplicate program names in batch: {names}")

    return {
        "ddl": payload["ddl"],
        "spec": payload["spec"],
        "programs": list(programs),
        "program_names": names,
        "data": data,
        "rules": rules,
        "inputs": list(inputs),
        "options": dict(options),
    }


class Job:
    """One submitted batch conversion and its event stream.

    State, progress counters, and the bounded-memory event buffer all
    live behind one condition variable; SSE followers block on it in
    :meth:`follow` and are woken by every :meth:`emit`.
    """

    def __init__(
        self,
        job_id: str,
        directory: Path,
        submission: dict[str, Any],
        state: str = STATE_QUEUED,
    ):
        self.id = job_id
        self.dir = Path(directory)
        self.submission = submission
        self.state = state
        self.error: str | None = None
        self.resume = False
        self.total = len(submission["programs"])
        self.done = 0
        self.counts: dict[str, int] = {}
        self.events: list[tuple[int, str, dict[str, Any]]] = []
        self.cond = threading.Condition()

    # -- spool paths ---------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.dir / "job.json"

    @property
    def checkpoint_path(self) -> Path:
        return self.dir / "checkpoint.json"

    @property
    def report_path(self) -> Path:
        return self.dir / "report.json"

    # -- state ---------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def set_state(self, state: str, error: str | None = None) -> None:
        """Transition and narrate: every state change is also a
        ``job`` event on the stream."""
        with self.cond:
            self.state = state
            self.error = error
        self.emit("job", self._job_event())

    def _job_event(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "done": self.done,
            "total": self.total,
        }
        if self.error:
            data["error"] = self.error
        if self.counts:
            data["counts"] = dict(self.counts)
        return data

    def emit(self, event: str, data: dict[str, Any]) -> int:
        with self.cond:
            seq = len(self.events)
            self.events.append((seq, event, data))
            self.cond.notify_all()
        return seq

    def record_program(
        self,
        report: ConversionReport,
        done: int,
        total: int,
        resumed: bool,
    ) -> None:
        """The batch layer's progress callback target: one ``program``
        event per settled program."""
        with self.cond:
            self.done = done
            self.total = total
        data: dict[str, Any] = {
            "job": self.id,
            "program": report.program_name,
            "status": report.status,
            "strategy": report.strategy,
            "done": done,
            "total": total,
        }
        if resumed:
            data["resumed"] = True
        if report.failure:
            data["failure"] = report.failure
        self.emit("program", data)

    def follow(
        self,
        start: int = 0,
        stop: threading.Event | None = None,
        poll: float = 0.25,
    ) -> Iterator[tuple[int, str, dict]]:
        """Yield events from ``start`` onward, blocking for live ones.

        Returns once the job is terminal and every buffered event has
        been yielded, or when ``stop`` is set (service shutdown) --
        the SSE handler turns either into end-of-stream.
        """
        next_index = max(0, start)
        while True:
            with self.cond:
                while next_index >= len(self.events):
                    if self.terminal:
                        return
                    if stop is not None and stop.is_set():
                        return
                    self.cond.wait(timeout=poll)
                batch = list(self.events[next_index:])
                next_index += len(batch)
            yield from batch

    # -- the public JSON view ------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self.cond:
            base = f"/jobs/{self.id}"
            return {
                "id": self.id,
                "state": self.state,
                "error": self.error,
                "done": self.done,
                "total": self.total,
                "counts": dict(self.counts),
                "links": {
                    "self": base,
                    "events": f"{base}/events",
                    "report": f"{base}/report",
                    "checkpoint": f"{base}/checkpoint",
                },
            }

    # -- persistence ---------------------------------------------------

    def persist(self) -> None:
        with self.cond:
            manifest = {
                "version": MANIFEST_VERSION,
                "id": self.id,
                "state": self.state,
                "error": self.error,
                "done": self.done,
                "total": self.total,
                "counts": dict(self.counts),
                "submission": self.submission,
            }
        write_json_atomic(manifest, self.manifest_path)

    @classmethod
    def restore(cls, manifest_path: Path) -> "Job":
        data = json.loads(manifest_path.read_text())
        if data.get("version") != MANIFEST_VERSION:
            found = data.get("version")
            message = (
                f"job manifest {manifest_path} has version {found!r}, "
                f"expected {MANIFEST_VERSION}"
            )
            raise SubmissionError(message)
        job = cls(
            data["id"],
            manifest_path.parent,
            data["submission"],
            state=data["state"],
        )
        job.error = data.get("error")
        job.done = data.get("done", 0)
        job.total = data.get("total", job.total)
        job.counts = dict(data.get("counts", {}))
        return job


def pool_key(submission: dict[str, Any]) -> str:
    """The warm-pool cache key: everything that shapes the pickled
    worker seed.  Two jobs share a pool only when their probe
    databases, operator, inputs, and conversion-relevant options are
    identical -- the condition under which a warm worker is
    byte-equivalent to a fresh one for the second job."""
    options = submission.get("options", {})
    relevant = {
        "ddl": submission["ddl"],
        "spec": submission["spec"],
        "data": submission.get("data"),
        "rules": submission.get("rules"),
        "inputs": submission.get("inputs", []),
        "jobs": options.get("jobs"),
        "strategy_order": options.get("strategy_order", "cost"),
        "cost_model": options.get("cost_model", "auto"),
        "program_timeout": options.get("program_timeout"),
    }
    blob = json.dumps(relevant, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class JobManager:
    """Bounded job queue, executor thread, spool persistence, and the
    warm-pool cache.

    ``queue_limit`` bounds *waiting* jobs (HTTP 503 when full) -- the
    backpressure that keeps a flood of submissions from exhausting the
    spool.  One executor thread drains the queue: conversions
    themselves parallelize across worker processes (a job's
    ``options.jobs``), and a single in-order executor keeps the
    process-wide metrics registry's per-job deltas meaningful.
    """

    def __init__(
        self,
        spool: "str | Path",
        queue_limit: int = 16,
        warm_pools: bool = True,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.queue: "queue.Queue[Job]" = queue.Queue(maxsize=queue_limit)
        self.jobs: dict[str, Job] = {}
        self.warm_pools = warm_pools
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._pool: tuple[str, WorkerPool] | None = None
        self._cascade: tuple[str, Any] | None = None
        self._counter = 0
        self._restore_spool()
        self._executor = threading.Thread(
            target=self._run_loop,
            name="repro-service-executor",
            daemon=True,
        )
        self._executor.start()

    # -- restore -------------------------------------------------------

    def _restore_spool(self) -> None:
        """Reload job manifests left by a previous server process.

        Jobs that were queued or running when that process died are
        marked ``interrupted`` -- their checkpoints (if any) are
        resumable.  Terminal jobs get their event buffers rebuilt from
        the report artifact so an SSE replay still narrates every
        program."""
        for manifest in sorted(self.spool.glob("job-*/job.json")):
            try:
                job = Job.restore(manifest)
            except (OSError, ValueError, KeyError, ReproError) as exc:
                log.warning(
                    "service: skipping unreadable manifest %s: %s",
                    manifest,
                    exc,
                )
                continue
            if job.state in (STATE_QUEUED, STATE_RUNNING):
                phase = "queued" if job.done == 0 else "running"
                job.state = STATE_INTERRUPTED
                job.error = (
                    f"server stopped while the job was {phase}; resubmit "
                    f'with {{"resume": "{job.id}"}}'
                )
                job.persist()
            self._replay_from_report(job)
            self.jobs[job.id] = job
            suffix = job.id.rpartition("-")[2]
            if suffix.isdigit():
                self._counter = max(self._counter, int(suffix))

    def _replay_from_report(self, job: Job) -> None:
        if not job.report_path.exists():
            job.events.append((0, "job", job._job_event()))
            return
        try:
            summary = json.loads(job.report_path.read_text())
        except (OSError, ValueError):
            return
        reports = summary.get("reports", ())
        for index, entry in enumerate(reports, start=1):
            report = ConversionReport.from_summary(entry)
            job.record_program(report, index, job.total, resumed=False)
        job.events.append((len(job.events), "job", job._job_event()))

    # -- submission ----------------------------------------------------

    def _next_id(self) -> str:
        self._counter += 1
        return f"job-{self._counter:06d}"

    def _queue_full_error(self) -> QueueFullError:
        limit = self.queue.maxsize
        return QueueFullError(
            f"job queue is full ({limit} waiting); retry after a job finishes"
        )

    def submit(self, payload: Any) -> Job:
        """Validate, spool, and enqueue a new job (or raise
        :class:`SubmissionError` / :class:`QueueFullError`)."""
        submission = validate_submission(payload)
        with self._lock:
            job_id = self._next_id()
            job = Job(job_id, self.spool / job_id, submission)
            self.jobs[job_id] = job
        job.dir.mkdir(parents=True, exist_ok=True)
        # Persist and emit *before* enqueueing: once the executor can
        # see the job it may persist concurrently, and two writers
        # racing one manifest path is exactly what atomic writes of a
        # shared temp name cannot survive.
        job.persist()
        job.emit("job", job._job_event())
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self.jobs[job_id]
            try:
                job.manifest_path.unlink()
                job.dir.rmdir()
            except OSError:
                pass  # best-effort spool cleanup on refusal
            raise self._queue_full_error() from None
        return job

    def resume_job(self, job_id: str) -> Job:
        """Re-enqueue an interrupted (or failed) job with
        ``resume=True``: programs already journaled in its checkpoint
        are recovered, the rest convert, and the final report is
        byte-identical to an uninterrupted run."""
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        with job.cond:
            if job.state not in (STATE_INTERRUPTED, STATE_FAILED):
                message = (
                    f"job {job_id} is {job.state}; only interrupted or "
                    "failed jobs can be resumed"
                )
                raise SubmissionError(message)
            job.state = STATE_QUEUED
            job.error = None
            job.resume = True
            job.done = 0
            job.counts = {}
            job.events = []
        job.persist()
        job.emit("job", job._job_event())
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            with job.cond:
                job.state = STATE_INTERRUPTED
            job.persist()
            raise self._queue_full_error() from None
        return job

    def list_jobs(self) -> list[dict[str, Any]]:
        with self._lock:
            ordered = sorted(self.jobs)
        return [self.jobs[job_id].snapshot() for job_id in ordered]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": sum(states.values()),
            "states": states,
            "queue_depth": self.queue.qsize(),
            "queue_limit": self.queue.maxsize,
        }

    # -- execution -----------------------------------------------------

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self.queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if self._stop.is_set():
                self._park(job)
                break
            try:
                self._execute(job)
            except Exception:  # pragma: no cover - defensive
                log.exception("service: executor crashed on %s", job.id)
                job.set_state(STATE_FAILED, error="internal executor fault")
                job.persist()

    def _park(self, job: Job) -> None:
        error = (
            "service stopped before the job started; resubmit with "
            f'{{"resume": "{job.id}"}}'
        )
        job.set_state(STATE_INTERRUPTED, error=error)
        job.persist()

    def _options_for(self, job: Job) -> ConversionOptions:
        submitted = job.submission.get("options", {})
        terminal = list(job.submission.get("inputs", []))
        rules = job.submission.get("rules")
        return ConversionOptions(
            rule_catalog=None if rules is None
            else api.load_rule_catalog(rules),
            checkpoint=str(job.checkpoint_path),
            resume=job.resume,
            report_json=str(job.report_path),
            inputs=ProgramInputs(terminal=terminal),
            jobs=submitted.get("jobs", 1),
            chunk_size=submitted.get("chunk_size"),
            parallel_threshold=submitted.get("parallel_threshold"),
            strategy_order=submitted.get("strategy_order", "cost"),
            cost_model=submitted.get("cost_model", "auto"),
            program_timeout=submitted.get("program_timeout"),
        )

    def _pool_for(
        self,
        job: Job,
        cascade: Any,
        options: ConversionOptions,
        pending: int,
    ) -> WorkerPool | None:
        """The shared warm pool, when this job can use one.

        Cache of one: the common served pattern is a stream of jobs
        over the same application system, and those all hit the same
        key.  A job with a different seed closes the cached pool and
        warms its own."""
        if not self.warm_pools:
            return None
        jobs = options.resolved_jobs()
        if jobs <= 1 or pending < options.resolved_parallel_threshold(jobs):
            return None
        key = pool_key(job.submission)
        with self._lock:
            if self._pool is not None:
                cached_key, cached = self._pool
                if cached_key == key and not cached.closed:
                    return cached
                cached.close()
                self._pool = None
        pool = WorkerPool(cascade, options, jobs=jobs)
        with self._lock:
            self._pool = (key, pool)
        return pool

    def _cascade_for(self, job: Job, options: ConversionOptions) -> Any:
        """The shared cascade, cache-of-one keyed like the warm pool.

        Building a cascade replays the DDL parse, the loader program,
        and the restructuring -- the dominant per-job cost for a
        stream of jobs over one application system.  Probes roll every
        mutation back inside savepoints, so a reused cascade's probe
        databases are byte-identical to freshly built ones; only
        batch-level calibration counters accumulate, and those never
        reach report or checkpoint bytes."""
        submission = job.submission
        if not self.warm_pools:
            return api.build_cascade(
                submission["ddl"],
                submission["spec"],
                data=submission.get("data"),
                options=options,
            )
        key = pool_key(submission)
        with self._lock:
            if self._cascade is not None and self._cascade[0] == key:
                return self._cascade[1]
        cascade = api.build_cascade(
            submission["ddl"],
            submission["spec"],
            data=submission.get("data"),
            options=options,
        )
        with self._lock:
            self._cascade = (key, cascade)
        return cascade

    def _execute(self, job: Job) -> None:
        job.set_state(STATE_RUNNING)
        job.persist()
        submission = job.submission
        registry = get_registry()
        before = registry.snapshot()
        try:
            options = self._options_for(job)
            cascade = self._cascade_for(job, options)
            programs = [parse_program(text) for text in submission["programs"]]
            pool = self._pool_for(job, cascade, options, len(programs))

            def progress(
                report: ConversionReport,
                done: int,
                total: int,
                resumed: bool,
            ) -> None:
                job.record_program(report, done, total, resumed)
                _after_program(job, report)
                if self._stop.is_set():
                    # Cooperative stop: the journal already holds this
                    # program, so raising here is the batch layer's
                    # graceful-interrupt path (parallel batches drain
                    # in-flight chunks and merge shards on the way out).
                    raise KeyboardInterrupt("service shutdown")

            tracer = StreamingTracer(
                lambda span: job.emit("span", span_event(span)),
                prefixes=("batch.",),
            )
            with tracer:
                batch = api.convert_batch(
                    cascade,
                    programs,
                    options,
                    pool=pool,
                    progress=progress,
                )
        except KeyboardInterrupt:
            error = (
                "interrupted by service shutdown; checkpoint is resumable "
                f'-- resubmit with {{"resume": "{job.id}"}}'
            )
            job.set_state(STATE_INTERRUPTED, error=error)
        except ParallelExecutionError as exc:
            job.set_state(STATE_FAILED, error=str(exc))
        except ReproError as exc:
            job.set_state(STATE_FAILED, error=str(exc))
        except Exception as exc:
            job.set_state(STATE_FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            delta = registry_delta(before, registry.snapshot())
            counters = {
                name: value
                for name, value in delta.items()
                if name.startswith(EVENT_COUNTER_PREFIXES) and value
            }
            with job.cond:
                job.counts = batch.counts()
            if counters:
                job.emit("counters", {"job": job.id, "counters": counters})
            job.set_state(STATE_COMPLETED)
        finally:
            job.persist()

    # -- shutdown ------------------------------------------------------

    @property
    def stopping(self) -> threading.Event:
        return self._stop

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain: the running job is interrupted at its next
        program boundary (resumable checkpoint on disk), queued jobs
        are parked as ``interrupted``, the warm pool is closed, and
        every SSE follower is woken to end its stream."""
        self._stop.set()
        self._executor.join(timeout=timeout)
        while True:
            try:
                job = self.queue.get_nowait()
            except queue.Empty:
                break
            self._park(job)
        with self._lock:
            if self._pool is not None:
                self._pool[1].close()
                self._pool = None
            self._cascade = None
        for job in list(self.jobs.values()):
            with job.cond:
                job.cond.notify_all()


def _after_program(job: Job, report: ConversionReport) -> None:
    """Test seam: called after every settled program's event is
    emitted, before the cooperative-stop check.  The shutdown tests
    install a gate here to park a job mid-batch deterministically."""


__all__ = [
    "Job",
    "JobManager",
    "QueueFullError",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "STATE_INTERRUPTED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "SubmissionError",
    "TERMINAL_STATES",
    "pool_key",
    "validate_submission",
]
