"""Conversion as a service: the async job server over the facade.

The paper frames conversion as a sustained organizational effort --
hundreds of application programs flowing through one conversion
pipeline while the shop keeps operating.  This package is that shape
as software: a zero-dependency HTTP server (``repro serve``) that
accepts batch-conversion jobs, executes them through
:mod:`repro.api` on a bounded queue with a shared warm worker pool,
streams per-program progress as server-sent events, and serves the
resulting report and checkpoint artifacts byte-identical to what a
``repro convert`` shell run of the same inputs writes.

Layout:

* :mod:`repro.service.jobs` -- submission validation, the spooled
  :class:`~repro.service.jobs.Job`, and the
  :class:`~repro.service.jobs.JobManager` (queue, executor thread,
  warm-pool cache, graceful drain);
* :mod:`repro.service.server` -- the HTTP handler,
  :class:`~repro.service.server.ConversionService` for embedding, and
  the blocking :func:`~repro.service.server.serve` entry point;
* :mod:`repro.service.sse` -- both ends of the ``text/event-stream``
  wire format.
"""

from repro.service.jobs import (
    Job,
    JobManager,
    QueueFullError,
    SubmissionError,
    validate_submission,
)
from repro.service.server import ConversionService, serve
from repro.service.sse import format_event, parse_events

__all__ = [
    "ConversionService",
    "Job",
    "JobManager",
    "QueueFullError",
    "SubmissionError",
    "format_event",
    "parse_events",
    "serve",
    "validate_submission",
]
