"""The public facade: the whole pipeline behind four functions.

Before this module, driving a conversion programmatically meant
knowing which subsystem owned which kwarg: the supervisor took
``target_model=``, the cascade took ``inputs=``, the batch runner took
``checkpoint=``/``resume=``, and parallelism did not exist.  The
facade collapses all of it to four entry points sharing one
:class:`~repro.options.ConversionOptions` value:

* :func:`load_schema` -- DDL text, a path, or a parsed
  :class:`~repro.schema.model.Schema`, normalized to a ``Schema``;
* :func:`load_rule_catalog` / :func:`default_catalog` -- the
  rules-as-data surface: conversion-rule catalogs as values that plug
  into ``ConversionOptions.rule_catalog``;
* :func:`convert` -- one program through the Figure 4.1 pipeline;
* :func:`convert_batch` -- a fault-isolated, checkpointed batch
  through the fallback cascade, serial or multi-process
  (``options.jobs``);
* :func:`run_bench` -- the perf suites behind ``repro bench``.

The CLI routes through these functions, so the shell and the API
cannot drift; the pre-facade signatures remain as thin shims that emit
one :class:`DeprecationWarning` each.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro._deprecation import reset_deprecation_warnings
from repro.batch import ProgressCallback
from repro.core.report import BatchReport, ConversionReport
from repro.core.supervisor import ConversionSupervisor
from repro.options import ConversionOptions
from repro.parallel import ParallelExecutor, WorkerPool
from repro.programs.ast import Program
from repro.programs.parser import parse_program
from repro.restructure.operators import RestructuringOperator
from repro.restructure.spec import parse_spec
from repro.schema.ddl import parse_ddl
from repro.schema.model import Schema
from repro.strategies.cascade import FallbackCascade

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.model import RuleCatalog


def _source_text(source: "str | Path") -> str:
    """File contents when ``source`` names an existing file, else the
    string itself (inline artifact text)."""
    if isinstance(source, Path):
        return source.read_text()
    try:
        candidate = Path(source)
        if candidate.is_file():
            return candidate.read_text()
    except (OSError, ValueError):
        pass  # not a representable path: inline text
    return source


def load_schema(source: "str | Path | Schema") -> Schema:
    """Normalize a schema argument to a parsed :class:`Schema`.

    Accepts a parsed schema (returned unchanged), a path to a Figure
    4.3 DDL file, or DDL text itself.
    """
    if isinstance(source, Schema):
        return source
    return parse_ddl(_source_text(source))


def load_rule_catalog(source: "str | Path | RuleCatalog") -> "RuleCatalog":
    """Normalize a rule-catalog argument to a validated
    :class:`~repro.catalog.model.RuleCatalog`.

    Accepts a parsed catalog (returned unchanged), a path to a catalog
    file, or catalog text itself.  Every entry is validated here, at
    load time; a malformed document raises
    :class:`~repro.errors.CatalogError` with its file and line
    position.  Plug the result into
    ``ConversionOptions(rule_catalog=...)``.
    """
    from repro.catalog import load_catalog_text
    from repro.catalog.model import RuleCatalog

    if isinstance(source, RuleCatalog):
        return source
    if isinstance(source, Path):
        return load_catalog_text(source.read_text(), path=str(source))
    try:
        candidate = Path(source)
        if candidate.is_file():
            return load_catalog_text(candidate.read_text(),
                                     path=str(candidate))
    except (OSError, ValueError):
        pass  # not a representable path: inline text
    return load_catalog_text(source)


def default_catalog() -> "RuleCatalog":
    """The shipped builtin rule catalog (what ``rule_catalog=None``
    resolves to): every hardcoded transformation rule, as data."""
    from repro.catalog import default_catalog as _default

    return _default()


def _load_operator(
    source: "str | Path | RestructuringOperator",
) -> RestructuringOperator:
    if isinstance(source, RestructuringOperator):
        return source
    return parse_spec(_source_text(source))


def _load_program(source: "str | Path | Program") -> Program:
    if isinstance(source, Program):
        return source
    return parse_program(_source_text(source))


def convert(
    schema: "str | Path | Schema",
    operator: "str | Path | RestructuringOperator",
    program: "str | Path | Program",
    options: ConversionOptions | None = None,
) -> ConversionReport:
    """Convert one program for a restructuring (the Figure 4.1
    pipeline).

    Each artifact may be passed parsed, as a path, or as source text.
    The report carries the generated program (``report.target_program``,
    ``None`` when conversion failed or needs the Analyst) and the
    unified counter movement (``report.metrics``).
    """
    options = options if options is not None else ConversionOptions()
    supervisor = ConversionSupervisor.from_options(
        load_schema(schema), _load_operator(operator), options=options
    )
    return supervisor.convert_program(_load_program(program), options=options)


def build_cascade(
    schema: "str | Path | Schema",
    operator: "str | Path | RestructuringOperator",
    data: "str | Path | Program | None" = None,
    options: ConversionOptions | None = None,
) -> FallbackCascade:
    """Build the probe databases and fallback cascade for a batch.

    ``data`` is an optional loader program (STOREs) that populates the
    source database before the restructuring is applied; the cascade's
    strategy order and cost model come from ``options``.  This is the
    exact construction ``repro convert`` (batch mode) and the
    conversion service share, so a served job and a shell run of the
    same artifacts validate against byte-identical probe databases.
    """
    options = options if options is not None else ConversionOptions()
    from repro.network.database import NetworkDatabase
    from repro.programs.interpreter import run_program
    from repro.restructure import restructure_database

    parsed_schema = load_schema(schema)
    parsed_operator = _load_operator(operator)
    source_db = NetworkDatabase(parsed_schema)
    if data is not None:
        run_program(_load_program(data), source_db, consistent=False)
    _target_schema, target_db = restructure_database(source_db, parsed_operator)
    return FallbackCascade(
        source_db,
        target_db,
        parsed_operator,
        strategy_order=options.strategy_order,
        cost_model=options.cost_model,
        rule_catalog=options.rule_catalog,
    )


def convert_batch(
    cascade: FallbackCascade,
    programs: list[Program],
    options: ConversionOptions | None = None,
    pool: WorkerPool | None = None,
    progress: "ProgressCallback | None" = None,
) -> BatchReport:
    """Convert a batch through the fallback cascade.

    Fault-isolated (per-program savepoints), checkpointed
    (``options.checkpoint`` / ``options.resume``), and parallel when
    ``options.jobs`` asks for more than one worker -- with the
    guarantee that reports and checkpoint are byte-identical to a
    serial run.  Batches below ``options.parallel_threshold`` pending
    programs auto-degrade to the in-process path.

    Stage attempts are cost-ordered by default
    (``options.strategy_order="cost"``): the cascade predicts each
    program's access profile and skips the rewrite attempt only when
    static analysis is guaranteed to refuse it.  Every report carries
    ``report.cost`` with the predicted and measured plan costs;
    ``options.strategy_order="fixed"`` restores the unconditional
    rewrite-first order.

    Pass ``pool=`` (a :class:`~repro.parallel.WorkerPool` built once
    from the same cascade) to convert many batches on the same warm
    worker processes; the caller owns the pool's lifecycle.

    ``progress`` is called once per settled program --
    ``progress(report, done, total, resumed)``, see
    :data:`repro.batch.ProgressCallback` -- and is how the conversion
    service streams per-program server-sent events.  With
    ``options.report_json`` the final batch summary is also written
    atomically to that path (the service's report artifact).
    """
    batch = ParallelExecutor(
        cascade, programs, options, pool=pool, progress=progress
    ).run()
    options = options if options is not None else ConversionOptions()
    if options.report_json is not None:
        from repro.jsonio import write_json_atomic

        write_json_atomic(batch.to_summary(), options.report_json)
    return batch


def run_bench(
    suite: str = "translate",
    options: ConversionOptions | None = None,
    *,
    seed: int = 1979,
    smoke: bool = False,
    sizes: tuple[int, ...] = (1000,),
    compare_linear: bool = True,
    out: "str | Path | None" = None,
) -> dict[str, Any]:
    """Run one perf suite and return its report dict.

    ``suite`` is ``"translate"`` (the data-translation pipeline,
    canonical report ``BENCH_translate.json``) or ``"programs"``
    (strategy overhead, indexed execution, and the parallel batch
    scaling curve, canonical report ``BENCH_programs.json``).
    ``smoke`` shrinks every dimension to CI-smoke scale.  With ``out``
    the report is also written atomically to that path.
    """
    del options  # reserved: bench knobs may fold into options later
    if suite == "programs":
        from repro.perf import programs as perf_programs

        if smoke:
            report = perf_programs.run_programs_benchmark(
                seed=seed,
                scales=perf_programs.SMOKE_SCALES,
                corpus_size=perf_programs.SMOKE_PROGRAMS,
                relational_rows=perf_programs.SMOKE_RELATIONAL_ROWS,
                relational_statements=perf_programs.SMOKE_RELATIONAL_STATEMENTS,
                jobs_curve=perf_programs.SMOKE_JOBS_CURVE,
                parallel_tiers=perf_programs.SMOKE_INVENTORY_TIERS,
            )
        else:
            report = perf_programs.run_programs_benchmark(seed=seed)
        if out is not None:
            perf_programs.write_programs_report(report, out)
        return report
    if suite == "translate":
        from repro.perf.harness import run_benchmark, write_report

        run_sizes = [min(sizes)] if smoke else list(sizes)
        report = run_benchmark(run_sizes, seed=seed, compare_linear=compare_linear)
        if out is not None:
            write_report(report, out)
        return report
    raise ValueError(f"unknown bench suite {suite!r}")


__all__ = [
    "ConversionOptions",
    "ProgressCallback",
    "WorkerPool",
    "build_cascade",
    "convert",
    "convert_batch",
    "default_catalog",
    "load_rule_catalog",
    "load_schema",
    "reset_deprecation_warnings",
    "run_bench",
]
