"""Strategy fallback cascade.

Section 2 of the paper surveys three ways to keep a source program
working after restructuring -- rewrite (Section 2.2), DML emulation and
bridge programs (Section 2.1.2) -- and argues for rewrite while keeping
the runtime strategies in reserve.  The cascade operationalizes that
argument: try rewrite first, validate the candidate by *differential
execution* (source program on the source database vs candidate on the
target database, Section 1.1's I/O-equivalence rule), and fall back to
emulation, then bridge, whenever a stage raises or its trace diverges.

Every probe runs inside an engine savepoint and is rolled back, so
validation leaves both databases byte-identical to their pre-call
state no matter which stages fault.

Stage outcomes land in :class:`~repro.core.report.ConversionReport`:

* ``validated`` -- trace identical to the source run;
* ``validated-reordered`` -- same multiset of I/O events in a
  different order (scan-order divergence under interposition; accepted
  with a warning, the Section 5.2 "levels of success" middle band);
* ``unconverted`` / ``error`` / ``divergent`` -- escalate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._deprecation import warn_deprecated
from repro.core.analyzer_db import ChangeCatalog, ConversionAnalyzer
from repro.core.report import (
    ConversionReport,
    FaultContext,
    STATUS_AUTOMATIC,
    STATUS_FAILED,
    STATUS_FELL_BACK,
    STATUS_WARNINGS,
    StageOutcome,
)
from repro.core.supervisor import Analyst
from repro.errors import PipelineFault
from repro.network.database import NetworkDatabase
from repro.observe.registry import get_registry, registry_delta
from repro.options import ConversionOptions
from repro.observe.tracing import span
from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs, run_program
from repro.programs.iotrace import IOTrace
from repro.restructure.operators import RestructuringOperator
from repro.strategies.base import ConversionStrategy, StrategyRun
from repro.strategies.bridge import BridgeStrategy
from repro.strategies.emulation import EmulationStrategy
from repro.strategies.rewrite import RewriteStrategy

#: Default attempt order: the paper's preferred strategy first.
DEFAULT_ORDER = ("rewrite", "emulation", "bridge")


@dataclass
class CascadeOutcome:
    """What the cascade decided for one program."""

    report: ConversionReport
    #: A strategy instance ready to serve the program (fresh state),
    #: or None when every stage failed.
    strategy: ConversionStrategy | None
    #: The winning probe run (trace + metrics delta), when any.
    run: StrategyRun | None

    @property
    def status(self) -> str:
        return self.report.status


def traces_reordered(reference: IOTrace, candidate: IOTrace) -> bool:
    """True when the two traces carry the same multiset of events in a
    different order (scan-order divergence, not behaviour loss)."""
    mine = sorted(event.render() for event in reference.events)
    theirs = sorted(event.render() for event in candidate.events)
    return mine == theirs


class FallbackCascade:
    """Tries rewrite -> emulation -> bridge per program, validating
    each candidate differentially inside engine savepoints."""

    def __init__(self, source_db: NetworkDatabase,
                 target_db: NetworkDatabase,
                 operator: RestructuringOperator,
                 analyst: Analyst | None = None,
                 catalog: ChangeCatalog | None = None,
                 order: tuple[str, ...] = DEFAULT_ORDER):
        unknown = set(order) - set(DEFAULT_ORDER)
        if unknown:
            raise ValueError(f"unknown cascade stages: {sorted(unknown)}")
        self.source_db = source_db
        self.target_db = target_db
        self.operator = operator
        self.analyst = analyst
        self.catalog = catalog if catalog is not None else \
            ConversionAnalyzer().analyze_operator(source_db.schema, operator)
        self.order = tuple(order)

    # -- strategy construction ---------------------------------------

    def make_strategy(self, name: str) -> ConversionStrategy:
        """A fresh strategy instance (probe state never leaks into the
        instance handed back to the caller)."""
        if name == "rewrite":
            return RewriteStrategy(self.target_db, self.source_db.schema,
                                   self.operator, analyst=self.analyst)
        if name == "emulation":
            return EmulationStrategy(self.target_db, self.catalog)
        if name == "bridge":
            return BridgeStrategy(self.target_db, self.operator,
                                  self.catalog)
        raise ValueError(f"unknown strategy {name!r}")

    # -- probes --------------------------------------------------------

    def reference_trace(self, program: Program,
                        inputs: ProgramInputs | None = None) -> IOTrace:
        """The source program's behaviour on the source database,
        probed inside a savepoint and rolled back."""
        inputs = inputs or ProgramInputs()
        savepoint = self.source_db.savepoint()
        try:
            with span("cascade.reference-run", program=program.name):
                return run_program(program, self.source_db, inputs.copy(),
                                   consistent=False)
        except Exception as exc:
            raise PipelineFault(
                f"source program would not run: {exc}",
                program=program.name, phase="reference-run",
            ) from exc
        finally:
            self.source_db.rollback(savepoint)

    def _probe(self, strategy: ConversionStrategy, program: Program,
               inputs: ProgramInputs) -> StrategyRun:
        """One candidate run against the target, rolled back after."""
        savepoint = self.target_db.savepoint()
        try:
            return strategy.run(program, inputs.copy())
        finally:
            self.target_db.rollback(savepoint)

    # -- the cascade ---------------------------------------------------

    def convert(self, program: Program,
                inputs: ProgramInputs | None = None, *,
                options: ConversionOptions | None = None
                ) -> CascadeOutcome:
        """Run the cascade under a ``cascade.convert`` span; the report
        comes back with the unified counter movement attached.

        ``inputs=`` is a deprecated shim; pass
        ``options=ConversionOptions(inputs=...)``.
        """
        if inputs is not None:
            warn_deprecated(
                "FallbackCascade.convert:inputs",
                "FallbackCascade.convert(program, inputs=...) is "
                "deprecated; pass options=ConversionOptions(inputs=...) "
                "instead",
            )
        elif options is not None:
            inputs = options.inputs
        registry = get_registry()
        before = registry.snapshot()
        # The span shares this wrapper's snapshots instead of taking
        # its own pair (capture_metrics=False, then stamped below).
        with span("cascade.convert", capture_metrics=False,
                  program=program.name) as convert_span:
            outcome = self._convert(program, inputs)
        after = registry.snapshot()
        outcome.report.metrics = registry_delta(before, after)
        if convert_span:
            convert_span.metrics = {k: v for k, v in after.items() if v}
            convert_span.metrics_delta = dict(outcome.report.metrics)
        return outcome

    def _convert(self, program: Program,
                 inputs: ProgramInputs | None = None) -> CascadeOutcome:
        inputs = inputs or ProgramInputs()
        reference = self.reference_trace(program, inputs)

        stages: list[StageOutcome] = []
        rewrite_report: ConversionReport | None = None
        last_error: Exception | None = None
        last_detail = "no cascade stages attempted"

        for name in self.order:
            with span(f"cascade.{name}", program=program.name) as stage_span:
                strategy = self.make_strategy(name)

                if name == "rewrite":
                    rewrite_report = strategy.conversion_report(program)
                    if rewrite_report.target_program is None:
                        last_detail = rewrite_report.failure or "unconverted"
                        stages.append(StageOutcome(name, "unconverted",
                                                   last_detail))
                        stage_span.set_attr("outcome", "unconverted")
                        continue

                try:
                    run = self._probe(strategy, program, inputs)
                except Exception as exc:
                    last_error = exc
                    last_detail = f"{type(exc).__name__}: {exc}"
                    stages.append(StageOutcome(name, "error", last_detail))
                    stage_span.set_attr("outcome", "error")
                    continue

                divergence = reference.diff(run.trace)
                if divergence is None:
                    stages.append(StageOutcome(name, "validated"))
                    stage_span.set_attr("outcome", "validated")
                    return self._won(program, name, stages, rewrite_report,
                                     run, reordered=False)
                if traces_reordered(reference, run.trace):
                    stages.append(StageOutcome(
                        name, "validated-reordered",
                        "same events, different order"))
                    stage_span.set_attr("outcome", "validated-reordered")
                    return self._won(program, name, stages, rewrite_report,
                                     run, reordered=True)
                last_detail = divergence
                stages.append(StageOutcome(name, "divergent", divergence))
                stage_span.set_attr("outcome", "divergent")

        return self._lost(program, stages, rewrite_report, last_error,
                          last_detail)

    def convert_system(self, programs: list[Program],
                       inputs: ProgramInputs | None = None, *,
                       options: ConversionOptions | None = None
                       ) -> list[CascadeOutcome]:
        if inputs is not None:
            warn_deprecated(
                "FallbackCascade.convert_system:inputs",
                "FallbackCascade.convert_system(programs, inputs=...) is "
                "deprecated; pass options=ConversionOptions(inputs=...) "
                "instead",
            )
            options = (options or ConversionOptions()).replace(
                inputs=inputs)
        return [self.convert(program, options=options)
                for program in programs]

    # -- report assembly ----------------------------------------------

    def _won(self, program: Program, name: str,
             stages: list[StageOutcome],
             rewrite_report: ConversionReport | None,
             run: StrategyRun, reordered: bool) -> CascadeOutcome:
        if name == "rewrite":
            # The conversion report already carries the right band
            # (automatic / warnings / assisted).
            report = rewrite_report
        else:
            report = ConversionReport(program.name, STATUS_FELL_BACK)
            if rewrite_report is not None:
                report.questions.extend(rewrite_report.questions)
                if rewrite_report.failure:
                    report.notes.append(
                        f"rewrite failed: {rewrite_report.failure}"
                    )
        if reordered:
            report.warnings.append(
                f"{name}: trace order diverges from the source run "
                "(same event multiset; scan-order difference)"
            )
            if report.status == STATUS_AUTOMATIC:
                report.status = STATUS_WARNINGS
        report.strategy = name
        report.stages = list(stages)
        # Hand back a strategy whose state the probe did not touch.
        return CascadeOutcome(report, self.make_strategy(name), run)

    def _lost(self, program: Program, stages: list[StageOutcome],
              rewrite_report: ConversionReport | None,
              last_error: Exception | None,
              last_detail: str) -> CascadeOutcome:
        report = rewrite_report if rewrite_report is not None else \
            ConversionReport(program.name, STATUS_FAILED)
        report.status = STATUS_FAILED
        report.failure = last_detail
        report.strategy = None
        report.stages = list(stages)
        if last_error is not None:
            report.fault = FaultContext.from_exception(
                last_error, program=program.name, phase="cascade",
            )
        else:
            report.fault = FaultContext(
                error_type="TraceDivergence", message=last_detail,
                program=program.name, phase="cascade",
            )
        return CascadeOutcome(report, None, None)
