"""Strategy fallback cascade.

Section 2 of the paper surveys three ways to keep a source program
working after restructuring -- rewrite (Section 2.2), DML emulation and
bridge programs (Section 2.1.2) -- and argues for rewrite while keeping
the runtime strategies in reserve.  The cascade operationalizes that
argument: try rewrite first, validate the candidate by *differential
execution* (source program on the source database vs candidate on the
target database, Section 1.1's I/O-equivalence rule), and fall back to
emulation, then bridge, whenever a stage raises or its trace diverges.

Every probe runs inside an engine savepoint and is rolled back, so
validation leaves both databases byte-identical to their pre-call
state no matter which stages fault.

With ``strategy_order="cost"`` (the default) the cascade consults the
:mod:`repro.cost` predictor before paying for a rewrite attempt.  The
prediction is *sound pruning only*: the rewrite stage is skipped
exactly when the static profile proves the program analyzer would
refuse it (Section 3.2 verb variability; the analyzer's refusal text
is synthesized byte-for-byte, and the Conversion Analyst is asked the
same ``pin-verb`` question at the same point, so scripted analysts see
an identical transcript).  Validation of whichever strategy does run
is never skipped, and ``strategy_order="fixed"`` restores the
unconditional rewrite-first probe.  Every report carries
``report.cost = {predicted, measured, chosen_order}``.

Stage outcomes land in :class:`~repro.core.report.ConversionReport`:

* ``validated`` -- trace identical to the source run;
* ``validated-reordered`` -- same multiset of I/O events in a
  different order (scan-order divergence under interposition; accepted
  with a warning, the Section 5.2 "levels of success" middle band);
* ``unconverted`` / ``error`` / ``divergent`` -- escalate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._deprecation import warn_deprecated
from repro.core.analyzer_db import ChangeCatalog, ConversionAnalyzer
from repro.core.analyzer_program import blocking_failure
from repro.core.optimizer import CostModel
from repro.core.report import (
    ConversionReport,
    FaultContext,
    STATUS_AUTOMATIC,
    STATUS_FAILED,
    STATUS_FELL_BACK,
    STATUS_WARNINGS,
    StageOutcome,
)
from repro.core.supervisor import Analyst, pin_verb_question
from repro.cost import CostCalibrator, CostPredictor, Prediction
from repro.errors import AnalysisError, PipelineFault
from repro.network.database import NetworkDatabase
from repro.observe.registry import NamedCounters, get_registry, registry_delta
from repro.options import ConversionOptions
from repro.observe.tracing import span
from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs, run_program
from repro.programs.iotrace import IOTrace
from repro.restructure.operators import RestructuringOperator
from repro.strategies.base import ConversionStrategy, StrategyRun
from repro.strategies.bridge import BridgeStrategy
from repro.strategies.emulation import EmulationStrategy
from repro.strategies.rewrite import RewriteStrategy

#: Default attempt order: the paper's preferred strategy first.
DEFAULT_ORDER = ("rewrite", "emulation", "bridge")

STRATEGY_ORDERS = ("cost", "fixed")
COST_MODEL_MODES = ("auto", "default")


@dataclass
class CascadeOutcome:
    """What the cascade decided for one program."""

    report: ConversionReport
    #: A strategy instance ready to serve the program (fresh state),
    #: or None when every stage failed.
    strategy: ConversionStrategy | None
    #: The winning probe run (trace + metrics delta), when any.
    run: StrategyRun | None

    @property
    def status(self) -> str:
        return self.report.status


def traces_reordered(reference: IOTrace, candidate: IOTrace) -> bool:
    """True when the two traces carry the same multiset of events in a
    different order (scan-order divergence, not behaviour loss)."""
    mine = sorted(event.render() for event in reference.events)
    theirs = sorted(event.render() for event in candidate.events)
    return mine == theirs


class FallbackCascade:
    """Tries rewrite -> emulation -> bridge per program, validating
    each candidate differentially inside engine savepoints."""

    def __init__(self, source_db: NetworkDatabase,
                 target_db: NetworkDatabase,
                 operator: RestructuringOperator,
                 analyst: Analyst | None = None,
                 catalog: ChangeCatalog | None = None,
                 order: tuple[str, ...] = DEFAULT_ORDER,
                 strategy_order: str = "cost",
                 cost_model: str = "auto",
                 rule_catalog=None):
        unknown = set(order) - set(DEFAULT_ORDER)
        if unknown:
            raise ValueError(f"unknown cascade stages: {sorted(unknown)}")
        if strategy_order not in STRATEGY_ORDERS:
            raise ValueError(
                f"strategy_order must be one of {STRATEGY_ORDERS}, "
                f"got {strategy_order!r}"
            )
        if cost_model not in COST_MODEL_MODES:
            raise ValueError(
                f"cost_model must be one of {COST_MODEL_MODES}, "
                f"got {cost_model!r}"
            )
        self.source_db = source_db
        self.target_db = target_db
        self.operator = operator
        self.analyst = analyst
        self.catalog = catalog if catalog is not None else \
            ConversionAnalyzer().analyze_operator(source_db.schema, operator)
        self.order = tuple(order)
        self.strategy_order = strategy_order
        self.cost_model_mode = cost_model
        #: Rule catalog for the rewrite stage's supervisor (``None``:
        #: the builtin catalog).  Distinct from ``self.catalog``, the
        #: ChangeCatalog of classified schema changes.
        self.rule_catalog = rule_catalog
        # Cardinality models are taken once, eagerly: probes roll back
        # every mutation, so the counts never drift during a batch and
        # worker processes rehydrating this pickled cascade predict
        # exactly like the serial coordinator.
        if cost_model == "auto":
            source_model = CostModel.from_database(source_db)
            target_model = CostModel.from_database(target_db)
        else:
            source_model = CostModel({})
            target_model = CostModel({})
        self.target_cost_model = target_model
        self.predictor = CostPredictor(source_model, source_db.schema)
        #: Batch-level calibration state (reporting only; never feeds
        #: back into per-program predictions, which must stay pure).
        self.calibrator = CostCalibrator()
        self.cost_counters = NamedCounters("cost")

    # -- strategy construction ---------------------------------------

    def make_strategy(self, name: str) -> ConversionStrategy:
        """A fresh strategy instance (probe state never leaks into the
        instance handed back to the caller)."""
        if name == "rewrite":
            return RewriteStrategy(self.target_db, self.source_db.schema,
                                   self.operator, analyst=self.analyst,
                                   cost_model=self.target_cost_model,
                                   rule_catalog=self.rule_catalog)
        if name == "emulation":
            return EmulationStrategy(self.target_db, self.catalog)
        if name == "bridge":
            return BridgeStrategy(self.target_db, self.operator,
                                  self.catalog)
        raise ValueError(f"unknown strategy {name!r}")

    # -- probes --------------------------------------------------------

    def reference_trace(self, program: Program,
                        inputs: ProgramInputs | None = None) -> IOTrace:
        """The source program's behaviour on the source database,
        probed inside a savepoint and rolled back."""
        inputs = inputs or ProgramInputs()
        savepoint = self.source_db.savepoint()
        try:
            with span("cascade.reference-run", program=program.name):
                return run_program(program, self.source_db, inputs.copy(),
                                   consistent=False)
        except Exception as exc:
            raise PipelineFault(
                f"source program would not run: {exc}",
                program=program.name, phase="reference-run",
            ) from exc
        finally:
            self.source_db.rollback(savepoint)

    def _probe(self, strategy: ConversionStrategy, program: Program,
               inputs: ProgramInputs) -> StrategyRun:
        """One candidate run against the target, rolled back after."""
        savepoint = self.target_db.savepoint()
        try:
            return strategy.run(program, inputs.copy())
        finally:
            self.target_db.rollback(savepoint)

    # -- the cascade ---------------------------------------------------

    def convert(self, program: Program,
                inputs: ProgramInputs | None = None, *,
                options: ConversionOptions | None = None
                ) -> CascadeOutcome:
        """Run the cascade under a ``cascade.convert`` span; the report
        comes back with the unified counter movement attached.

        ``inputs=`` is a deprecated shim; pass
        ``options=ConversionOptions(inputs=...)``.
        """
        if inputs is not None:
            warn_deprecated(
                "FallbackCascade.convert:inputs",
                "FallbackCascade.convert(program, inputs=...) is "
                "deprecated; pass options=ConversionOptions(inputs=...) "
                "instead",
            )
        elif options is not None:
            inputs = options.inputs
        strategy_order = self.strategy_order
        if options is not None and options.strategy_order is not None:
            if options.strategy_order not in STRATEGY_ORDERS:
                raise ValueError(
                    f"strategy_order must be one of {STRATEGY_ORDERS}, "
                    f"got {options.strategy_order!r}"
                )
            strategy_order = options.strategy_order
        use_cost = strategy_order == "cost"
        registry = get_registry()
        before = registry.snapshot()
        # The span shares this wrapper's snapshots instead of taking
        # its own pair (capture_metrics=False, then stamped below).
        with span("cascade.convert", capture_metrics=False,
                  program=program.name) as convert_span:
            prediction = self.predictor.predict(program)
            self.cost_counters.bump("predictions")
            outcome = self._convert(program, inputs, prediction, use_cost)
            self._observe_cost(outcome, prediction)
        after = registry.snapshot()
        outcome.report.metrics = registry_delta(before, after)
        skipped = (use_cost and bool(prediction.blocking)
                   and "rewrite" in self.order)
        outcome.report.cost = {
            "predicted": prediction.to_dict(),
            "measured": outcome.run.cost() if outcome.run else None,
            "chosen_order": [
                name for name in self.order
                if not (name == "rewrite" and skipped)
            ],
        }
        if convert_span:
            convert_span.metrics = {k: v for k, v in after.items() if v}
            convert_span.metrics_delta = dict(outcome.report.metrics)
        return outcome

    def _observe_cost(self, outcome: CascadeOutcome,
                      prediction: Prediction) -> None:
        """Feed the winning run's measured cost into the calibrator."""
        if outcome.run is None or not outcome.report.strategy:
            return
        predicted = prediction.costs.get(outcome.report.strategy)
        if predicted is None:
            return
        self.calibrator.observe(outcome.report.strategy, predicted,
                                outcome.run.cost())
        self.cost_counters.bump("calibration_samples")

    def _convert(self, program: Program,
                 inputs: ProgramInputs | None = None,
                 prediction: Prediction | None = None,
                 use_cost: bool = True) -> CascadeOutcome:
        inputs = inputs or ProgramInputs()
        reference = self.reference_trace(program, inputs)

        stages: list[StageOutcome] = []
        rewrite_report: ConversionReport | None = None
        last_error: Exception | None = None
        last_detail = "no cascade stages attempted"

        for name in self.order:
            with span(f"cascade.{name}", program=program.name) as stage_span:
                if (name == "rewrite" and use_cost
                        and prediction is not None and prediction.blocking):
                    # The static profile proves the analyzer would
                    # refuse this program; synthesize its exact
                    # refusal instead of paying for the attempt.
                    rewrite_report = self._synthesize_rewrite_refusal(
                        program, prediction)
                    last_detail = rewrite_report.failure or "unconverted"
                    stages.append(StageOutcome(name, "unconverted",
                                               last_detail))
                    stage_span.set_attr("outcome", "unconverted")
                    stage_span.set_attr("skipped", True)
                    self.cost_counters.bump("rewrite_skips")
                    continue

                strategy = self.make_strategy(name)

                if name == "rewrite":
                    rewrite_report = strategy.conversion_report(program)
                    if rewrite_report.target_program is None:
                        last_detail = rewrite_report.failure or "unconverted"
                        stages.append(StageOutcome(name, "unconverted",
                                                   last_detail))
                        stage_span.set_attr("outcome", "unconverted")
                        continue

                try:
                    run = self._probe(strategy, program, inputs)
                except Exception as exc:
                    last_error = exc
                    last_detail = f"{type(exc).__name__}: {exc}"
                    stages.append(StageOutcome(name, "error", last_detail))
                    stage_span.set_attr("outcome", "error")
                    continue

                divergence = reference.diff(run.trace)
                if divergence is None:
                    stages.append(StageOutcome(name, "validated"))
                    stage_span.set_attr("outcome", "validated")
                    return self._won(program, name, stages, rewrite_report,
                                     run, reordered=False)
                if traces_reordered(reference, run.trace):
                    stages.append(StageOutcome(
                        name, "validated-reordered",
                        "same events, different order"))
                    stage_span.set_attr("outcome", "validated-reordered")
                    return self._won(program, name, stages, rewrite_report,
                                     run, reordered=True)
                last_detail = divergence
                stages.append(StageOutcome(name, "divergent", divergence))
                stage_span.set_attr("outcome", "divergent")

        return self._lost(program, stages, rewrite_report, last_error,
                          last_detail)

    def _synthesize_rewrite_refusal(self, program: Program,
                                    prediction: Prediction
                                    ) -> ConversionReport:
        """The report the rewrite attempt would have produced.

        Mirrors the supervisor's analyze-failure path exactly: in the
        cascade the supervisor carries no verb pins, so a blocking
        program fails regardless of the analyst's answer -- but the
        ``pin-verb`` question is still posed (and posed here, at the
        same point), keeping stateful analysts' transcripts identical
        to a fixed-order run.
        """
        # The supervisor's _phase wrapper annotates the raised error
        # with program/phase context before str()-ing it into the
        # report; build the same exception so the text cannot drift.
        failure = str(AnalysisError(blocking_failure(prediction.blocking),
                                    program=program.name, phase="analyze"))
        report = ConversionReport(program.name, STATUS_FAILED)
        question = pin_verb_question(program.name, failure)
        if self.analyst is not None:
            self.analyst.answer(question)
        report.questions.append(question.render())
        report.failure = failure
        return report

    def convert_system(self, programs: list[Program],
                       inputs: ProgramInputs | None = None, *,
                       options: ConversionOptions | None = None
                       ) -> list[CascadeOutcome]:
        if inputs is not None:
            warn_deprecated(
                "FallbackCascade.convert_system:inputs",
                "FallbackCascade.convert_system(programs, inputs=...) is "
                "deprecated; pass options=ConversionOptions(inputs=...) "
                "instead",
            )
            options = (options or ConversionOptions()).replace(
                inputs=inputs)
        return [self.convert(program, options=options)
                for program in programs]

    # -- report assembly ----------------------------------------------

    def _won(self, program: Program, name: str,
             stages: list[StageOutcome],
             rewrite_report: ConversionReport | None,
             run: StrategyRun, reordered: bool) -> CascadeOutcome:
        if name == "rewrite":
            # The conversion report already carries the right band
            # (automatic / warnings / assisted).
            report = rewrite_report
        else:
            report = ConversionReport(program.name, STATUS_FELL_BACK)
            if rewrite_report is not None:
                report.questions.extend(rewrite_report.questions)
                if rewrite_report.failure:
                    report.notes.append(
                        f"rewrite failed: {rewrite_report.failure}"
                    )
        if reordered:
            report.warnings.append(
                f"{name}: trace order diverges from the source run "
                "(same event multiset; scan-order difference)"
            )
            if report.status == STATUS_AUTOMATIC:
                report.status = STATUS_WARNINGS
        report.strategy = name
        report.stages = list(stages)
        # Hand back a strategy whose state the probe did not touch.
        return CascadeOutcome(report, self.make_strategy(name), run)

    def _lost(self, program: Program, stages: list[StageOutcome],
              rewrite_report: ConversionReport | None,
              last_error: Exception | None,
              last_detail: str) -> CascadeOutcome:
        report = rewrite_report if rewrite_report is not None else \
            ConversionReport(program.name, STATUS_FAILED)
        report.status = STATUS_FAILED
        report.failure = last_detail
        report.strategy = None
        report.stages = list(stages)
        if last_error is not None:
            report.fault = FaultContext.from_exception(
                last_error, program=program.name, phase="cascade",
            )
        else:
            report.fault = FaultContext(
                error_type="TraceDivergence", message=last_detail,
                program=program.name, phase="cascade",
            )
        return CascadeOutcome(report, None, None)
