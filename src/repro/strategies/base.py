"""Strategy interface.

A strategy is prepared once for (source schema, operator, target
database) and then runs source programs; it reports each run's I/O
trace plus the operation-count delta, measured over one shared
:class:`~repro.engine.metrics.Metrics` object covering the target
database *and* any scratch structures the strategy builds (emulation
tables, bridge reconstructions), so overhead is attributed honestly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.metrics import Metrics, MetricsScope
from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs
from repro.programs.iotrace import IOTrace


@dataclass
class StrategyRun:
    """One program execution under a strategy."""

    strategy: str
    program: str
    trace: IOTrace
    metrics: Metrics

    def cost(self) -> int:
        """The access-path-length proxy: total record touches plus
        per-call mapping and materialization work."""
        return (self.metrics.total_accesses()
                + self.metrics.emulation_mappings
                + self.metrics.bridge_materializations)


class ConversionStrategy:
    """Base class; subclasses implement :meth:`run`."""

    name = "abstract"

    def run(self, program: Program,
            inputs: ProgramInputs | None = None) -> StrategyRun:
        raise NotImplementedError

    def _measured(self, metrics: Metrics) -> MetricsScope:
        return MetricsScope(metrics)
