"""Differential files (Severance & Lohman, reference 9).

The bridge strategy lets the source program update a *reconstructed*
copy of the source database; the updates must then be reflected in the
real (restructured) target.  "Differential file techniques can be used
to ease this process" -- instead of re-translating the whole
reconstruction, only the logged deltas are applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class DifferentialEntry:
    """One logged update against the reconstruction.

    ``op`` is 'store' | 'modify' | 'erase'; ``rid`` is the rid in the
    reconstruction (None for stores until assigned).
    """

    op: str
    record: str
    rid: int | None
    values: tuple[tuple[str, Any], ...] = ()
    cascade: bool = False


@dataclass
class DifferentialFile:
    """Ordered log of updates made through a bridge session."""

    entries: list[DifferentialEntry] = field(default_factory=list)

    def log_store(self, record: str, rid: int,
                  values: dict[str, Any]) -> None:
        self.entries.append(DifferentialEntry(
            "store", record, rid, tuple(values.items())
        ))

    def log_modify(self, record: str, rid: int,
                   updates: dict[str, Any]) -> None:
        self.entries.append(DifferentialEntry(
            "modify", record, rid, tuple(updates.items())
        ))

    def log_erase(self, record: str, rid: int, cascade: bool) -> None:
        self.entries.append(DifferentialEntry(
            "erase", record, rid, cascade=cascade
        ))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def dirty(self) -> bool:
        return bool(self.entries)
