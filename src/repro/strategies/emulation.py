"""DML emulation (the Honeywell "Task 609" design, Section 2.1.2).

The *source* program runs unchanged; an :class:`EmulatedDMLSession`
intercepts each DML call and re-expresses it against the restructured
database using a mapping description derived from the change catalog.
The paper's critique is visible in the metrics: every emulated call
pays mapping work (``emulation_mappings``), occurrences of restructured
sets must be materialized and re-sorted to the source order, and "it is
unlikely that new access strategies can be used".

Supported mappings: record/field/set renames, and interposed records
(an old set's occurrence is the concatenation of the lower-set
occurrences under the upper set, re-sorted by the old order keys).
Unlike Task 609 -- "retrieval only, no update allowed" -- updates are
supported by routing them through virtual-field set selection; the
difference is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.analyzer_db import ChangeCatalog
from repro.engine.ordering import orderable
from repro.engine.storage import Record
from repro.errors import DMLError
from repro.network.database import NetworkDatabase
from repro.network.dml import (
    DMLSession,
    STATUS_EMPTY_SET,
    STATUS_END_OF_SET,
    STATUS_NO_CURRENCY,
    STATUS_NOT_FOUND,
)
from repro.observe.registry import NamedCounters
from repro.programs.ast import Program
from repro.programs.interpreter import Interpreter, ProgramInputs
from repro.schema.diff import (
    FieldRenamed,
    RecordInterposed,
    RecordRenamed,
    SetOrderChanged,
    SetRenamed,
)
from repro.strategies.base import ConversionStrategy, StrategyRun


@dataclass(frozen=True)
class _InterposedSet:
    """Mapping description for one interposed set."""

    old_set: str
    upper_set: str
    lower_set: str
    new_record: str
    member: str
    old_order_keys: tuple[str, ...]


class EmulatedDMLSession(DMLSession):
    """A DML session that speaks the *source* schema against the
    *target* database."""

    def __init__(self, target_db: NetworkDatabase, catalog: ChangeCatalog,
                 cache_occurrences: bool = True):
        super().__init__(target_db)
        #: Per-verb call counts, visible registry-wide as
        #: ``emulation.<verb>``.
        self.verbs = NamedCounters("emulation")
        #: Ablation knob: without the cache, every FIND NEXT
        #: re-materializes the emulated occurrence -- the paper's
        #: "maintenance of run time descriptions and tables" is what
        #: keeps emulation merely linear instead of quadratic.
        self.cache_occurrences = cache_occurrences
        self._record_map: dict[str, str] = {}
        self._field_map: dict[tuple[str, str], str] = {}
        self._set_map: dict[str, str] = {}
        self._interposed: dict[str, _InterposedSet] = {}
        self._reordered: dict[str, tuple[str, ...]] = {}
        for change in catalog.changes:
            if isinstance(change, RecordRenamed):
                self._record_map[change.old_name] = change.new_name
            elif isinstance(change, FieldRenamed):
                self._field_map[(change.record, change.old_name)] = \
                    change.new_name
            elif isinstance(change, SetRenamed):
                self._set_map[change.old_name] = change.new_name
            elif isinstance(change, RecordInterposed):
                source_set = catalog.source_schema.set_type(change.old_set)
                self._interposed[change.old_set] = _InterposedSet(
                    change.old_set, change.upper_set, change.lower_set,
                    change.new_record, source_set.member,
                    source_set.order_keys,
                )
            elif isinstance(change, SetOrderChanged):
                # The source program must still see the OLD member
                # order: the emulator re-sorts each occurrence.
                self._reordered[change.set_name] = change.old_keys
        # UWA keyed by *source* record names.
        source_records = catalog.source_schema.records
        self.uwa = {name: {} for name in source_records}
        self._source_schema = catalog.source_schema
        # Emulated occurrence caches: old set -> (owner rid, member rids,
        # position index).
        self._occurrences: dict[str, tuple[int, list[int], int]] = {}

    # -- name mapping -------------------------------------------------------

    def _rec(self, record_name: str) -> str:
        return self._record_map.get(record_name, record_name)

    def _fld(self, record_name: str, field_name: str) -> str:
        return self._field_map.get((record_name, field_name), field_name)

    def _set(self, set_name: str) -> str:
        return self._set_map.get(set_name, set_name)

    def _map_values(self, record_name: str,
                    values: dict[str, Any]) -> dict[str, Any]:
        return {
            self._fld(record_name, name): value
            for name, value in values.items()
        }

    def current_matches(self, record_name: str) -> bool:
        record = self.current_record()
        return record is not None and \
            record.type_name == self._rec(record_name)

    # -- emulated occurrence construction -------------------------------------

    def _materialize(self, mapping: _InterposedSet) -> tuple[int, list[int]]:
        """Build the old set's occurrence from the two-level target
        path under the current owner, re-sorted to the old order."""
        self.db.metrics.emulation_mappings += 1
        upper_type, owner_rid = self._set_position(mapping.upper_set)
        del upper_type
        if owner_rid is None:
            raise _NoCurrency()
        members: list[int] = []
        upper_store = self.db.set_store(mapping.upper_set)
        lower_store = self.db.set_store(mapping.lower_set)
        for group_rid in upper_store.members(owner_rid):
            self.db.metrics.set_traversals += 1
            for member_rid in lower_store.members(group_rid):
                self.db.metrics.set_traversals += 1
                members.append(member_rid)
        member_store = self.db.store(mapping.member)

        def order_key(rid: int) -> tuple:
            record = member_store.fetch(rid)
            return tuple(
                orderable(self.db.read_field(record, key))
                for key in mapping.old_order_keys
            )

        self.db.metrics.sort_operations += 1
        members.sort(key=order_key)
        return owner_rid, members

    def _materialize_reordered(self, set_name: str
                               ) -> tuple[int, list[int]]:
        """Re-sort a reordered set's occurrence back to the old keys."""
        self.db.metrics.emulation_mappings += 1
        target_set = self._set(set_name)
        set_type, owner_rid = self._set_position(target_set)
        if owner_rid is None:
            raise _NoCurrency()
        members = list(self.db.set_store(target_set).members(owner_rid))
        member_store = self.db.store(set_type.member)
        old_keys = self._reordered[set_name]

        def order_key(rid: int) -> tuple:
            record = member_store.fetch(rid)
            return tuple(
                orderable(self.db.read_field(record, key))
                for key in old_keys
            )

        self.db.metrics.sort_operations += 1
        members.sort(key=order_key)
        return owner_rid, members

    # -- cache invalidation -------------------------------------------------

    def _invalidate(self) -> None:
        """Conservative fallback: drop every cached occurrence."""
        self._occurrences.clear()

    def _member_target_type(self, set_name: str) -> str:
        mapping = self._interposed.get(set_name)
        if mapping is not None:
            return self._rec(mapping.member)
        return self.db.schema.set_type(self._set(set_name)).member

    def _owner_target_type(self, set_name: str) -> str:
        mapping = self._interposed.get(set_name)
        if mapping is not None:
            return self.db.schema.set_type(mapping.upper_set).owner
        return self.db.schema.set_type(self._set(set_name)).owner

    def _affected_types(self, set_name: str) -> set[str]:
        """Target record types whose creation can change a cached
        occurrence of this source set: its members, plus the interposed
        group record whose arrival splices new lower-set runs in."""
        types = {self._member_target_type(set_name)}
        mapping = self._interposed.get(set_name)
        if mapping is not None:
            types.add(mapping.new_record)
        return types

    def _order_keys(self, set_name: str) -> tuple[str, ...]:
        mapping = self._interposed.get(set_name)
        if mapping is not None:
            return mapping.old_order_keys
        return self._reordered.get(set_name, ())

    def _invalidate_for_store(self, target_name: str) -> None:
        """STORE of one record only disturbs cached occurrences whose
        member (or interposed group) type matches it."""
        for set_name in list(self._occurrences):
            if target_name in self._affected_types(set_name):
                del self._occurrences[set_name]

    def _invalidate_for_modify(self, target_name: str,
                               touched: set[str],
                               reconnected: bool) -> None:
        """MODIFY invalidates a cached occurrence only when the current
        record can appear in it AND the update can change membership (a
        virtual-field reconnection) or the emulated sort order (an old
        order key).  Updates to unrelated fields or unrelated record
        types leave FIND NEXT chains undisturbed."""
        for set_name in list(self._occurrences):
            if target_name not in self._affected_types(set_name):
                continue
            order_keys = self._order_keys(set_name)
            if reconnected or any(key in touched for key in order_keys):
                del self._occurrences[set_name]

    def _invalidate_for_erase(self, target_name: str, rid: int,
                              cascade: bool) -> None:
        """ERASE drops caches holding the erased record -- as a member,
        its owner, or (conservatively) an interposed group; a cascading
        erase clears everything."""
        if cascade:
            self._invalidate()
            return
        for set_name in list(self._occurrences):
            owner_rid, members, _position = self._occurrences[set_name]
            mapping = self._interposed.get(set_name)
            if target_name == self._member_target_type(set_name):
                if rid in members:
                    del self._occurrences[set_name]
            elif mapping is not None and target_name == mapping.new_record:
                del self._occurrences[set_name]
            elif target_name == self._owner_target_type(set_name) and \
                    rid == owner_rid:
                del self._occurrences[set_name]

    # -- intercepted verbs --------------------------------------------------------

    def find_any(self, record_name: str, **field_values: Any) -> Record | None:
        self.verbs.bump("find_any")
        raw = dict(field_values) or dict(self.uwa.get(record_name, {}))
        mapped = self._map_values(record_name, raw)
        target_name = self._rec(record_name)
        if target_name != record_name or mapped != raw:
            # Only count mapping work actually performed; an unmapped
            # record delegates straight to the native FIND ANY.
            self.db.metrics.emulation_mappings += 1
        return super().find_any(target_name, **mapped)

    def _emulated_set(self, set_name: str) -> bool:
        return set_name in self._interposed or set_name in self._reordered

    def _member_type(self, set_name: str) -> str:
        mapping = self._interposed.get(set_name)
        if mapping is not None:
            return mapping.member
        return self.db.schema.set_type(self._set(set_name)).member

    def _build_occurrence(self, set_name: str) -> tuple[int, list[int]]:
        mapping = self._interposed.get(set_name)
        if mapping is not None:
            return self._materialize(mapping)
        return self._materialize_reordered(set_name)

    def find_first(self, record_name: str, set_name: str) -> Record | None:
        self.verbs.bump("find_first")
        if not self._emulated_set(set_name):
            self.db.metrics.emulation_mappings += 1
            return super().find_first(self._rec(record_name),
                                      self._set(set_name))
        self.db.metrics.dml_calls += 1
        try:
            owner_rid, members = self._build_occurrence(set_name)
        except _NoCurrency:
            return self._miss(STATUS_NO_CURRENCY)
        self._occurrences[set_name] = (owner_rid, members, 0)
        if not members:
            return self._miss(STATUS_EMPTY_SET)
        member_type = self._member_type(set_name)
        return self._ok(self.db.store(member_type).fetch(members[0]))

    def find_next(self, record_name: str, set_name: str) -> Record | None:
        self.verbs.bump("find_next")
        if not self._emulated_set(set_name):
            self.db.metrics.emulation_mappings += 1
            return super().find_next(self._rec(record_name),
                                     self._set(set_name))
        self.db.metrics.dml_calls += 1
        cached = self._occurrences.get(set_name)
        if cached is None:
            # FIND NEXT from owner currency means FIRST.
            return self.find_first(record_name, set_name)
        owner_rid, members, position = cached
        if not self.cache_occurrences:
            # Re-derive the occurrence on every call (ablation): keep
            # only the position, rebuild the member list.
            try:
                owner_rid, members = self._build_occurrence(set_name)
            except _NoCurrency:
                return self._miss(STATUS_NO_CURRENCY)
        position += 1
        if position >= len(members):
            return self._miss(STATUS_END_OF_SET)
        self._occurrences[set_name] = (owner_rid, members, position)
        member_type = self._member_type(set_name)
        return self._ok(self.db.store(member_type).fetch(members[position]))

    def find_next_using(self, record_name: str, set_name: str,
                        *using_fields: str) -> Record | None:
        self.verbs.bump("find_next_using")
        if not self._emulated_set(set_name):
            self.db.metrics.emulation_mappings += 1
            return super().find_next_using(self._rec(record_name),
                                           self._set(set_name),
                                           *using_fields)
        wanted = {
            field_name: self.uwa[record_name].get(field_name)
            for field_name in using_fields
        }
        while True:
            record = self.find_next(record_name, set_name)
            if record is None:
                return None
            values = {
                name: self.db.read_field(record, self._fld(record_name, name))
                for name in wanted
            }
            if values == wanted:
                return record

    def find_owner(self, set_name: str) -> Record | None:
        self.verbs.bump("find_owner")
        mapping = self._interposed.get(set_name)
        if mapping is None:
            self.db.metrics.emulation_mappings += 1
            return super().find_owner(self._set(set_name))
        self.db.metrics.dml_calls += 1
        self.db.metrics.emulation_mappings += 1
        # Two hops: member -> interposed group -> old owner.
        position = self.currency.of_set(mapping.lower_set)
        if position is None:
            return self._miss(STATUS_NO_CURRENCY)
        group = self.db.owner_record(mapping.lower_set, position.rid) \
            if position.record_name == mapping.member else \
            self.db.store(mapping.new_record).peek(position.rid)
        if group is None:
            return self._miss(STATUS_NOT_FOUND)
        owner = self.db.owner_record(mapping.upper_set, group.rid)
        if owner is None:
            return self._miss(STATUS_NOT_FOUND)
        return self._ok(owner)

    def get(self) -> dict[str, Any] | None:
        self.verbs.bump("get")
        values = super().get()
        if values is None:
            return None
        record = self.current_record()
        # Present *source* field names to the program.
        reverse = {
            new: old for (rec, old), new in self._field_map.items()
            if self._rec(rec) == record.type_name
        }
        renamed = {
            reverse.get(name, name): value for name, value in values.items()
        }
        source_name = self._source_name(record.type_name)
        if source_name in self.uwa:
            self.uwa[source_name].update(renamed)
        self.status = "0000"
        return renamed

    def _source_name(self, target_record: str) -> str:
        for old, new in self._record_map.items():
            if new == target_record:
                return old
        return target_record

    def store(self, record_name: str,
              values: dict[str, Any] | None = None) -> Record:
        self.verbs.bump("store")
        self.db.metrics.emulation_mappings += 1
        raw = dict(self.uwa[record_name]) if values is None else dict(values)
        mapped = self._map_values(record_name, raw)
        target_name = self._rec(record_name)
        self._invalidate_for_store(target_name)
        # Interposed sets: ensure the group record exists so the
        # virtual-field routing can connect the member.
        record_type = self.db.schema.record(target_name)
        for name, value in mapped.items():
            fld = record_type.field(name)
            if fld.is_virtual and value is not None:
                set_type = self.db.schema.set_type(fld.virtual_via)
                if set_type.owner not in {
                        m.new_record for m in self._interposed.values()}:
                    continue
                owner = self.db.select_owner_by_value(
                    set_type, fld.virtual_using, value
                )
                if owner is None:
                    inner = DMLSession(self.db)
                    inner.currency = self.currency
                    inner.store(set_type.owner, {fld.virtual_using: value})
        return super().store(target_name, mapped)

    def modify(self, updates: dict[str, Any]) -> Record | None:
        self.verbs.bump("modify")
        self.db.metrics.emulation_mappings += 1
        record = self.current_record()
        if record is None:
            return self._miss(STATUS_NO_CURRENCY)
        source_name = self._source_name(record.type_name)
        mapped = self._map_values(source_name, updates)
        record_type = self.db.schema.record(record.type_name)
        stored: dict[str, Any] = {}
        reconnections: list[tuple[Any, Any]] = []
        for name, value in mapped.items():
            fld = record_type.field(name)
            if fld.is_virtual:
                # A virtualized field update is a reconnection.
                reconnections.append((fld, value))
            else:
                stored[name] = value
        self._invalidate_for_modify(record.type_name,
                                    set(updates) | set(mapped),
                                    bool(reconnections))
        for fld, value in reconnections:
            self.reconnect(fld.virtual_via, fld.virtual_using, value,
                           ensure_owner=True)
        if stored:
            return super().modify(stored)
        return record

    def erase(self, all_members: bool = False) -> None:
        self.verbs.bump("erase")
        self.db.metrics.emulation_mappings += 1
        record = self.current_record()
        if record is not None:
            self._invalidate_for_erase(record.type_name, record.rid,
                                       all_members)
        super().erase(all_members=all_members)


class _NoCurrency(DMLError):
    pass


class EmulationStrategy(ConversionStrategy):
    """Runs unmodified source programs through the emulation layer."""

    name = "emulation"

    def __init__(self, target_db: NetworkDatabase, catalog: ChangeCatalog,
                 cache_occurrences: bool = True):
        self.target_db = target_db
        self.catalog = catalog
        self.cache_occurrences = cache_occurrences

    def run(self, program: Program,
            inputs: ProgramInputs | None = None) -> StrategyRun:
        session = EmulatedDMLSession(self.target_db, self.catalog,
                                     self.cache_occurrences)
        with self._measured(self.target_db.metrics) as scope:
            interpreter = Interpreter(self.target_db, inputs,
                                      session=session)
            trace = interpreter.run(program)
        return StrategyRun(self.name, program.name, trace, scope.delta)
