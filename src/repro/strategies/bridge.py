"""Bridge programs (Section 2.1.2).

"The source application program's access requirements are supported by
dynamically reconstructing from the target database that portion of
the source database needed ... The source program operates on the
reconstructed database to effect the same results that would occur in
the original database.  A reverse mapping is required to reflect
updates and each simulated source database segment that has changed
must be retranslated along with any new database members.
Differential file techniques can be used to ease this process."

Implementation choices, all visible in the metrics:

* reconstruction is whole-database (the paper's limiting case); every
  reconstructed row counts as a ``bridge_materialization``;
* updates are logged to a :class:`DifferentialFile`; a run that made
  no updates skips retranslation entirely (the differential-file win),
  a dirty run retranslates the reconstruction forward into a fresh
  target database.
"""

from __future__ import annotations

from typing import Any

from repro.core.analyzer_db import ChangeCatalog
from repro.engine.storage import Record
from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.observe.registry import NamedCounters
from repro.observe.tracing import span
from repro.programs.ast import Program
from repro.programs.interpreter import Interpreter, ProgramInputs
from repro.restructure.operators import RestructuringOperator
from repro.restructure.translator import (
    extract_snapshot,
    load_network,
)
from repro.strategies.base import ConversionStrategy, StrategyRun
from repro.strategies.differential import DifferentialFile


class _LoggingDMLSession(DMLSession):
    """A session over the reconstruction that logs updates."""

    def __init__(self, db: NetworkDatabase, diff: DifferentialFile):
        super().__init__(db)
        self.diff = diff
        #: Per-verb update counts, visible registry-wide as
        #: ``bridge.<verb>``.
        self.verbs = NamedCounters("bridge")

    def store(self, record_name: str,
              values: dict[str, Any] | None = None) -> Record:
        self.verbs.bump("store")
        record = super().store(record_name, values)
        self.diff.log_store(record_name, record.rid, dict(record.values))
        return record

    def modify(self, updates: dict[str, Any]) -> Record | None:
        self.verbs.bump("modify")
        record = super().modify(updates)
        if record is not None:
            self.diff.log_modify(record.type_name, record.rid,
                                 dict(updates))
        return record

    def erase(self, all_members: bool = False) -> None:
        self.verbs.bump("erase")
        record = self.current_record()
        if record is not None:
            self.diff.log_erase(record.type_name, record.rid, all_members)
        super().erase(all_members=all_members)


class BridgeStrategy(ConversionStrategy):
    """Runs unmodified source programs against a reconstruction."""

    name = "bridge"

    def __init__(self, target_db: NetworkDatabase,
                 operator: RestructuringOperator,
                 catalog: ChangeCatalog):
        self.target_db = target_db
        self.operator = operator
        self.catalog = catalog
        self.inverse = operator.inverse(catalog.source_schema)
        self.retranslations = 0
        #: Reconstruction/retranslation counts, visible registry-wide
        #: as ``bridge.<phase>``.
        self.phases = NamedCounters("bridge")

    def _reconstruct(self) -> NetworkDatabase:
        """Rebuild the source-shaped database from the current target."""
        self.phases.bump("reconstruct")
        with span("bridge.reconstruct"):
            metrics = self.target_db.metrics
            snapshot = extract_snapshot(self.target_db)
            translated = self.inverse.translate(
                snapshot, self.catalog.target_schema,
                self.catalog.source_schema
            )
            metrics.bridge_materializations += translated.total_rows()
            return load_network(self.catalog.source_schema, translated,
                                metrics=metrics)

    def _retranslate(self, reconstruction: NetworkDatabase) -> None:
        """Forward-translate the (updated) reconstruction back into the
        target form, replacing the target database contents."""
        self.phases.bump("retranslate")
        with span("bridge.retranslate"):
            metrics = self.target_db.metrics
            snapshot = extract_snapshot(reconstruction)
            translated = self.operator.translate(
                snapshot, self.catalog.source_schema,
                self.catalog.target_schema
            )
            metrics.bridge_materializations += translated.total_rows()
            self.target_db = load_network(self.catalog.target_schema,
                                          translated, metrics=metrics)
        self.retranslations += 1

    def run(self, program: Program,
            inputs: ProgramInputs | None = None) -> StrategyRun:
        with self._measured(self.target_db.metrics) as scope:
            reconstruction = self._reconstruct()
            diff = DifferentialFile()
            session = _LoggingDMLSession(reconstruction, diff)
            interpreter = Interpreter(reconstruction, inputs,
                                      session=session)
            trace = interpreter.run(program)
            if diff.dirty:
                # "each simulated source database segment that has
                # changed must be retranslated along with any new
                # database members"
                self._retranslate(reconstruction)
        return StrategyRun(self.name, program.name, trace, scope.delta)
