"""Conversion strategies (Section 2.1.2).

Three ways to keep a source program working after restructuring:

* :mod:`repro.strategies.emulation` -- DML emulation: "preserves the
  behavior of the application program by intercepting the individual
  DML calls at execution time and invoking equivalent DML calls to the
  restructured database" (the Honeywell Task 609 design);
* :mod:`repro.strategies.bridge` -- bridge programs: "the source
  application program's access requirements are supported by
  dynamically reconstructing from the target database that portion of
  the source database needed", with updates reflected back through
  :mod:`repro.strategies.differential` files (Severance & Lohman);
* :mod:`repro.strategies.rewrite` -- the Figure 4.1 pipeline
  ("rewriting the application programs ... to take advantage of the
  restructured database"), which the paper argues avoids both the
  efficiency and the restrictiveness drawbacks.

All three expose :class:`~repro.strategies.base.StrategyRun` results
over a shared metrics object so E5 compares like with like.
"""

from repro.strategies.base import ConversionStrategy, StrategyRun
from repro.strategies.emulation import EmulationStrategy, EmulatedDMLSession
from repro.strategies.bridge import BridgeStrategy
from repro.strategies.cascade import CascadeOutcome, FallbackCascade
from repro.strategies.differential import DifferentialFile, DifferentialEntry
from repro.strategies.rewrite import RewriteStrategy

__all__ = [
    "ConversionStrategy",
    "StrategyRun",
    "EmulationStrategy",
    "EmulatedDMLSession",
    "BridgeStrategy",
    "CascadeOutcome",
    "FallbackCascade",
    "DifferentialFile",
    "DifferentialEntry",
    "RewriteStrategy",
]
