"""The rewrite strategy: Figure 4.1 as a strategy object.

"The drawbacks of the existing strategies described above can be
avoided by 'rewriting' the application programs (using the conversion
system) to take advantage of the restructured database." (Section 2.2)

Programs are converted once (conversion cost is reported separately by
:meth:`RewriteStrategy.conversion_report`); each run then executes the
converted program directly against the target database with no
per-call overhead.
"""

from __future__ import annotations

from repro.core.optimizer import CostModel
from repro.core.supervisor import Analyst, ConversionSupervisor
from repro.core.report import ConversionReport
from repro.errors import ConversionError
from repro.network.database import NetworkDatabase
from repro.programs.ast import Program
from repro.programs.interpreter import Interpreter, ProgramInputs
from repro.restructure.operators import RestructuringOperator
from repro.schema.model import Schema
from repro.strategies.base import ConversionStrategy, StrategyRun


class RewriteStrategy(ConversionStrategy):
    """Converts programs through the framework, then runs them natively."""

    name = "rewrite"

    def __init__(self, target_db: NetworkDatabase, source_schema: Schema,
                 operator: RestructuringOperator,
                 analyst: Analyst | None = None,
                 cost_model: CostModel | None = None,
                 rule_catalog=None):
        self.target_db = target_db
        self.supervisor = ConversionSupervisor(source_schema, operator,
                                               analyst=analyst,
                                               cost_model=cost_model,
                                               rule_catalog=rule_catalog)
        self._converted: dict[str, ConversionReport] = {}

    def conversion_report(self, program: Program) -> ConversionReport:
        """Convert (memoized) and return the full report."""
        report = self._converted.get(program.name)
        if report is None:
            report = self.supervisor.convert_program(program)
            self._converted[program.name] = report
        return report

    def run(self, program: Program,
            inputs: ProgramInputs | None = None) -> StrategyRun:
        report = self.conversion_report(program)
        if report.target_program is None:
            raise ConversionError(
                f"program {program.name} did not convert: {report.failure}"
            )
        with self._measured(self.target_db.metrics) as scope:
            interpreter = Interpreter(self.target_db, inputs)
            trace = interpreter.run(report.target_program)
        return StrategyRun(self.name, program.name, trace, scope.delta)
