"""Benchmark report diffing (the CI regression gate).

``repro bench --diff old.json new.json`` compares two ``BENCH_*.json``
reports structurally:

* **config changes are errors** -- a diff between runs that measured
  different things (different suite, seed, sizes, corpus) is
  meaningless, so mismatched config keys and removed/renamed report
  keys fail the diff (exit 1);
* **performance changes are warnings** -- wall-clock timings on shared
  CI runners are noisy, so a timing regression never fails the build;
  it is surfaced in the rendered table (and the job summary) for a
  human to judge;
* **added keys are notes** -- report enrichment (a new measurement in
  a newer version of the harness) must not fail the first diff against
  an older artifact.

Thresholds: a ``*_seconds`` value warns when it grows past 30% (and
the old value is large enough to be meaningful), a ``speedup`` warns
when it loses more than 30%, a ``cost``/``overhead_vs_native``/
``mean_abs_pct_error`` (cost-model accuracy) warns past 10% (operation
counts are deterministic, so the band is tight),
and a True boolean (``traces_match``, ``traces_identical``) turning
False warns.  The ``trace_summary`` subtree is observational (its row
set depends on sampling and scheduling) and is skipped entirely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Keys that pin down *what* was measured; a mismatch means the two
#: reports are not comparable.
CONFIG_KEYS = frozenset({
    "suite", "schema", "operator", "seed", "rows", "statements",
    "programs", "employees_per_division", "chunk_size", "pathology_rate",
    "cost_model", "strategy_order",
})

#: Observational subtrees excluded from the diff.
SKIPPED_KEYS = frozenset({"trace_summary"})

TIME_REGRESSION_RATIO = 1.30
TIME_FLOOR_SECONDS = 0.005
SPEEDUP_REGRESSION_RATIO = 0.70
COST_REGRESSION_RATIO = 1.10


@dataclass
class BenchDiff:
    """The outcome of comparing two benchmark reports."""

    #: ``(path, old, new, status)`` for every compared measurement.
    rows: list[tuple[str, Any, Any, str]] = field(default_factory=list)
    #: Structural/config mismatches: the diff is invalid (exit 1).
    errors: list[str] = field(default_factory=list)
    #: Performance regressions: surfaced, never fatal.
    warnings: list[str] = field(default_factory=list)
    #: Benign additions/improvements.
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the reports were structurally comparable."""
        return not self.errors


def diff_reports(old: dict[str, Any], new: dict[str, Any]) -> BenchDiff:
    """Compare two report dicts (see the module docstring for rules).

    Reports carry a ``bench_format`` shape-version key (absent in
    format-1 reports).  When the two formats differ, the reports are
    *structurally* incomparable by design -- the harness changed what
    it measures -- so the diff notes the migration and skips the
    structural comparison instead of failing the first run after a
    format bump.
    """
    old_format = old.get("bench_format", 1)
    new_format = new.get("bench_format", 1)
    if old_format != new_format:
        diff = BenchDiff()
        diff.notes.append(
            f"bench_format changed {old_format} -> {new_format}: "
            "report shapes are not comparable; skipping the "
            "structural diff (the new report becomes the baseline)"
        )
        return diff
    diff = BenchDiff()
    _walk(old, new, "", diff)
    return diff


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _walk(old: Any, new: Any, path: str, diff: BenchDiff) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for key, old_value in old.items():
            if key in SKIPPED_KEYS:
                continue
            if key not in new:
                diff.errors.append(
                    f"{_join(path, key)}: present in the old report, "
                    "missing from the new one"
                )
                continue
            _walk(old_value, new[key], _join(path, key), diff)
        for key in new:
            if key not in old and key not in SKIPPED_KEYS:
                diff.notes.append(
                    f"{_join(path, key)}: new measurement, no baseline"
                )
        return
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            diff.errors.append(
                f"{path}: list length changed {len(old)} -> {len(new)}"
            )
            return
        for index, (old_item, new_item) in enumerate(zip(old, new)):
            _walk(old_item, new_item, f"{path}[{index}]", diff)
        return
    _leaf(old, new, path, diff)


def _leaf(old: Any, new: Any, path: str, diff: BenchDiff) -> None:
    key = path.rsplit(".", 1)[-1]
    if key in CONFIG_KEYS:
        if old != new:
            diff.errors.append(
                f"{path}: configuration changed {old!r} -> {new!r}"
            )
        return
    if isinstance(old, bool) or isinstance(new, bool):
        if isinstance(old, bool) is not isinstance(new, bool):
            diff.errors.append(
                f"{path}: type changed {type(old).__name__} -> "
                f"{type(new).__name__}"
            )
        elif old is True and new is False:
            diff.warnings.append(f"{path}: regressed True -> False")
            diff.rows.append((path, old, new, "regressed"))
        elif old is False and new is True:
            diff.notes.append(f"{path}: now True")
        return
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        _compare_number(key, old, new, path, diff)
        return
    if type(old) is not type(new):
        diff.errors.append(
            f"{path}: type changed {type(old).__name__} -> "
            f"{type(new).__name__}"
        )


def _compare_number(key: str, old: float, new: float, path: str,
                    diff: BenchDiff) -> None:
    if key.endswith("_seconds") or key == "seconds":
        status = "ok"
        if old >= TIME_FLOOR_SECONDS and new > old * TIME_REGRESSION_RATIO:
            status = "slower"
            diff.warnings.append(
                f"{path}: {old:.4f}s -> {new:.4f}s "
                f"(+{(new / old - 1) * 100:.0f}%)"
            )
        diff.rows.append((path, old, new, status))
    elif key == "speedup":
        status = "ok"
        if new < old * SPEEDUP_REGRESSION_RATIO:
            status = "slower"
            diff.warnings.append(
                f"{path}: speedup fell {old:.2f}x -> {new:.2f}x"
            )
        diff.rows.append((path, old, new, status))
    elif key in ("cost", "overhead_vs_native", "mean_abs_pct_error"):
        status = "ok"
        if new > old * COST_REGRESSION_RATIO:
            status = "costlier"
            diff.warnings.append(
                f"{path}: cost grew {old} -> {new} "
                f"(+{(new / old - 1) * 100:.0f}%)" if old else
                f"{path}: cost grew {old} -> {new}"
            )
        diff.rows.append((path, old, new, status))
    # Plain counters (metrics snapshots) change legitimately with any
    # code change; they carry no verdict.


def _show(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_markdown(diff: BenchDiff, old_label: str = "baseline",
                    new_label: str = "current") -> str:
    """A GitHub-flavoured-markdown rendering for ``$GITHUB_STEP_SUMMARY``."""
    lines = ["### Benchmark diff", ""]
    if diff.errors:
        lines.append("**Errors (reports not comparable):**")
        lines.extend(f"- {error}" for error in diff.errors)
        lines.append("")
    if diff.warnings:
        lines.append("**Regressions (warn-only):**")
        lines.extend(f"- {warning}" for warning in diff.warnings)
        lines.append("")
    flagged = [row for row in diff.rows if row[3] != "ok"]
    shown = flagged if flagged else diff.rows
    if shown:
        lines.append(f"| measurement | {old_label} | {new_label} | status |")
        lines.append("|---|---|---|---|")
        lines.extend(
            f"| {path} | {_show(old)} | {_show(new)} | {status} |"
            for path, old, new, status in shown
        )
        lines.append("")
    if diff.notes:
        lines.append("**Notes:**")
        lines.extend(f"- {note}" for note in diff.notes)
        lines.append("")
    if not (diff.errors or diff.warnings or diff.rows or diff.notes):
        lines.append("No measurements compared.")
    return "\n".join(lines).rstrip() + "\n"


def diff_report_files(old_path: str | Path,
                      new_path: str | Path) -> BenchDiff:
    """Load two ``BENCH_*.json`` files and diff them."""
    old = json.loads(Path(old_path).read_text())
    new = json.loads(Path(new_path).read_text())
    return diff_reports(old, new)
