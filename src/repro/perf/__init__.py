"""Performance benchmark harness for the translation pipeline."""

from repro.perf.harness import (
    PERF_OPERATOR,
    build_snapshot,
    build_source_db,
    compare_hierarchical_load,
    perf_schema,
    run_benchmark,
    size_split,
)

__all__ = [
    "PERF_OPERATOR",
    "build_snapshot",
    "build_source_db",
    "compare_hierarchical_load",
    "perf_schema",
    "run_benchmark",
    "size_split",
]
