"""Performance benchmark harness for the translation pipeline."""

from repro.perf.harness import (
    PERF_OPERATOR,
    build_snapshot,
    build_source_db,
    compare_hierarchical_load,
    perf_schema,
    run_benchmark,
    size_split,
)
from repro.perf.programs import (
    compare_relational_execution,
    run_programs_benchmark,
    summarize_programs,
    write_programs_report,
)

__all__ = [
    "PERF_OPERATOR",
    "build_snapshot",
    "build_source_db",
    "compare_hierarchical_load",
    "compare_relational_execution",
    "perf_schema",
    "run_benchmark",
    "run_programs_benchmark",
    "size_split",
    "summarize_programs",
    "write_programs_report",
]
