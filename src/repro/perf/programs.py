"""Program-execution benchmark: strategy overhead and indexed execution.

The translate suite (:mod:`repro.perf.harness`) measures moving the
*data*; this suite measures running the *programs* -- the other half of
the paper's Section 2 cost story.  Two measurements:

* **Strategy overhead**: the workload corpus runs under rewrite,
  emulation, and bridge against the Figure 4.4 restructuring at scaled
  database sizes, timed and costed against the native run of the source
  programs on the unrestructured database.  The paper's qualitative
  claim is checked in the report: emulation and bridge pay an overhead
  ratio above 1 while rewrite stays within a constant factor of native.

* **Indexed vs. linear relational execution**: a lookup-heavy
  relational workload runs twice against the same 10k-row instance --
  once with maintained secondary indexes, once with
  ``use_indexes=False`` -- asserting byte-identical I/O traces and
  reporting the wall-clock speedup.

Run via ``repro bench --suite programs`` (writes
``BENCH_programs.json``) or ``pytest benchmarks/perf -m perf``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.core.analyzer_db import ConversionAnalyzer
from repro.engine.metrics import MetricsScope
from repro.jsonio import write_json_atomic
from repro.observe.export import profile_summary
from repro.observe.tracing import Tracer, span
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.ast import Program
from repro.programs.interpreter import ProgramInputs, run_program
from repro.relational.database import RelationalDatabase
from repro.restructure import restructure_database
from repro.strategies import (
    BridgeStrategy,
    EmulationStrategy,
    RewriteStrategy,
)
from repro.workloads import company
from repro.workloads.corpus import CorpusProgram, CorpusSpec, generate_corpus

#: Database scales (employees per division) for the strategy sweep.
FULL_SCALES = (10, 40, 160)
SMOKE_SCALES = (10,)

#: Corpus size (programs per scale) for the strategy sweep.
FULL_PROGRAMS = 12
SMOKE_PROGRAMS = 6

#: Row count and statement count for the relational comparison.
FULL_RELATIONAL_ROWS = 10_000
FULL_RELATIONAL_STATEMENTS = 150
SMOKE_RELATIONAL_ROWS = 400
SMOKE_RELATIONAL_STATEMENTS = 20

#: Worker counts for the parallel batch scaling curve (E16/E17).
FULL_JOBS_CURVE = (1, 2, 4, 8)
SMOKE_JOBS_CURVE = (1, 2)

#: Inventory-corpus tiers for the parallel scaling measurement.  The
#: old 24-program corpus converted in ~26ms and measured nothing but
#: process spawn; these tiers are sized so the work dwarfs the pool
#: overhead (E17).
FULL_INVENTORY_TIERS = (1_000, 10_000)
SMOKE_INVENTORY_TIERS = (32,)

#: Report shape version.  2: ``parallel_scaling`` became multi-tier
#: (``tiers`` rows keyed by corpus size, each row recording the chunk
#: size next to the jobs curve) over the inventory workload.
#: 3: each tier row gained ``strategy_order`` (cost-ordered vs
#: fixed-order cascade wall-clock and time saved) and ``cost_model``
#: (predictor counters and calibrated accuracy) columns.
BENCH_FORMAT = 3


#: Corpus kinds whose behaviour is preserved across all three
#: strategies.  STORE-based kinds (hire, guarded-store) are excluded:
#: under the restructured schema the new EMP's DEPT attachment goes
#: through set-occurrence selection, which is currency-dependent -- the
#: paper's connection pathology, a conversion-analysis subject (E11),
#: not an execution-cost one.
BENCH_KINDS = frozenset({"report", "lookup", "raise", "fire", "audit-file"})


def corpus_programs(seed: int = 1979,
                    size: int = FULL_PROGRAMS) -> list[CorpusProgram]:
    """The clean workload corpus the strategies replay (pathological
    shapes excluded: they need interactive inputs and their point is
    conversion *analysis*, not execution cost)."""
    pool = generate_corpus(CorpusSpec(seed=seed, size=size * 3,
                                      pathology_rate=0.0))
    return [item for item in pool if item.kind in BENCH_KINDS][:size]


def _run_all(run_one, programs: list[CorpusProgram]) -> list[str]:
    """Replay the corpus through ``run_one(program, inputs)``,
    returning one rendered trace per program."""
    traces = []
    for item in programs:
        inputs = ProgramInputs(terminal=list(item.terminal_inputs))
        traces.append(run_one(item.program, inputs))
    return traces


def measure_strategies(employees_per_division: int, seed: int = 1979,
                       programs: list[CorpusProgram] | None = None
                       ) -> dict[str, Any]:
    """One sweep row: native + three strategies over one corpus."""
    programs = programs if programs is not None else corpus_programs(seed)
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)

    def fresh_target():
        source_db = company.company_db(
            seed=seed, employees_per_division=employees_per_division)
        _target_schema, target_db = restructure_database(source_db, operator)
        return target_db

    # Native baseline: the source programs on the source database.
    native_db = company.company_db(
        seed=seed, employees_per_division=employees_per_division)
    with MetricsScope(native_db.metrics) as native_scope, \
            span("bench.native", scale=employees_per_division):
        started = time.perf_counter()
        native_traces = _run_all(
            lambda program, inputs: run_program(
                program, native_db, inputs, consistent=False).render(),
            programs)
        native_seconds = time.perf_counter() - started
    native_cost = (native_scope.delta.total_accesses()
                   + native_scope.delta.emulation_mappings
                   + native_scope.delta.bridge_materializations)

    strategies = {
        "rewrite": lambda: RewriteStrategy(fresh_target(), schema, operator),
        "emulation": lambda: EmulationStrategy(fresh_target(), catalog),
        "bridge": lambda: BridgeStrategy(fresh_target(), operator, catalog),
    }
    result_strategies: dict[str, Any] = {}
    traces_match: dict[str, bool] = {}
    for name, factory in strategies.items():
        strategy = factory()
        cost = 0
        started = time.perf_counter()
        traces = []

        def run_one(program: Program, inputs: ProgramInputs) -> str:
            run = strategy.run(program, inputs)
            nonlocal cost
            cost += run.cost()
            return run.trace.render()

        with span(f"bench.{name}", scale=employees_per_division):
            traces = _run_all(run_one, programs)
        seconds = time.perf_counter() - started
        if name == "rewrite":
            # Rewrite carries the order-dependence warning: traces are
            # compared as multisets of lines, per program.
            matches = all(
                sorted(trace.splitlines()) == sorted(native.splitlines())
                for trace, native in zip(traces, native_traces)
            )
        else:
            matches = traces == native_traces
        traces_match[name] = matches
        result_strategies[name] = {
            "seconds": seconds,
            "cost": cost,
            "overhead_vs_native": (cost / native_cost
                                   if native_cost else float("inf")),
        }
    return {
        "employees_per_division": employees_per_division,
        "programs": len(programs),
        "native": {"seconds": native_seconds, "cost": native_cost},
        "strategies": result_strategies,
        "traces_match": traces_match,
    }


# ---------------------------------------------------------------------------
# Indexed vs. linear relational execution
# ---------------------------------------------------------------------------


def relational_workload(rows: int, statements: int,
                        seed: int = 1979) -> list[Program]:
    """A deterministic lookup-heavy relational program list.

    Mostly single-row equality work (lookups, updates, inserts) with
    one selective report, so the measured contrast is the equality
    access path, not full scans both sides pay identically.
    """
    del seed  # the workload is fully determined by rows/statements
    programs: list[Program] = []
    for index in range(statements):
        target = f"EMP-{(index * 37) % rows:05d}"
        kind = index % 3
        if kind == 0:
            programs.append(b.program(
                f"IDX-LOOKUP-{index:03d}", "relational", "COMPANY-NAME", [
                    b.query(
                        f"SELECT AGE FROM EMP WHERE EMP-NAME = '{target}'",
                        "$ROWS"),
                    ast.BindFirstRow("EMP", "$ROWS"),
                    b.if_(ast.status_ok(), [
                        b.display(target, b.v("EMP.AGE")),
                    ], [b.display("NOT FOUND")]),
                ]))
        elif kind == 1:
            programs.append(b.program(
                f"IDX-RAISE-{index:03d}", "relational", "COMPANY-NAME", [
                    b.rel_update("EMP", {"EMP-NAME": target},
                                 {"AGE": 21 + index % 40}),
                    b.display(b.v("DB-STATUS")),
                ]))
        else:
            programs.append(b.program(
                f"IDX-HIRE-{index:03d}", "relational", "COMPANY-NAME", [
                    b.rel_insert("EMP", **{
                        "EMP-NAME": f"IDX-NEW-{index:05d}",
                        "DEPT-NAME": "SALES",
                        "AGE": 30,
                        "DIV-NAME": "MACHINERY",
                    }),
                    b.display("HIRED", f"IDX-NEW-{index:05d}"),
                ]))
    programs.append(b.program(
        "IDX-REPORT", "relational", "COMPANY-NAME", [
            b.query("SELECT EMP-NAME, AGE FROM EMP WHERE AGE > 62 "
                    "ORDER BY EMP-NAME", "$ROWS"),
            b.for_each_row("ROW", "$ROWS", [
                b.display(b.v("ROW.EMP-NAME"), b.v("ROW.AGE")),
            ]),
            b.display("END-REPORT"),
        ]))
    return programs


def build_relational_db(rows: int, use_indexes: bool = True
                        ) -> RelationalDatabase:
    """A Figure 4.2 relational instance with ``rows`` employees."""
    schema = company.figure_42_schema()
    db = RelationalDatabase(schema, use_indexes=use_indexes)
    divisions = ["MACHINERY", "CHEMICAL"]
    departments = ["SALES", "ENG", "ADMIN", "PLANT"]
    db.insert_many("DIV", [
        {"DIV-NAME": name, "DIV-LOC": f"LOC-{index}"}
        for index, name in enumerate(divisions)
    ])
    db.insert_many("EMP", [
        {"EMP-NAME": f"EMP-{index:05d}",
         "DEPT-NAME": departments[index % len(departments)],
         "AGE": 18 + (index * 7) % 47,
         "DIV-NAME": divisions[index % len(divisions)]}
        for index in range(rows)
    ])
    return db


def compare_relational_execution(rows: int, statements: int,
                                 seed: int = 1979) -> dict[str, Any]:
    """Run the workload with and without indexes on identical data."""
    programs = relational_workload(rows, statements, seed)

    def run_suite(use_indexes: bool) -> tuple[float, list[str], dict]:
        db = build_relational_db(rows, use_indexes=use_indexes)
        variant = "indexed" if use_indexes else "linear"
        with MetricsScope(db.metrics) as scope, \
                span(f"bench.relational-{variant}", rows=rows):
            started = time.perf_counter()
            traces = [
                run_program(program, db, consistent=False).render()
                for program in programs
            ]
            seconds = time.perf_counter() - started
        return seconds, traces, scope.delta.snapshot()

    indexed_seconds, indexed_traces, indexed_stats = run_suite(True)
    linear_seconds, linear_traces, linear_stats = run_suite(False)
    return {
        "rows": rows,
        "statements": len(programs),
        "indexed_seconds": indexed_seconds,
        "linear_seconds": linear_seconds,
        "speedup": (linear_seconds / indexed_seconds
                    if indexed_seconds > 0 else float("inf")),
        "traces_identical": indexed_traces == linear_traces,
        "indexed_stats": indexed_stats,
        "linear_stats": linear_stats,
    }


# ---------------------------------------------------------------------------
# Parallel batch scaling (E16)
# ---------------------------------------------------------------------------


def measure_parallel_scaling(jobs_curve: tuple[int, ...] = FULL_JOBS_CURVE,
                             seed: int = 1979,
                             tiers: tuple[int, ...] = FULL_INVENTORY_TIERS,
                             pathology_rate: float = 0.25,
                             chunk_size: int | None = None
                             ) -> dict[str, Any]:
    """Wall-clock identical inventory batches at each worker count,
    at each corpus tier.

    Every run converts an identical inventory corpus (pathologies
    included -- fallbacks and failures must parallelize too) through a
    freshly restructured database pair, so within a tier the only
    variable is ``jobs``.  Every row records the resolved dispatch
    chunk size next to the worker count, and whether the run's reports
    came back byte-identical to the tier's 1-worker baseline -- the
    determinism guarantee the parallel executor is built on.

    ``parallel_threshold=1`` pins every multi-worker run onto the pool
    path: the point of the sweep is to *measure* the pool, so the
    auto-degrade heuristic must not silently reroute a small tier.

    Each tier also runs once serially in ``strategy_order="fixed"``
    mode; the tier row's ``strategy_order`` column records the
    wall-clock saved by the cost-ordered cascade (which must produce
    byte-identical reports), and ``cost_model`` records the predictor
    counters and the calibrated predicted-vs-measured accuracy.
    """
    import json as _json

    from repro.options import ConversionOptions
    from repro.parallel import run_parallel_batch
    from repro.workloads.inventory import (
        InventorySpec,
        generate_inventory,
        inventory_cascade,
    )

    options = ConversionOptions(
        inputs=ProgramInputs(terminal=["STORE"]),
        chunk_size=chunk_size,
        parallel_threshold=1,
    )

    tier_rows: list[dict[str, Any]] = []
    for tier in tiers:
        spec = InventorySpec(seed=seed, programs=tier,
                             pathology_rate=pathology_rate)
        programs = [item.program for item in generate_inventory(spec)]
        # Fixed-order serial reference: every program pays the rewrite
        # attempt.  Runs first, so interpreter warm-up cannot flatter
        # the cost-ordered runs timed below.
        fixed_cascade = inventory_cascade(spec, strategy_order="fixed")
        started = time.perf_counter()
        with span("bench.fixed-order-batch", programs=len(programs)):
            fixed_batch = run_parallel_batch(
                fixed_cascade, programs,
                options.replace(jobs=1, strategy_order="fixed"))
        fixed_seconds = time.perf_counter() - started
        fixed_rendered = _json.dumps(
            [report.to_summary() for report in fixed_batch.reports])
        rows: list[dict[str, Any]] = []
        baseline_seconds: float | None = None
        baseline_reports: str | None = None
        cost_cascade = None
        cost_batch = None
        for jobs in jobs_curve:
            cascade = inventory_cascade(spec)
            resolved_chunk = (
                options.resolved_chunk_size(len(programs), jobs)
                if jobs > 1 else None)
            started = time.perf_counter()
            with span("bench.parallel-batch", jobs=jobs,
                      programs=len(programs)):
                batch = run_parallel_batch(cascade, programs,
                                           options.replace(jobs=jobs))
            seconds = time.perf_counter() - started
            rendered = _json.dumps(
                [report.to_summary() for report in batch.reports])
            if baseline_seconds is None:
                baseline_seconds, baseline_reports = seconds, rendered
                cost_cascade, cost_batch = cascade, batch
            rows.append({
                "jobs": jobs,
                "chunk_size": resolved_chunk,
                "seconds": seconds,
                "speedup_vs_serial": (baseline_seconds / seconds
                                      if seconds > 0 else float("inf")),
                "reports_identical": rendered == baseline_reports,
            })
        reports_with_cost = sum(
            1 for report in cost_batch.reports
            if report.cost and report.cost.get("predicted"))
        tier_rows.append({
            "programs": tier,
            "jobs": rows,
            "strategy_order": {
                "fixed_seconds": fixed_seconds,
                "cost_seconds": baseline_seconds,
                "speedup": (fixed_seconds / baseline_seconds
                            if baseline_seconds else float("inf")),
                "time_saved_pct": (
                    100.0 * (1.0 - baseline_seconds / fixed_seconds)
                    if fixed_seconds else 0.0),
                "reports_identical": fixed_rendered == baseline_reports,
            },
            "cost_model": {
                "counters": cost_cascade.cost_counters.snapshot(),
                "accuracy": cost_cascade.calibrator.accuracy(),
                "reports_with_cost": reports_with_cost,
            },
        })
    return {
        "pathology_rate": pathology_rate,
        # Mode config the jobs curve ran under (the fixed-order row is
        # the per-tier reference): a mode change makes reports
        # incomparable, so bench --diff treats these as config keys.
        "strategy_order": "cost",
        "cost_model": "auto",
        "tiers": tier_rows,
    }


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def run_programs_benchmark(scales: tuple[int, ...] = FULL_SCALES,
                           seed: int = 1979,
                           corpus_size: int = FULL_PROGRAMS,
                           relational_rows: int = FULL_RELATIONAL_ROWS,
                           relational_statements: int =
                           FULL_RELATIONAL_STATEMENTS,
                           jobs_curve: tuple[int, ...] = FULL_JOBS_CURVE,
                           parallel_tiers: tuple[int, ...] =
                           FULL_INVENTORY_TIERS) -> dict[str, Any]:
    """The full BENCH_programs.json report dict.

    The whole run executes under a tracer; the per-stage profile rides
    in the report as ``trace_summary``.  The parallel scaling sweep
    runs *outside* the tracer: its point is wall-clock at each worker
    count, and merging every worker's span forest into the report
    trace would swamp the profile table."""
    programs = corpus_programs(seed, corpus_size)
    tracer = Tracer()
    with tracer:
        measured_scales = [
            measure_strategies(size, seed, programs) for size in scales
        ]
        relational = compare_relational_execution(
            relational_rows, relational_statements, seed)
    parallel = measure_parallel_scaling(jobs_curve, seed, parallel_tiers)
    from repro.catalog import default_catalog

    catalog = default_catalog()
    return {
        "suite": "programs",
        "bench_format": BENCH_FORMAT,
        "schema": "COMPANY (Figure 4.2), restructured per Figure 4.4",
        "rule_catalog": {
            "name": catalog.name,
            "version": catalog.version,
            "identity": catalog.identity(),
        },
        "seed": seed,
        "scales": measured_scales,
        "relational_index_comparison": relational,
        "parallel_scaling": parallel,
        "trace_summary": profile_summary(tracer, top=12),
    }


def write_programs_report(report: dict[str, Any],
                          out_path: str | Path) -> Path:
    """Serialize a report (canonical name: ``BENCH_programs.json``),
    atomically, creating parent dirs."""
    return write_json_atomic(report, out_path)


def summarize_programs(report: dict[str, Any]) -> str:
    """A small human-readable table of the report."""
    lines = [
        "programs benchmark -- strategy overhead vs native "
        "(cost = access-path length)",
        f"{'emp/div':>8}  {'native':>9}  {'rewrite':>9}  {'emulation':>9}"
        f"  {'bridge':>9}  {'traces':>7}",
    ]
    for entry in report["scales"]:
        strategies = entry["strategies"]
        ok = "ok" if all(entry["traces_match"].values()) else "DIVERGED"
        lines.append(
            f"{entry['employees_per_division']:>8}"
            f"  {entry['native']['cost']:>9}"
            f"  {strategies['rewrite']['cost']:>9}"
            f"  {strategies['emulation']['cost']:>9}"
            f"  {strategies['bridge']['cost']:>9}"
            f"  {ok:>7}"
        )
    comparison = report["relational_index_comparison"]
    identical = "identical" if comparison["traces_identical"] \
        else "DIVERGED"
    lines.append(
        f"relational execution at {comparison['rows']} rows: "
        f"indexed {comparison['indexed_seconds']:.3f}s vs linear "
        f"{comparison['linear_seconds']:.3f}s "
        f"({comparison['speedup']:.1f}x, traces {identical})"
    )
    parallel = report.get("parallel_scaling")
    if parallel:
        for tier in parallel["tiers"]:
            curve = ", ".join(
                f"{row['jobs']}w {row['seconds']:.3f}s "
                f"({row['speedup_vs_serial']:.2f}x"
                f"{'' if row['reports_identical'] else ', REPORTS DIVERGED'})"
                for row in tier["jobs"]
            )
            lines.append(
                f"parallel inventory scaling at {tier['programs']} "
                f"programs: {curve}"
            )
            order = tier.get("strategy_order")
            if order:
                identical = ("identical" if order["reports_identical"]
                             else "DIVERGED")
                lines.append(
                    f"cost-ordered cascade at {tier['programs']} "
                    f"programs: fixed {order['fixed_seconds']:.3f}s vs "
                    f"cost {order['cost_seconds']:.3f}s "
                    f"({order['speedup']:.2f}x, "
                    f"{order['time_saved_pct']:.0f}% saved, "
                    f"reports {identical})"
                )
            model = tier.get("cost_model")
            if model:
                parts = ", ".join(
                    f"{name} x{channel['factor']:.2f} "
                    f"({channel['samples']} samples)"
                    for name, channel in model["accuracy"].items()
                )
                lines.append(
                    f"cost model at {tier['programs']} programs: "
                    f"{model['counters'].get('rewrite_skips', 0)} rewrite "
                    f"skips; calibration factors {parts or 'n/a'}"
                )
    return "\n".join(lines)
