"""Scalable extract -> translate -> load benchmark.

The ROADMAP's north star is a system that "runs as fast as the
hardware allows"; this harness is the measuring stick.  It scales a
3-level workload (DIV -> DEPT -> EMP, generated deterministically via
:mod:`repro.workloads.datagen`) to arbitrary row counts, times every
stage of the Figure 4.1 data-translation pipeline into all three data
models, and emits a machine-readable report (``BENCH_translate.json``)
with wall-clock seconds plus the engine metrics counters, so future
changes can be judged against a recorded baseline.

Alongside the timings the harness measures the indexed
:meth:`~repro.restructure.translator.DataSnapshot.owner_of` fast path
against the seed's linear link scan (``use_indexes=False``), reporting
the speedup of the hierarchical load that depends on it.

Run it via ``repro bench`` (CLI smoke) or
``pytest benchmarks/perf -m perf`` (full sizes).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.engine.metrics import Metrics
from repro.jsonio import write_json_atomic
from repro.observe.export import profile_summary
from repro.observe.tracing import Tracer, span
from repro.restructure.operators import AddField, Composite, RenameField
from repro.restructure.translator import (
    DataSnapshot,
    extract_snapshot,
    load_hierarchical,
    load_network,
    load_relational,
)
from repro.schema.model import Schema
from repro.workloads.datagen import DataGen

#: Target models measured per size, with their loaders.
TARGET_LOADERS = {
    "network": load_network,
    "relational": load_relational,
    "hierarchical": load_hierarchical,
}

#: The restructuring applied in the translate stage: one field rename
#: plus one field addition on the biggest record type, so the operator
#: chain's copy-on-write path is exercised without changing the
#: snapshot's link structure.
PERF_OPERATOR = Composite((
    RenameField("EMP", "AGE", "EMP-AGE"),
    AddField("EMP", "PERF-TAG", "X(1)", default="Y"),
))


def perf_schema() -> Schema:
    """A 3-level chain schema loadable by all three engines.

    DIV owns DEPT owns EMP; every record type has a CALC key (the
    relational loader derives foreign keys from them) and each
    non-root type has exactly one parent set (the hierarchical loader
    requires a forest).
    """
    schema = Schema("PERF")
    schema.define_record("DIV", {
        "DIV-NAME": "X(20)", "DIV-LOC": "X(10)",
    }, calc_keys=["DIV-NAME"])
    schema.define_record("DEPT", {
        "DEPT-NAME": "X(20)", "BUDGET": "9(6)",
    }, calc_keys=["DEPT-NAME"])
    schema.define_record("EMP", {
        "EMP-NAME": "X(25)", "AGE": "9(2)",
    }, calc_keys=["EMP-NAME"])
    schema.define_set("ALL-DIV", "SYSTEM", "DIV", order_keys=["DIV-NAME"],
                      allow_duplicates=False)
    schema.define_set("DIV-DEPT", "DIV", "DEPT")
    schema.define_set("DEPT-EMP", "DEPT", "EMP")
    schema.validate()
    return schema


def size_split(total_rows: int) -> dict[str, int]:
    """Row counts per record type for a target total (3 levels)."""
    divisions = max(1, total_rows // 100)
    departments = max(1, total_rows // 10)
    employees = max(1, total_rows - divisions - departments)
    return {"DIV": divisions, "DEPT": departments, "EMP": employees}


def build_snapshot(total_rows: int, seed: int = 1979) -> DataSnapshot:
    """A deterministic 3-level snapshot with ~``total_rows`` rows.

    Built directly (no source engine) so tests can assert on snapshot
    behaviour -- e.g. index-probe counts during loading -- without
    paying for a database build.
    """
    gen = DataGen(seed)
    split = size_split(total_rows)
    snapshot = DataSnapshot()
    snapshot.rows["DIV"] = [
        {"DIV-NAME": f"DIV-{index:05d}", "DIV-LOC": gen.city()}
        for index in range(split["DIV"])
    ]
    snapshot.rows["DEPT"] = [
        {"DEPT-NAME": f"{gen.dept_name()}-{index:06d}",
         "BUDGET": gen.int_between(0, 999999)}
        for index in range(split["DEPT"])
    ]
    snapshot.rows["EMP"] = [
        {"EMP-NAME": gen.surname(index), "AGE": gen.age()}
        for index in range(split["EMP"])
    ]
    snapshot.links["ALL-DIV"] = [
        (None, ("DIV", index)) for index in range(split["DIV"])
    ]
    snapshot.links["DIV-DEPT"] = [
        (("DIV", index % split["DIV"]), ("DEPT", index))
        for index in range(split["DEPT"])
    ]
    snapshot.links["DEPT-EMP"] = [
        (("DEPT", index % split["DEPT"]), ("EMP", index))
        for index in range(split["EMP"])
    ]
    return snapshot


def build_source_db(total_rows: int, seed: int = 1979):
    """A populated network database (the pipeline's source engine)."""
    return load_network(perf_schema(), build_snapshot(total_rows, seed))


def compare_hierarchical_load(snapshot: DataSnapshot,
                              schema: Schema) -> dict[str, float]:
    """Time the hierarchical load with and without snapshot indexes.

    The linear variant is the seed's O(links) scan per ``owner_of``
    call -- quadratic over the whole load -- re-enabled via
    ``use_indexes=False`` on an independent copy.
    """
    indexed = snapshot.copy()
    started = time.perf_counter()
    load_hierarchical(schema, indexed, Metrics())
    indexed_seconds = time.perf_counter() - started

    linear = snapshot.copy()
    linear.use_indexes = False
    started = time.perf_counter()
    load_hierarchical(schema, linear, Metrics())
    linear_seconds = time.perf_counter() - started
    return {
        "indexed_seconds": indexed_seconds,
        "linear_seconds": linear_seconds,
        "speedup": (linear_seconds / indexed_seconds
                    if indexed_seconds > 0 else float("inf")),
        "indexed_stats": indexed.stats.snapshot(),
        "linear_stats": linear.stats.snapshot(),
    }


def measure_size(total_rows: int, seed: int = 1979,
                 compare_linear: bool = True) -> dict[str, Any]:
    """One benchmark row: pipeline timings at a single size."""
    schema = perf_schema()
    source_db = build_source_db(total_rows, seed)

    with span("bench.extract", rows=total_rows):
        started = time.perf_counter()
        snapshot = extract_snapshot(source_db)
        extract_seconds = time.perf_counter() - started

    target_schema = PERF_OPERATOR.apply_schema(schema)
    with span("bench.translate", rows=total_rows):
        started = time.perf_counter()
        translated = PERF_OPERATOR.translate(snapshot, schema, target_schema)
        translate_seconds = time.perf_counter() - started

    targets: dict[str, Any] = {}
    for model, loader in TARGET_LOADERS.items():
        metrics = Metrics()
        with span("bench.load", model=model, rows=total_rows):
            started = time.perf_counter()
            loader(target_schema, translated, metrics)
            load_seconds = time.perf_counter() - started
        targets[model] = {
            "load_seconds": load_seconds,
            "metrics": metrics.snapshot(),
        }

    result: dict[str, Any] = {
        "rows": total_rows,
        "row_counts": size_split(total_rows),
        "extract_seconds": extract_seconds,
        "translate_seconds": translate_seconds,
        "targets": targets,
        "snapshot_stats": translated.stats.snapshot(),
    }
    if compare_linear:
        result["hierarchical_scan_comparison"] = compare_hierarchical_load(
            translated, target_schema)
    return result


def run_benchmark(sizes: list[int], seed: int = 1979,
                  compare_linear: bool = True) -> dict[str, Any]:
    """The full report dict (see EXPERIMENTS.md for the structure).

    The whole run executes under a tracer; the per-stage profile rides
    in the report as ``trace_summary``."""
    tracer = Tracer()
    with tracer:
        measured = [
            measure_size(total_rows, seed, compare_linear=compare_linear)
            for total_rows in sizes
        ]
    return {
        "suite": "translate",
        "schema": "PERF (DIV -> DEPT -> EMP, 3 levels)",
        "operator": PERF_OPERATOR.describe(),
        "seed": seed,
        "sizes": measured,
        "trace_summary": profile_summary(tracer, top=12),
    }


def write_report(report: dict[str, Any], out_path: str | Path) -> Path:
    """Serialize a report to ``out_path`` (canonical name:
    ``BENCH_translate.json``), atomically, creating parent dirs."""
    return write_json_atomic(report, out_path)


def summarize(report: dict[str, Any]) -> str:
    """A small human-readable table of the report."""
    lines = [
        f"translate benchmark -- operator: {report['operator']}",
        f"{'rows':>8}  {'extract':>9}  {'translate':>9}  "
        f"{'network':>9}  {'relational':>10}  {'hierarchical':>12}"
        f"  {'hier speedup':>12}",
    ]
    for entry in report["sizes"]:
        targets = entry["targets"]
        comparison = entry.get("hierarchical_scan_comparison")
        speedup = (f"{comparison['speedup']:.1f}x"
                   if comparison else "-")
        lines.append(
            f"{entry['rows']:>8}  {entry['extract_seconds']:>8.3f}s"
            f"  {entry['translate_seconds']:>8.3f}s"
            f"  {targets['network']['load_seconds']:>8.3f}s"
            f"  {targets['relational']['load_seconds']:>9.3f}s"
            f"  {targets['hierarchical']['load_seconds']:>11.3f}s"
            f"  {speedup:>12}"
        )
    return "\n".join(lines)
