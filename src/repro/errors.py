"""Exception hierarchy for the conversion framework.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  The hierarchy mirrors the subsystem
layering: engine errors, schema/DDL errors, data-model DML errors,
restructuring errors, and conversion errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for storage-engine errors."""


class RecordNotFound(EngineError):
    """A record id does not exist (or was deleted)."""


class DuplicateKey(EngineError):
    """An index with unique keys rejected a duplicate entry."""


class SavepointMismatch(EngineError):
    """A savepoint token was offered to an object that did not issue it
    (or whose structure changed since it was issued)."""


# ---------------------------------------------------------------------------
# Schema / DDL
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """Base class for schema-definition errors."""


class DDLSyntaxError(SchemaError):
    """The DDL text could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class UnknownRecordType(SchemaError):
    """A record type name is not declared in the schema."""


class UnknownField(SchemaError):
    """A field name is not declared on the record type."""


class UnknownSetType(SchemaError):
    """A set type name is not declared in the schema."""


# ---------------------------------------------------------------------------
# Integrity
# ---------------------------------------------------------------------------


class IntegrityError(ReproError):
    """A database operation would violate a declared integrity constraint.

    The paper's Section 1.1 requires that every database program take the
    database from one consistent state to another; the engines raise this
    error whenever an operation (or a run-unit commit) would break that
    guarantee.
    """

    def __init__(self, message: str, constraint: object | None = None):
        self.constraint = constraint
        super().__init__(message)


class ExistenceViolation(IntegrityError):
    """A referenced owner/parent instance does not exist (Section 3.1)."""


class UniquenessViolation(IntegrityError):
    """A tuple/record duplicates a declared key (Section 3.1)."""


class CardinalityViolation(IntegrityError):
    """A numeric limit on relationship participation is exceeded.

    The paper's example: "a course may not be offered more than twice in
    a school year" -- a constraint no 1979 data model could declare.
    """


class MandatoryViolation(IntegrityError):
    """A MANDATORY set member would be left without an owner."""


# ---------------------------------------------------------------------------
# DML (all three data models)
# ---------------------------------------------------------------------------


class DMLError(ReproError):
    """Base class for data-manipulation errors."""


class CurrencyError(DMLError):
    """A navigational DML verb was issued without the needed currency."""


class EndOfSet(DMLError):
    """FIND NEXT ran off the end of a set occurrence.

    CODASYL systems signal this through a status code rather than an
    exception; the network DML layer converts it to status ``0307`` so
    programs can exhibit the status-code dependence of Section 3.2.
    """


class EndOfDatabase(DMLError):
    """A hierarchical GET NEXT ran past the last segment (DL/I ``GB``)."""


class QueryError(DMLError):
    """A SEQUEL/CDML query is malformed or refers to unknown names."""


# ---------------------------------------------------------------------------
# Restructuring
# ---------------------------------------------------------------------------


class RestructureError(ReproError):
    """A schema transformation cannot be applied."""


class NotInvertible(RestructureError):
    """The restructuring has no inverse mapping (Housel's restriction)."""


class InformationLoss(RestructureError):
    """The restructuring discards source information (Section 1.1 warns
    that conversion without information preservation is a different and
    harder problem)."""


# ---------------------------------------------------------------------------
# Rule catalogs
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """A rule-catalog document failed load-time validation.

    Every violation -- unknown directive or key, unknown change kind
    or primitive, dangling record/set/field reference, template
    placeholder mismatch -- is a hard error carrying the file and line
    position of the offending entry, in the same ``line N:`` idiom as
    :class:`DDLSyntaxError`.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 line: int | None = None):
        self.path = path
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Conversion pipeline
# ---------------------------------------------------------------------------


class ConversionError(ReproError):
    """Base class for Figure 4.1 pipeline failures.

    Carries optional structured context so batch fault reports can say
    *where* a conversion died: the program being converted, the
    pipeline phase (``analyze`` / ``convert`` / ``optimize`` /
    ``generate`` / a strategy name), and the statement being processed.
    All three default to None; the supervisor fills in whatever the
    raise site did not know.
    """

    def __init__(self, message: str, *, program: str | None = None,
                 phase: str | None = None,
                 statement: str | None = None):
        self.program = program
        self.phase = phase
        self.statement = statement
        super().__init__(message)

    def context(self) -> dict[str, str]:
        """The non-None context fields, for structured fault reports."""
        out = {}
        for name in ("program", "phase", "statement"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def __str__(self) -> str:
        base = super().__str__()
        context = self.context()
        if not context:
            return base
        rendered = ", ".join(f"{k}={v}" for k, v in context.items())
        return f"{base} [{rendered}]"


class AnalysisError(ConversionError):
    """The program analyzer could not derive an abstract representation."""


class GenerationError(ConversionError):
    """The program generator cannot express an abstract operation in
    the target data model's DML."""


class UnconvertiblePattern(ConversionError):
    """No transformation rule covers an access pattern under the given
    schema change; the supervisor reports these to the analyst."""


class AnalystAbort(ConversionError):
    """The conversion analyst declined to resolve an open question."""


class PipelineFault(ConversionError):
    """An *unexpected* exception escaped a pipeline phase.

    The supervisor wraps stray exceptions (engine bugs, injected
    faults) in this class -- always ``raise ... from exc`` -- so batch
    conversion can isolate the failing program while keeping the
    chained root cause."""


def annotate(error: ConversionError, *, program: str | None = None,
             phase: str | None = None,
             statement: str | None = None) -> ConversionError:
    """Fill in context fields the raise site did not know, without
    overwriting anything it did.  Returns the same error object so
    ``raise annotate(error, ...)`` reads naturally."""
    if error.program is None:
        error.program = program
    if error.phase is None:
        error.phase = phase
    if error.statement is None:
        error.statement = statement
    return error
